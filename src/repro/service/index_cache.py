"""Content-addressed cache of signature indexes, with off-loop builds.

Building the :class:`SignatureIndex` is the expensive step of a session —
it walks ``|R|·|P|`` product tuples — while everything recorded afterwards
lives in the per-session :class:`~repro.core.state.InferenceState`.  The
index itself is immutable, so every session over value-identical data can
share one: the cache keys on a content hash of the instance (schema +
rows, type-tagged so ``1`` and ``"1"`` hash apart, exactly as they compare
apart under the inference semantics).

Construction goes through a configurable
:class:`~repro.core.index_build.IndexBuilder`, so a service can shard
builds (``repro-join serve --shard-rows --build-workers``).  Two build
paths exist:

* :meth:`IndexCache.get_or_build` / ``get_or_build_keyed`` — synchronous,
  used by non-async callers; the caller's thread builds inline.
* :meth:`IndexCache.get_or_build_keyed_async` — the server path: the
  build runs on a ``concurrent.futures`` executor so the event loop keeps
  serving every other session, and concurrent *async* requests for the
  same key are **single-flight** — the first awaits the executor, later
  arrivals await the same in-flight future, and exactly one build ever
  runs.  In-flight builds publish shard-level progress
  (:class:`BuildStatus`, surfaced on ``GET /builds``).

One cache instance belongs to one concurrency domain: either the event
loop (async methods; worker threads only ever run the builder, never
touch the cache dict) or a single synchronous caller.  Mixing the sync
methods into a live server from another thread would race the LRU dict
and duplicate builds — embedders drive :class:`SessionManager`'s sync
API *instead of* a running server, not alongside one.

Eviction is LRU by entry count.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from ..core.index_build import IndexBuilder
from ..core.signatures import SignatureIndex
from ..relational.relation import Instance, Relation

__all__ = ["BuildStatus", "IndexCache", "instance_fingerprint"]


def _tagged(value: object) -> list:
    # bool before int: True == 1 in Python but the tag keeps them apart.
    return [type(value).__name__, value]


def _relation_payload(relation: Relation) -> dict:
    return {
        "name": relation.name,
        "attributes": [attr.name for attr in relation.schema],
        "rows": [[_tagged(v) for v in row] for row in relation.rows],
    }


def instance_fingerprint(instance: Instance) -> str:
    """A stable content hash of an instance's schema and data.

    Two instances get the same fingerprint iff they are value-identical
    (same relation names, attribute names, and rows in order, with cell
    types distinguished) — the precondition for their signature indexes
    being interchangeable.

    The hash walks every cell, so it is memoised per ``Instance``
    object: session creation over an uploaded instance used to re-hash
    the full data on every request touching the cache, now only the
    first computation pays.
    """
    cached = instance._content_fingerprint
    if cached is not None:
        return cached
    canonical = json.dumps(
        {
            "left": _relation_payload(instance.left),
            "right": _relation_payload(instance.right),
        },
        separators=(",", ":"),
        sort_keys=True,
    )
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
    instance._content_fingerprint = digest
    return digest


@dataclass(slots=True)
class BuildStatus:
    """Progress of one in-flight index build (read across threads).

    The builder's worker thread bumps ``shards_done``/``shards_total``;
    the event loop reads them for the build-status endpoint.  Plain
    attribute writes are atomic under the GIL, so no locking is needed
    for this monitoring-only data.
    """

    key: str
    started: float = field(default_factory=time.monotonic)
    shards_done: int = 0
    shards_total: int | None = None
    waiters: int = 0

    def payload(self) -> dict[str, Any]:
        """The JSON shape served by ``GET /builds``."""
        return {
            "key": self.key,
            "shards_done": self.shards_done,
            "shards_total": self.shards_total,
            "waiters": self.waiters,
            "elapsed_seconds": round(time.monotonic() - self.started, 3),
        }


class IndexCache:
    """LRU cache mapping instance fingerprints to shared indexes."""

    __slots__ = (
        "_capacity",
        "_entries",
        "_entry_kinds",
        "_builder",
        "_shared",
        "_pending",
        "_build_tasks",
        "_hits",
        "_misses",
        "_single_flight_waits",
        "_attach_hits",
        "_builds",
        "_publishes",
    )

    def __init__(
        self,
        capacity: int = 16,
        builder: IndexBuilder | None = None,
        shared=None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._entries: OrderedDict[str, SignatureIndex] = OrderedDict()
        self._entry_kinds: dict[str, tuple[str, int]] = {}
        self._builder = builder if builder is not None else IndexBuilder()
        self._shared = shared
        self._pending: dict[str, tuple[asyncio.Future, BuildStatus]] = {}
        self._build_tasks: set[asyncio.Task] = set()
        self._hits = 0
        self._misses = 0
        self._single_flight_waits = 0
        self._attach_hits = 0
        self._builds = 0
        self._publishes = 0

    @property
    def builder(self) -> IndexBuilder:
        """The build pipeline used on cache misses."""
        return self._builder

    @property
    def shared_plane(self):
        """The shared-memory index plane, if the cache has one.

        With a plane, a miss first tries to *attach* a sibling
        process's published segment; only when no segment is ready does
        the local builder run (and publish for the siblings in turn).
        """
        return self._shared

    # --- synchronous path -------------------------------------------------

    def get_or_build(
        self, instance: Instance
    ) -> tuple[SignatureIndex, bool]:
        """The shared index for ``instance`` and whether it was cached."""
        return self.get_or_build_keyed(
            instance_fingerprint(instance), lambda: instance
        )

    def get_or_build_keyed(
        self, key: str, make_instance
    ) -> tuple[SignatureIndex, bool]:
        """Like :meth:`get_or_build` with a caller-supplied cache key.

        ``make_instance`` is only invoked on a miss, which lets callers
        with an already-canonical key — the service's builtin workload
        specs — skip both data regeneration and content hashing on the
        hot path.  (An index cached under a spec key is a separate entry
        from the same data cached by fingerprint; builtin specs are
        deterministic, so in practice the split never occurs.)
        """
        index = self._entries.get(key)
        if index is not None:
            self._entries.move_to_end(key)
            self._hits += 1
            return index, True
        self._misses += 1
        index, kind = self._resolve_miss(key, make_instance, None)
        return self._store(key, index, kind), False

    # --- asynchronous single-flight path -----------------------------------

    async def get_or_build_async(
        self, instance: Instance, executor=None
    ) -> tuple[SignatureIndex, bool]:
        """Async twin of :meth:`get_or_build` (single-flight, off-loop).

        The content fingerprint walks every cell, so for not-yet-memoised
        instances it is computed on ``executor`` too — a ~10⁶-cell upload
        must not stall the loop hashing, any more than building.  Note
        ``executor`` serves both the hash and the build here; a caller
        that wants hashing kept off a busy build pool (the service does
        — see ``SessionManager.offload``) should hash on its own pool
        and call :meth:`get_or_build_keyed_async` directly.
        """
        if instance._content_fingerprint is not None:
            key = instance._content_fingerprint
        else:
            loop = asyncio.get_running_loop()
            key = await loop.run_in_executor(
                executor, instance_fingerprint, instance
            )
        return await self.get_or_build_keyed_async(
            key, lambda: instance, executor
        )

    async def get_or_build_keyed_async(
        self, key: str, make_instance, executor=None
    ) -> tuple[SignatureIndex, bool]:
        """Single-flight, executor-backed variant of
        :meth:`get_or_build_keyed`.

        A cold key starts exactly one build on ``executor`` (``None`` =
        the loop's default pool); every concurrent request for the same
        key awaits that build's future and counts as a cache hit.  The
        event loop never blocks — while shards grind on worker threads,
        unrelated sessions keep answering.

        The build is driven by a task owned by the cache, and every
        requester awaits the shared future through
        :func:`asyncio.shield` — cancelling any one requester (client
        disconnect, ``wait_for`` timeout) affects only that requester;
        the build still completes, lands in the cache, and resolves the
        other waiters.
        """
        index = self._entries.get(key)
        if index is not None:
            self._entries.move_to_end(key)
            self._hits += 1
            return index, True
        pending = self._pending.get(key)
        if pending is not None:
            future, status = pending
            self._single_flight_waits += 1
            status.waiters += 1
            try:
                index = await asyncio.shield(future)
            except asyncio.CancelledError:
                # This waiter is gone (client disconnect); the build
                # carries on, but /builds must not keep reporting them.
                status.waiters -= 1
                raise
            # Counted only after the shared build succeeds: a failed
            # build must not inflate the hit ratio the CI gates on.
            self._hits += 1
            return index, True
        self._misses += 1
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        status = BuildStatus(key=key)
        self._pending[key] = (future, status)
        task = loop.create_task(
            self._drive_build(key, make_instance, status, future, executor)
        )
        self._build_tasks.add(task)
        task.add_done_callback(self._build_tasks.discard)
        return await asyncio.shield(future), False

    async def _drive_build(
        self,
        key: str,
        make_instance,
        status: BuildStatus,
        future: asyncio.Future,
        executor,
    ) -> None:
        """Run one cold build to completion and settle its future."""
        loop = asyncio.get_running_loop()
        try:
            index, kind = await loop.run_in_executor(
                executor, self._resolve_miss, key, make_instance, status
            )
        except BaseException as exc:
            if not future.done():
                future.set_exception(exc)
                # Mark retrieved so an un-awaited future (every
                # requester already cancelled) does not log
                # "exception was never retrieved".
                future.exception()
            if isinstance(exc, asyncio.CancelledError):
                raise  # loop shutdown: stay a well-behaved cancelled task
        else:
            self._store(key, index, kind)
            if not future.done():
                future.set_result(index)
        finally:
            self._pending.pop(key, None)

    # --- internals ----------------------------------------------------------

    def _resolve_miss(
        self, key: str, make_instance, status: BuildStatus | None
    ) -> tuple[SignatureIndex, str]:
        """Resolve a cold key on a worker thread: attach tier, then build.

        Returns ``(index, kind)`` where ``kind`` is ``"attach"`` (mapped
        a sibling's shared segment), ``"publish"`` (built locally and
        published the segment), or ``"build"`` (private build — no
        shared plane, or the plane degraded).  Counter bumps are plain
        GIL-atomic writes, same as :class:`BuildStatus`.
        """
        instance = make_instance()
        if self._shared is not None:
            index, kind = self._shared.get_or_build(
                key,
                instance,
                lambda inst: self._run_build(inst, status),
            )
        else:
            index, kind = self._run_build(instance, status), "build"
        if kind == "attach":
            self._attach_hits += 1
        else:
            self._builds += 1
            if kind == "publish":
                self._publishes += 1
        return index, kind

    def _run_build(
        self, instance: Instance, status: BuildStatus | None
    ) -> SignatureIndex:
        """Run the builder over a materialised instance (worker thread)."""

        def progress(done: int, total: int | None) -> None:
            if status is not None:
                status.shards_done = done
                status.shards_total = total

        return self._builder.build(instance, progress=progress)

    def _store(
        self, key: str, index: SignatureIndex, kind: str = "build"
    ) -> SignatureIndex:
        self._entries[key] = index
        self._entry_kinds[key] = (kind, index.nbytes)
        self._entries.move_to_end(key)
        while len(self._entries) > self._capacity:
            evicted, _ = self._entries.popitem(last=False)
            self._entry_kinds.pop(evicted, None)
        return index

    # --- introspection -------------------------------------------------------

    def pending_builds(self) -> list[dict[str, Any]]:
        """Status payloads of every in-flight build, oldest first."""
        return [
            status.payload()
            for _, status in sorted(
                self._pending.values(), key=lambda item: item[1].started
            )
        ]

    @property
    def hits(self) -> int:
        """Lookups answered from the cache (including single-flight waits)."""
        return self._hits

    @property
    def misses(self) -> int:
        """Lookups that triggered an index build."""
        return self._misses

    @property
    def single_flight_waits(self) -> int:
        """Lookups that joined an in-flight build instead of starting one."""
        return self._single_flight_waits

    @property
    def attach_hits(self) -> int:
        """Misses resolved by attaching a shared segment, not building.

        An attach still counts as a *miss* — ``hits``/``misses`` keep
        their pre-plane meaning (answered from this process's LRU or
        not), so the benchmarked hit-ratio gate is undisturbed; the
        attach/build split decomposes the misses instead:
        ``misses == attach_hits + builds`` (barring failed builds).
        """
        return self._attach_hits

    @property
    def builds(self) -> int:
        """Misses that ran the local builder (including publishes)."""
        return self._builds

    @property
    def publishes(self) -> int:
        """Local builds that also published a shared segment."""
        return self._publishes

    def resident_bytes(self) -> dict[str, int]:
        """Index bytes resident via this cache, split by backing.

        ``private_bytes`` live on this process's heap; ``shared_bytes``
        are the shared-memory segments this process maps (one machine-
        wide copy, reported by every attached process).
        """
        private = 0
        for kind, nbytes in self._entry_kinds.values():
            if kind == "build":
                private += nbytes
        shared = (
            self._shared.shared_bytes() if self._shared is not None else 0
        )
        return {"private_bytes": private, "shared_bytes": shared}

    @property
    def hit_ratio(self) -> float:
        """``hits / (hits + misses)``, 0.0 before any lookup."""
        total = self._hits + self._misses
        return self._hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        """Whether ``key`` is warm — without touching LRU order or the
        hit/miss counters (a pure peek for callers deciding whether a
        create is about to trigger a cold build)."""
        return key in self._entries

    def stats(self) -> dict:
        """Counters for the service's stats endpoint and benchmarks."""
        payload = {
            "entries": len(self._entries),
            "capacity": self._capacity,
            "hits": self._hits,
            "misses": self._misses,
            "hit_ratio": round(self.hit_ratio, 4),
            "in_flight": len(self._pending),
            "single_flight_waits": self._single_flight_waits,
            "attach_hits": self._attach_hits,
            "builds": self._builds,
            "publishes": self._publishes,
        }
        payload.update(self.resident_bytes())
        if self._shared is not None:
            payload["shared"] = self._shared.stats()
        return payload
