"""Content-addressed cache of signature indexes.

Building the :class:`SignatureIndex` is the expensive step of a session —
it walks ``|R|·|P|`` product tuples — while everything recorded afterwards
lives in the per-session :class:`~repro.core.state.InferenceState`.  The
index itself is immutable, so every session over value-identical data can
share one: the cache keys on a content hash of the instance (schema +
rows, type-tagged so ``1`` and ``"1"`` hash apart, exactly as they compare
apart under the inference semantics).

Eviction is LRU by entry count.  The server's event loop builds indexes
synchronously (no ``await`` between lookup and insert), so concurrent
session creations on the same data can never race into duplicate builds.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict

from ..core.signatures import SignatureIndex
from ..relational.relation import Instance, Relation

__all__ = ["IndexCache", "instance_fingerprint"]


def _tagged(value: object) -> list:
    # bool before int: True == 1 in Python but the tag keeps them apart.
    return [type(value).__name__, value]


def _relation_payload(relation: Relation) -> dict:
    return {
        "name": relation.name,
        "attributes": [attr.name for attr in relation.schema],
        "rows": [[_tagged(v) for v in row] for row in relation.rows],
    }


def instance_fingerprint(instance: Instance) -> str:
    """A stable content hash of an instance's schema and data.

    Two instances get the same fingerprint iff they are value-identical
    (same relation names, attribute names, and rows in order, with cell
    types distinguished) — the precondition for their signature indexes
    being interchangeable.
    """
    canonical = json.dumps(
        {
            "left": _relation_payload(instance.left),
            "right": _relation_payload(instance.right),
        },
        separators=(",", ":"),
        sort_keys=True,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class IndexCache:
    """LRU cache mapping instance fingerprints to shared indexes."""

    __slots__ = ("_capacity", "_entries", "_hits", "_misses")

    def __init__(self, capacity: int = 16):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._entries: OrderedDict[str, SignatureIndex] = OrderedDict()
        self._hits = 0
        self._misses = 0

    def get_or_build(
        self, instance: Instance
    ) -> tuple[SignatureIndex, bool]:
        """The shared index for ``instance`` and whether it was cached."""
        return self.get_or_build_keyed(
            instance_fingerprint(instance), lambda: instance
        )

    def get_or_build_keyed(
        self, key: str, make_instance
    ) -> tuple[SignatureIndex, bool]:
        """Like :meth:`get_or_build` with a caller-supplied cache key.

        ``make_instance`` is only invoked on a miss, which lets callers
        with an already-canonical key — the service's builtin workload
        specs — skip both data regeneration and content hashing on the
        hot path.  (An index cached under a spec key is a separate entry
        from the same data cached by fingerprint; builtin specs are
        deterministic, so in practice the split never occurs.)
        """
        index = self._entries.get(key)
        if index is not None:
            self._entries.move_to_end(key)
            self._hits += 1
            return index, True
        self._misses += 1
        index = SignatureIndex(make_instance())
        self._entries[key] = index
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
        return index, False

    @property
    def hits(self) -> int:
        """Lookups answered from the cache."""
        return self._hits

    @property
    def misses(self) -> int:
        """Lookups that triggered an index build."""
        return self._misses

    @property
    def hit_ratio(self) -> float:
        """``hits / (hits + misses)``, 0.0 before any lookup."""
        total = self._hits + self._misses
        return self._hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict:
        """Counters for the service's stats endpoint and benchmarks."""
        return {
            "entries": len(self._entries),
            "capacity": self._capacity,
            "hits": self._hits,
            "misses": self._misses,
            "hit_ratio": round(self.hit_ratio, 4),
        }
