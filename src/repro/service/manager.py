"""Session lifecycle: creation, lookup, TTL eviction, snapshot/resume.

The manager owns every live :class:`~repro.core.session.InferenceSession`
plus the shared :class:`~repro.service.index_cache.IndexCache`.  Sessions
on the same data share one immutable index but each keeps its own
``InferenceState``; an :class:`asyncio.Lock` per session serialises the
mutating operations (propose/answer/snapshot) so concurrent HTTP requests
against one session cannot interleave mid-protocol.

Expiry is lazy: every entry-point sweeps sessions idle longer than the
TTL, and capacity is enforced after the sweep — a full server answers
creation requests with 429 rather than evicting live users.

Session creation has two flavours: the synchronous :meth:`~SessionManager.create`
builds a cold index inline (embedding callers, tests), while the server
uses :meth:`~SessionManager.create_async`, which pushes the build through
the cache's single-flight path onto a ``concurrent.futures`` worker pool
(``build_workers`` threads, shard fan-out per ``shard_rows``) so a cold
build never stalls the event loop.

**Speculative next-question precompute.**  Question selection — L2S
especially — is the expensive half of a round-trip, and it happens while
the human oracle is *thinking*.  When a question goes out,
:meth:`~SessionManager.propose_question` forks the session twice and
answers each fork with one of the two possible labels on the build pool,
running the next proposal ahead of time; when the real answer arrives,
:meth:`~SessionManager.record_answer` swaps in the matching fork and the
follow-up ``GET /question`` is a lookup.  Both branches are precomputed,
so a *finished* branch always matches; a miss only means the oracle
answered faster than the branch could compute, in which case the branch
is aborted and the answer takes the ordinary inline path.  Speculation
is capacity-capped (``speculation_slots`` concurrent branch jobs;
excess proposals skip speculation rather than queue), cancellation-safe
(aborted branches stop at the next checkpoint and their forks are
discarded; pending jobs are cancelled outright), and **adaptive**: each
session's question→answer gap is tracked as an EWMA, and a session
whose oracle answers faster than ``speculation_min_think_seconds`` has
no think-time to hide work behind, so it stops speculating (a load
generator hammering the API costs nothing; a human thinking for seconds
gets every precompute).  ``GET /stats`` reports the hit ratio.

Speculation is a **tree**: each branch that finishes its follow-up
proposal forks again and precomputes *its* two answer branches, down to
``speculation_depth`` levels (default 2 — four grandchildren behind one
outstanding question).  Forked planners share their sub-matrices
copy-on-write, so the whole tree costs four entropy kernels, not four
session rebuilds.  On a hit the matching child tree is **adopted** as
the next question's speculation — answer→question→answer collapses to
two lookups; per-depth hit ratios are reported separately.

**Cross-session kernel batching.**  Sessions sharing one index run the
same L1S/L2S contraction shapes; a
:class:`~repro.core.kernel_batch.KernelBatchScheduler` coalesces their
proposal jobs (``batch_window_seconds``) into stacked 3-D kernels per
index and scatters the per-session tables back, bit-for-bit identical
to the per-session planner path (which remains the fallback for
singleton batches and non-batchable planners).  Speculative branches
ride the same batches — the router is inherited by forks — so a busy
server's lookahead work amortises one numpy dispatch across the fleet.

**Durable sessions.**  With a :class:`~repro.service.store.SessionStore`
attached, every accepted answer is journaled (append-only, keyed by
session id) and a full snapshot payload is checkpointed every
``checkpoint_every`` answers.  Journal writes happen **off the event
loop** on a dedicated single-thread writer behind per-session
single-flight batching: an answer enqueues its journal op and returns;
at most one flush job per session is in flight, and one flush drains
everything queued since the last (so a burst of answers becomes one
SQLite transaction, and the answer path never waits on a disk write).
Idle-TTL and capacity eviction then *demote to disk instead of
deleting*: the in-memory session is dropped, its pending journal ops
are flushed, and the next touch transparently **rehydrates** it — the
stored checkpoint + journal tail replay through the ordinary
propose/answer resume path on the build pool (off-loop, single-flight
per session id, exactly like a cold index build), restoring strategy
and rng bit-for-bit.  After a crash (``kill -9``), the same path
recovers every session whose writes had committed; ``GET /sessions``
reports live/demoted/recoverable counts.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
import uuid
from concurrent.futures import CancelledError, Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable

from ..core.index_build import IndexBuilder
from ..core.kernel_batch import KernelBatchScheduler
from ..core.plan_cache import PlanCache, plan_key_for_planner
from ..core.sample import Example, Label
from ..core.serialize import (
    SnapshotError,
    snapshot_payload,
)
from ..core.serialize import resume_session as core_resume_session
from ..core.session import InferenceSession, MaxInteractions, Question
from ..core.signatures import SignatureIndex
from ..core.strategies import strategy_by_name
from ..core.strategies.lookahead import LookaheadSkylineStrategy
from ..relational.relation import Instance
from .events import EventBus
from .index_cache import IndexCache, instance_fingerprint
from .protocol import (
    BadRequest,
    CapacityExceeded,
    Conflict,
    CreateSpec,
    NotFound,
    instance_from_spec,
    progress_payload,
    question_payload,
)
from .store import LeaseFenced, SessionStore, StoredSession

__all__ = ["ManagedSession", "SessionManager", "Speculation"]


def _process_rss_bytes() -> int | None:
    """This process's resident set size, or None off Linux procfs.

    Read from ``/proc/self/statm`` (no dependency on psutil); shared
    pages — e.g. mapped index segments — count in every mapping
    process, which is why fleet aggregation reports shared index bytes
    separately instead of summing RSS.
    """
    try:
        with open("/proc/self/statm", "rb") as handle:
            pages = int(handle.read().split()[1])
        return pages * os.sysconf("SC_PAGESIZE")
    except (OSError, ValueError, IndexError):  # pragma: no cover
        return None


@dataclass(slots=True)
class _SpeculativeBranch:
    """One node of the speculation tree: the worker job precomputing
    this answer branch, its kill switch, its depth below the real
    pending question (1 = direct child), and the grandchild branches
    the worker spawned for *its* follow-up question, if any."""

    future: Future | None = None
    abort: threading.Event = field(default_factory=threading.Event)
    depth: int = 1
    children: dict[Label, "_SpeculativeBranch"] = field(
        default_factory=dict
    )

    def cancel(self) -> None:
        """Stop the subtree: drop queued jobs, let running ones notice
        the abort flag and bail out cheaply.  Setting ``abort`` before
        walking ``children`` closes the race with a worker attaching
        new grandchildren: whichever side runs second sees the other's
        write (the worker re-checks ``abort`` after attaching)."""
        self.abort.set()
        if self.future is not None:
            self.future.cancel()
        for child in self.children.values():
            child.cancel()


@dataclass(slots=True)
class Speculation:
    """The precomputed answer tree for one outstanding question."""

    question_id: int
    branches: dict[Label, _SpeculativeBranch]

    def cancel(self) -> None:
        for branch in self.branches.values():
            branch.cancel()


@dataclass(slots=True)
class ManagedSession:
    """One hosted session plus its serving metadata."""

    session_id: str
    session: InferenceSession
    instance_spec: dict[str, Any]
    cache_hit: bool
    created_at: float
    last_used: float
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    speculation: Speculation | None = None
    #: When the current pending question was first handed out (and its
    #: id, so idempotent re-fetches don't restart the clock), plus the
    #: session's smoothed question→answer gap — the observed oracle
    #: think-time that decides whether speculating is worth a fork.
    question_sent_at: float | None = None
    question_sent_id: int | None = None
    think_ewma: float | None = None
    #: Durable-store bookkeeping.  ``store_seq`` counts answers enqueued
    #: for the journal (== the session's interaction count while every
    #: answer goes through the manager); ``checkpoint_seq`` is how many
    #: of them the latest enqueued checkpoint covers.  ``store_ops`` is
    #: the per-session write queue drained by the single-flight flush
    #: job (``store_flushing`` guards at-most-one in flight;
    #: ``store_flush_future`` is the latest submitted drain, what
    #: demotion/rehydration wait on).
    durable: bool = False
    store_seq: int = 0
    checkpoint_seq: int = 0
    store_ops: list[tuple] = field(default_factory=list)
    store_lock: threading.Lock = field(default_factory=threading.Lock)
    store_flushing: bool = False
    store_flush_future: Future | None = None
    #: Fleet leasing (None/False outside a fleet): the fencing epoch
    #: this owner holds the session's lease at, and whether that lease
    #: was lost (fenced write or failed heartbeat) — a lost session is
    #: shed from memory on the next event-loop touch, never served
    #: stale.
    lease_epoch: int | None = None
    lease_lost: bool = False
    #: How the *pending* question's entropy table was resolved —
    #: ``"speculation"`` (adopted fork), ``"plan_cache"``, ``"batched"``,
    #: ``"computed"`` (off-loop per-session kernel) or ``None`` (inline
    #: synchronous path).  Consumed by the question event.
    pending_source: str | None = None

    def describe(self) -> dict[str, Any]:
        """The session-info payload (no inference state)."""
        halt = self.session.halt_condition
        return {
            "session_id": self.session_id,
            "strategy": self.session.strategy.name,
            "seed": self.session.seed,
            "max_questions": (
                halt.budget if isinstance(halt, MaxInteractions) else None
            ),
            "workload": self.instance_spec.get("builtin"),
            "index_cache_hit": self.cache_hit,
            "durable": self.durable,
        }


class SessionManager:
    """All live sessions of one server process."""

    def __init__(
        self,
        *,
        index_cache: IndexCache | None = None,
        max_sessions: int = 256,
        ttl_seconds: float | None = 3600.0,
        clock: Callable[[], float] = time.monotonic,
        build_workers: int = 1,
        shard_rows: int | None = None,
        speculate: bool = True,
        speculation_slots: int | None = None,
        speculation_min_think_seconds: float = 0.02,
        speculation_depth: int = 2,
        kernel_batch: bool = True,
        batch_window_seconds: float = 0.002,
        batch_max: int = 64,
        plan_cache: bool = True,
        plan_cache_entries: int = 1024,
        shared_plan=None,
        store: SessionStore | None = None,
        checkpoint_every: int = 16,
        owner_id: str | None = None,
        lease_ttl_seconds: float = 10.0,
        shared_index=None,
    ):
        if max_sessions < 1:
            raise ValueError("max_sessions must be positive")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive or None")
        if build_workers < 1:
            raise ValueError("build_workers must be positive")
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be positive")
        if speculation_slots is not None and speculation_slots < 0:
            raise ValueError("speculation_slots must be non-negative")
        if speculation_min_think_seconds < 0:
            raise ValueError(
                "speculation_min_think_seconds must be non-negative"
            )
        if speculation_depth < 1:
            raise ValueError("speculation_depth must be positive")
        if lease_ttl_seconds <= 0:
            raise ValueError("lease_ttl_seconds must be positive")
        # `index_cache or ...` would discard an *empty* cache (len 0).
        # A caller-supplied cache keeps whatever builder it was
        # configured with — passing shard_rows alongside it would be
        # silently ignored, so that combination is rejected outright.
        if index_cache is not None:
            if shard_rows is not None:
                raise ValueError(
                    "shard_rows is applied to the manager-built cache; "
                    "configure the supplied IndexCache's builder instead"
                )
            if shared_index is not None:
                raise ValueError(
                    "shared_index is applied to the manager-built cache; "
                    "construct the supplied IndexCache with shared=..."
                )
            self.index_cache = index_cache
        else:
            self.index_cache = IndexCache(
                builder=IndexBuilder(
                    shard_rows=shard_rows, workers=build_workers
                ),
                shared=shared_index,
            )
        self.max_sessions = max_sessions
        self.ttl_seconds = ttl_seconds
        self.build_workers = build_workers
        self.speculate = speculate
        self.speculation_depth = speculation_depth
        #: Concurrent speculative branch jobs allowed on the build pool;
        #: a spawn point (root question or a finished branch fanning
        #: out) needing more skips speculation instead of queueing
        #: behind work it was meant to hide.  The default admits one
        #: full tree per worker under sequential branch completion
        #: (2^(depth+1) - 2 nodes).
        self.speculation_slots = (
            speculation_slots
            if speculation_slots is not None
            else (2 ** (speculation_depth + 1) - 2) * build_workers
        )
        #: Sessions whose observed question→answer gap (EWMA) falls
        #: below this stop speculating: there is no think-time to hide
        #: the precompute behind, so a fork is pure overhead.  0 means
        #: always speculate.
        self.speculation_min_think_seconds = speculation_min_think_seconds
        #: Cross-session kernel batcher (None when disabled): sessions
        #: sharing one index coalesce their L1S/L2S proposal kernels
        #: into stacked contractions within ``batch_window_seconds``.
        self._batcher = (
            KernelBatchScheduler(
                window_seconds=batch_window_seconds, max_batch=batch_max
            )
            if kernel_batch
            else None
        )
        #: Machine-wide plan cache (None when disabled): memoised
        #: entropy tables keyed by canonical state key, consulted by the
        #: entropy router before any kernel runs and written through
        #: from both the per-session path and the batch scheduler.  The
        #: rng is untouched by a hit — tie-breaking still draws from the
        #: session's own rng over the cached score vector — so question
        #: sequences are bit-for-bit identical with the cache on or off.
        if shared_plan is not None and not plan_cache:
            raise ValueError(
                "shared_plan requires plan_cache=True (the shared tier "
                "backs the per-process plan cache)"
            )
        self.plan_cache = (
            PlanCache(plan_cache_entries, shared=shared_plan)
            if plan_cache
            else None
        )
        if self._batcher is not None and self.plan_cache is not None:
            # A flushed batch publishes every member's table (batched
            # and fallback members alike).
            self._batcher.plan_sink = self.plan_cache.install
        self.store = store
        self.checkpoint_every = checkpoint_every
        #: Fleet leasing.  With an ``owner_id`` set (a fleet worker),
        #: every durable session is claimed through the store's lease
        #: protocol: acquired before its first write, renewed by the
        #: heartbeat thread, fenced on every journal flush, released on
        #: demote.  ``owner_id=None`` (the default, single-process
        #: serving) keeps the PR 5 behaviour bit-for-bit: no lease rows,
        #: no fences, no heartbeat.
        self.owner_id = owner_id
        self.lease_ttl_seconds = lease_ttl_seconds
        self._heartbeat_thread: threading.Thread | None = None
        self._heartbeat_stop = threading.Event()
        #: session_id -> epoch granted by the rehydrate-path acquire,
        #: consumed by _admit_rehydrated (worker thread writes, event
        #: loop reads after the replay completes).
        self._rehydrate_epochs: dict[str, int] = {}
        self._fenced_total = 0
        self._leases_lost = 0
        self._lease_denied = 0
        self._clock = clock
        self._sessions: dict[str, ManagedSession] = {}
        self._expired_total = 0
        #: Durable-store state: ids this process demoted (and has not
        #: rehydrated since), the flush futures their rehydration must
        #: wait on, and the single-flight map of in-progress
        #: rehydrations (event-loop only, like the index cache's
        #: pending builds).
        self._demoted: set[str] = set()
        self._demote_flushes: dict[str, Future] = {}
        self._rehydrating: dict[str, asyncio.Future] = {}
        self._rehydrate_tasks: set[asyncio.Task] = set()
        #: Ids deleted while their rehydration was in flight: the
        #: rehydrate task checks this right before admission, so a
        #: DELETE racing a touch can never resurrect the session.
        self._rehydrate_tombstones: set[str] = set()
        self._demotions_total = 0
        self._rehydrated_total = 0
        self._store_errors = 0
        self._store_executor: ThreadPoolExecutor | None = None
        self._build_executor: ThreadPoolExecutor | None = None
        self._offload_executor: ThreadPoolExecutor | None = None
        self._spec_lock = threading.Lock()
        self._spec_inflight = 0
        self._spec_submitted = 0
        self._spec_hits = 0
        self._spec_misses = 0
        self._spec_hits_by_depth: dict[int, int] = {}
        self._spec_misses_by_depth: dict[int, int] = {}
        self._spec_skipped = 0
        self._spec_skipped_think = 0
        self._spec_branch_errors = 0
        #: The event plane (PR 10): per-session + service-wide feeds
        #: and the incrementally maintained dashboard aggregates.
        self.events = EventBus()

    def _executor(self) -> ThreadPoolExecutor:
        """The worker pool index builds run on, off the event loop."""
        if self._build_executor is None:
            self._build_executor = ThreadPoolExecutor(
                max_workers=self.build_workers,
                thread_name_prefix="index-build",
            )
        return self._build_executor

    def _store_pool(self) -> ThreadPoolExecutor:
        """The dedicated single-thread writer all store flushes run on.

        One thread, so flushes for one session are naturally ordered
        and the store backend sees a single writer; it is separate from
        the build pool so a long cold build never delays durability."""
        if self._store_executor is None:
            self._store_executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="session-store"
            )
        return self._store_executor

    def offload(self, fn, *args):
        """Awaitable running CPU-bound ``fn(*args)`` off the event loop.

        Every O(data) *request-preprocessing* step goes through here —
        CSV parsing, content hashing, instance materialisation — on a
        small pool of its own, separate from the build pool: a warm
        upload create (parse + hash + cache hit) must never queue
        behind a long cold build occupying the build workers.
        Exceptions (e.g. ``BadRequest`` from validation) propagate to
        the awaiter unchanged.
        """
        if self._offload_executor is None:
            self._offload_executor = ThreadPoolExecutor(
                max_workers=2, thread_name_prefix="create-offload"
            )
        return asyncio.get_running_loop().run_in_executor(
            self._offload_executor, fn, *args
        )

    def _heavy_offload(self, fn, *args):
        """Like :meth:`offload` but on the *build* pool — for O(session)
        compute (snapshot replays) that must not crowd out the small
        preprocessing pool fast creates depend on.  Mandatory work:
        in-flight speculation yields to it like it yields to builds."""
        self._yield_speculation_to_build()
        return asyncio.get_running_loop().run_in_executor(
            self._executor(), fn, *args
        )

    def close(self, wait: bool = False) -> None:
        """Release the worker pools.

        Queued-but-not-started jobs are cancelled either way; a job
        already executing always runs to completion.  ``wait=True``
        blocks until it has — the server's loop thread does this before
        closing its event loop, so a build finishing during shutdown
        never fires completion callbacks into a closed loop.
        Speculative branches are aborted first, so shutdown never waits
        on a lookahead whose result nobody will read.  Queued store
        flushes are **never cancelled** — durability ops already
        enqueued always reach the store (with ``wait=False`` they
        complete on the writer thread, joined at interpreter exit).
        """
        self._heartbeat_stop.set()
        if self._heartbeat_thread is not None:
            self._heartbeat_thread.join(timeout=5)
            self._heartbeat_thread = None
        for managed in self._sessions.values():
            self._drop_speculation(managed)
        if self._batcher is not None:
            # Before the build pool: cancelling queued batch futures
            # unblocks any branch worker waiting on a batched kernel
            # (its router falls back per-session or bails on abort).
            self._batcher.close(wait=wait)
        for attr in ("_build_executor", "_offload_executor"):
            executor = getattr(self, attr)
            if executor is not None:
                executor.shutdown(wait=wait, cancel_futures=True)
                setattr(self, attr, None)
        if self._store_executor is not None:
            self._store_executor.shutdown(wait=wait, cancel_futures=False)
            self._store_executor = None
        # After the build pool: no in-flight build can race the plane's
        # registry teardown.  Releases this worker's shared-segment refs
        # and publish leases so siblings (or the reaper) can reclaim.
        plane = self.index_cache.shared_plane
        if plane is not None:
            plane.close()
        # Likewise for the plan cache's shared tier: releases this
        # worker's plan-segment refs and publish leases.
        if self.plan_cache is not None:
            self.plan_cache.close()

    # --- lifecycle -----------------------------------------------------------

    def sweep(self) -> list[str]:
        """Evict sessions idle past the TTL; returns the evicted ids.

        With a store attached, a durable session is *demoted* — its
        pending journal ops flush to disk and a later touch rehydrates
        it — while non-durable sessions (no store, or unseeded and
        therefore unsnapshotable) are dropped outright as before."""
        if self.ttl_seconds is None:
            return []
        deadline = self._clock() - self.ttl_seconds
        expired = [
            session_id
            for session_id, managed in self._sessions.items()
            if managed.last_used < deadline
        ]
        evicted = []
        for session_id in expired:
            managed = self._sessions[session_id]
            if managed.durable:
                if managed.lock.locked():
                    # A request is mid-protocol on this session; evict
                    # it on a later sweep rather than yank the state a
                    # live handler is about to mutate.  Not evicted,
                    # so not reported as such.
                    continue
                self._demote(session_id, managed)
            else:
                self._drop_speculation(managed)
                del self._sessions[session_id]
                self._expired_total += 1
                self._publish_lifecycle(managed, "session_expired")
            evicted.append(session_id)
        return evicted

    def _demote(self, session_id: str, managed: ManagedSession) -> None:
        """Move a live session to the store (it must be durable).

        The in-memory object is dropped immediately; whatever journal
        ops are still queued flush on the writer thread, and the flush
        future is parked so a rehydration of the same id waits for the
        tail to land before loading."""
        self._drop_speculation(managed)
        del self._sessions[session_id]
        if self._leasing and managed.lease_epoch is not None:
            # Trailing op: the lease is handed back only after every
            # journal write queued before it has committed, so the next
            # owner's acquire-then-load sees the complete tail.
            self._enqueue_store_op(managed, ("release",))
        self._kick_flush(managed)
        if managed.store_flush_future is not None:
            self._demote_flushes[session_id] = managed.store_flush_future
        self._demoted.add(session_id)
        self._demotions_total += 1
        self._publish_lifecycle(managed, "session_demoted")

    def demote(self, session_id: str) -> None:
        """Explicitly evict one live durable session to the store."""
        managed = self._sessions.get(session_id)
        if managed is None:
            raise NotFound(f"no live session {session_id!r}")
        if not managed.durable:
            raise BadRequest(
                f"session {session_id!r} is not durable (no store, or "
                f"unseeded); it cannot be demoted"
            )
        self._demote(session_id, managed)

    def demote_all(self) -> list[str]:
        """Demote every live durable session; returns their ids."""
        demoted = [
            session_id
            for session_id, managed in list(self._sessions.items())
            if managed.durable
        ]
        for session_id in demoted:
            self._demote(session_id, self._sessions[session_id])
        return demoted

    def _demote_lru(self) -> bool:
        """Demote the least-recently-used durable session, if any.

        Sessions whose lock is held are exempt: a request is actively
        using them, and demoting state a handler holds a reference to
        would let its (still-succeeding) answer bypass the
        demotion-flush ordering the next rehydration waits on.  On the
        server every mutation runs under the session lock with no
        awaits between lookup and acquisition, so this check closes
        the demote-while-referenced race outright."""
        candidates = [
            (managed.last_used, session_id)
            for session_id, managed in self._sessions.items()
            if managed.durable and not managed.lock.locked()
        ]
        if not candidates:
            return False
        _, session_id = min(candidates)
        self._demote(session_id, self._sessions[session_id])
        return True

    def _ensure_capacity(self) -> None:
        """Make room in O(live) *before* any index build or replay.

        Without a store this rejects at capacity (429) as before; with
        one, the least-recently-used durable session is demoted to disk
        instead — a full server sheds idle state rather than refusing
        new users."""
        self.sweep()
        while len(self._sessions) >= self.max_sessions:
            if not self._demote_lru():
                raise CapacityExceeded(
                    f"server is at capacity ({self.max_sessions} "
                    f"sessions); retry later or delete a session"
                )

    def _admit(self, managed: ManagedSession) -> ManagedSession:
        self._ensure_capacity()
        self._sessions[managed.session_id] = managed
        return managed

    def _build(
        self,
        session: InferenceSession,
        instance_spec: dict[str, Any],
        cache_hit: bool,
        session_id: str | None = None,
    ) -> ManagedSession:
        now = self._clock()
        self._enable_batching(session)
        return ManagedSession(
            session_id=(
                session_id if session_id is not None
                else uuid.uuid4().hex[:16]
            ),
            session=session,
            instance_spec=instance_spec,
            cache_hit=cache_hit,
            created_at=now,
            last_used=now,
        )

    def _enable_batching(self, session: InferenceSession) -> None:
        """Route the session's entropy kernels through the shared
        batcher.  Every admission path funnels through :meth:`_build`
        (create, resume, rehydrate — replay happens *before* the
        router is installed, so replayed proposals stay per-session),
        and forks inherit the router, so speculative branches ride the
        same batches — and, with the plan cache on, a forked branch
        whose canonical state key hits installs the cached table
        instead of scheduling a kernel job."""
        if self._batcher is None and self.plan_cache is None:
            return
        strategy = session.strategy
        if (
            isinstance(strategy, LookaheadSkylineStrategy)
            and strategy.vectorised
            and strategy.incremental
        ):
            strategy.entropy_router = self._batch_router(
                id(session.index)
            )

    def _plan_key(self, planner) -> str:
        """Canonical state key for the state a planner is bound to."""
        return plan_key_for_planner(
            planner, instance_fingerprint(planner.state.index.instance)
        )

    def _batch_router(
        self, key: Hashable
    ) -> Callable[..., dict[int, Any] | None]:
        """The strategy-side hook, consulted whenever a proposal needs
        an entropy table the session's own tier-0 (primed table or
        in-sync planner fast path) could not supply.

        Resolution order: (1) the plan cache — a hit returns the
        memoised table with no kernel at all; (2) off the event loop,
        block the calling worker thread on the shared batch for ``key``
        (the batch write-through installs the result under its
        ``plan_key``); (3) compute per-session and install.  On the
        event loop the shared-tier probe and publish are skipped so a
        busy registry can never stall serving; a closed batcher or
        cancelled flush declines (→ strategy's per-session path).
        """
        batcher = self._batcher
        plan_cache = self.plan_cache

        def route(planner):
            try:
                asyncio.get_running_loop()
            except RuntimeError:
                on_loop = False
            else:
                # Synchronous propose of an embedder-style call-in:
                # never block the loop on a batch window or the shared
                # registry.  propose_question_async primes off-loop.
                on_loop = True
            plan_key = None
            if plan_cache is not None:
                plan_key = self._plan_key(planner)
                table = plan_cache.get(
                    plan_key, probe_shared=not on_loop
                )
                if table is not None:
                    return table
            if not on_loop and batcher is not None:
                try:
                    return batcher.entropies(
                        key, planner, plan_key=plan_key
                    )
                except (RuntimeError, CancelledError):
                    return None
            if plan_key is None:
                return None
            table = planner.entropies()
            plan_cache.install(plan_key, table, publish=not on_loop)
            return table

        return route

    @staticmethod
    def _builtin_key(spec: dict[str, Any]) -> str:
        """The cache key of a builtin workload spec — one definition,
        shared by the sync and async paths, so both always land on the
        same cache entry and the same single-flight build."""
        return "builtin:" + json.dumps(
            spec["builtin"], sort_keys=True, default=str
        )

    def _index_for_spec(
        self, spec: dict[str, Any], instance: Instance | None
    ) -> tuple[Instance, SignatureIndex, bool]:
        """Resolve ``(instance, shared index, cache hit)`` for a spec.

        Builtin specs are already canonical, so they key the cache
        directly — a hit skips both workload regeneration and content
        hashing, and the instance comes back off the cached index.
        """
        if instance is None and "builtin" in spec:
            index, hit = self.index_cache.get_or_build_keyed(
                self._builtin_key(spec), lambda: instance_from_spec(spec)
            )
            return index.instance, index, hit
        if instance is None:
            instance = instance_from_spec(spec)
        index, hit = self.index_cache.get_or_build(instance)
        return instance, index, hit

    async def _index_for_spec_async(
        self, spec: dict[str, Any], instance: Instance | None
    ) -> tuple[Instance, SignatureIndex, bool]:
        """Async twin of :meth:`_index_for_spec`: the build runs on the
        manager's worker pool (single-flight per key), so the event loop
        keeps serving other sessions during a cold build."""
        cache = self.index_cache
        executor = self._executor()
        if instance is None and "builtin" in spec:
            key = self._builtin_key(spec)
            if key not in cache:
                self._yield_speculation_to_build()
            index, hit = await cache.get_or_build_keyed_async(
                key, lambda: instance_from_spec(spec), executor
            )
            return index.instance, index, hit
        if instance is None:
            # Inline snapshot specs carry the whole dataset —
            # materialise off-loop like everything else O(data).
            instance = await self.offload(instance_from_spec, spec)
        # Hash on the preprocessing pool (fast, never behind a build);
        # only the build itself competes for the build workers.
        key = await self.offload(instance_fingerprint, instance)
        if key not in cache:
            self._yield_speculation_to_build()
        index, hit = await cache.get_or_build_keyed_async(
            key, lambda: instance, executor
        )
        return instance, index, hit

    def _yield_speculation_to_build(self) -> None:
        """A cold index build is about to be submitted: cancel every
        in-flight speculation so mandatory, user-visible work never
        queues behind droppable branch jobs (queued branches are dropped
        outright; running ones bail at their next abort checkpoint)."""
        for managed in self._sessions.values():
            self._drop_speculation(managed)

    def _make_session(
        self, spec: CreateSpec, instance: Instance, index: SignatureIndex
    ) -> InferenceSession:
        return InferenceSession(
            instance,
            strategy_by_name(spec.strategy),
            halt_condition=(
                MaxInteractions(spec.max_questions)
                if spec.max_questions is not None
                else None
            ),
            index=index,
            seed=spec.seed,
        )

    def _check_session_id(self, session_id: str | None) -> None:
        """Reject a caller-assigned id (fleet router) already live here."""
        if session_id is not None and session_id in self._sessions:
            raise Conflict(f"session {session_id!r} already exists")

    def create(self, spec: CreateSpec) -> ManagedSession:
        """Open a session per a validated creation request (inline build)."""
        self._check_session_id(spec.session_id)
        self._ensure_capacity()
        instance, index, hit = self._index_for_spec(
            spec.instance_spec, spec.instance
        )
        session = self._make_session(spec, instance, index)
        managed = self._admit(
            self._build(
                session, spec.instance_spec, hit,
                session_id=spec.session_id,
            )
        )
        self._persist_create(managed)
        self._publish_lifecycle(managed, "session_created")
        return managed

    async def create_async(self, spec: CreateSpec) -> ManagedSession:
        """Like :meth:`create`, but a cold index build happens off-loop.

        Capacity is re-checked by ``_admit`` after the await — the
        server may have filled while the build was in flight.
        """
        self._check_session_id(spec.session_id)
        self._ensure_capacity()
        instance, index, hit = await self._index_for_spec_async(
            spec.instance_spec, spec.instance
        )
        session = self._make_session(spec, instance, index)
        managed = self._admit(
            self._build(
                session, spec.instance_spec, hit,
                session_id=spec.session_id,
            )
        )
        self._persist_create(managed)
        self._publish_lifecycle(managed, "session_created")
        return managed

    def _resume_session(
        self,
        payload: dict[str, Any],
        instance: Instance,
        index: SignatureIndex,
    ) -> InferenceSession:
        try:
            return core_resume_session(
                payload, instance=instance, index=index
            )
        except (SnapshotError, ValueError, KeyError, TypeError) as exc:
            raise BadRequest(f"cannot resume snapshot: {exc}") from exc

    @staticmethod
    def _snapshot_instance_spec(payload: dict[str, Any]) -> dict[str, Any]:
        if not isinstance(payload, dict) or "labeled" not in payload:
            raise BadRequest("expected a session_snapshot payload")
        instance_spec = payload.get("instance")
        if not isinstance(instance_spec, dict):
            raise BadRequest("snapshot carries no instance spec")
        return instance_spec

    def resume(
        self, payload: dict[str, Any], session_id: str | None = None
    ) -> ManagedSession:
        """Open a session by replaying a snapshot payload."""
        self._check_session_id(session_id)
        instance_spec = self._snapshot_instance_spec(payload)
        self._ensure_capacity()
        instance, index, hit = self._index_for_spec(instance_spec, None)
        session = self._resume_session(payload, instance, index)
        managed = self._admit(
            self._build(
                session, instance_spec, hit, session_id=session_id
            )
        )
        self._persist_create(managed)
        self._publish_lifecycle(managed, "session_resumed")
        return managed

    async def resume_async(
        self, payload: dict[str, Any], session_id: str | None = None
    ) -> ManagedSession:
        """Like :meth:`resume`, but the cold index build *and* the
        label replay happen off-loop — replaying a long snapshot steps
        the strategy once per label, which is O(snapshot), not O(1)."""
        self._check_session_id(session_id)
        instance_spec = self._snapshot_instance_spec(payload)
        self._ensure_capacity()
        instance, index, hit = await self._index_for_spec_async(
            instance_spec, None
        )
        session = await self._heavy_offload(
            self._resume_session, payload, instance, index
        )
        managed = self._admit(
            self._build(
                session, instance_spec, hit, session_id=session_id
            )
        )
        self._persist_create(managed)
        self._publish_lifecycle(managed, "session_resumed")
        return managed

    def snapshot(self, session_id: str) -> dict[str, Any]:
        """The resumable state of one session as a JSON payload."""
        managed = self.get(session_id)
        return snapshot_payload(
            managed.session, instance_ref=managed.instance_spec
        )

    # --- event emission ------------------------------------------------------

    def dashboard(self) -> dict[str, Any]:
        """``GET /dashboard``: the incrementally maintained aggregates —
        a dict copy of running counters, with no sweep, no store scan
        and no per-session iteration on the request path."""
        payload = self.events.dashboard.payload(self.events)
        payload["totals"]["sessions_live"] = len(self._sessions)
        return payload

    def _publish_lifecycle(
        self, managed: ManagedSession, kind: str
    ) -> None:
        """One session-lifecycle event (created/resumed/rehydrated/
        demoted/deleted/expired) onto the session's feed (and, like
        every publish, the service-wide feed + dashboard)."""
        self.events.publish(
            managed.session_id,
            kind,
            {
                "session_id": managed.session_id,
                "strategy": managed.session.strategy.name,
                "durable": managed.durable,
                "progress": progress_payload(managed.session),
            },
        )

    def _publish_question(
        self, managed: ManagedSession, question: Question
    ) -> None:
        """A freshly proposed question: the push event streaming clients
        consume instead of polling ``GET /question``.  Carries the full
        question payload, how its entropy table was resolved
        (``source``), the strategy's planner progress (mode, last
        skyline entropy) and the session's progress."""
        session = managed.session
        source = managed.pending_source
        managed.pending_source = None
        self.events.publish(
            managed.session_id,
            "question",
            {
                "session_id": managed.session_id,
                "strategy": session.strategy.name,
                "source": source or "inline",
                "planner": session.strategy.progress(),
                "progress": progress_payload(session),
                **question_payload(session, question),
            },
        )

    def _publish_answer(
        self,
        managed: ManagedSession,
        question_id: int,
        example: Example,
        hit: bool,
    ) -> None:
        """One recorded answer (and, when Γ now holds, the terminal
        ``done`` event).  ``removed_classes`` comes straight from the
        session's :class:`~repro.core.state.StateDelta` — the informative
        classes this label eliminated."""
        session = managed.session
        delta = session.last_delta
        removed = (
            int(delta.removed.size)
            if delta is not None and delta.removed is not None
            else None
        )
        self.events.publish(
            managed.session_id,
            "answer",
            {
                "session_id": managed.session_id,
                "strategy": session.strategy.name,
                "question_id": question_id,
                "label": str(example.label),
                "speculation_hit": hit,
                "removed_classes": removed,
                "planner": session.strategy.progress(),
                "progress": progress_payload(session),
            },
        )
        if session.is_finished():
            self.events.publish(
                managed.session_id,
                "done",
                {
                    "session_id": managed.session_id,
                    "strategy": session.strategy.name,
                    "interactions": session.state.interaction_count,
                    "progress": progress_payload(session),
                },
            )

    # --- question round-trips (with speculative precompute) ------------------

    def propose_question(self, managed: ManagedSession) -> Question | None:
        """The session's next question, kicking off speculation for it.

        Must run under the session's lock (the app does).  Idempotent
        like :meth:`InferenceSession.propose`: re-fetching the pending
        question neither consults the strategy again nor re-submits
        speculation jobs.
        """
        question = managed.session.propose()
        if question is not None:
            fresh = managed.question_sent_id != question.question_id
            if fresh:
                # newly proposed (not an idempotent re-fetch): the
                # think-time clock starts now, and the speculation
                # decision is made exactly once — so a polling client
                # neither re-runs the skip gates nor skews the counters
                managed.question_sent_id = question.question_id
                managed.question_sent_at = self._clock()
                # Streamed before speculation forks: subscribers get the
                # push the moment the proposal resolves.
                self._publish_question(managed, question)
                if self.speculate:
                    self._speculate(managed, question)
        return question

    async def propose_question_async(
        self, managed: ManagedSession
    ) -> Question | None:
        """Server path for ``GET /question``: when the proposal will
        run an entropy kernel, the table is resolved *off-loop* first —
        a plan-cache probe (both tiers), then the shared batcher
        (coalescing with other sessions' concurrent proposals), then a
        per-session compute — and primed into the strategy so the
        ordinary synchronous path consumes it without blocking the
        event loop.  Runs under the session lock (the app holds it),
        so the state cannot move between submission and propose."""
        session = managed.session
        strategy = session.strategy
        if (
            (self._batcher is not None or self.plan_cache is not None)
            and session.pending_question is None
            and isinstance(strategy, LookaheadSkylineStrategy)
            and strategy.entropy_router is not None
            and not session.is_finished()
            and session.state.has_informative()
        ):
            planner = strategy.planner_for(session.state)
            plan_key: str | None = None
            entropies = None
            source = None
            if self.plan_cache is not None:

                def probe():
                    key = self._plan_key(planner)
                    return key, self.plan_cache.get(key)

                plan_key, entropies = await self.offload(probe)
                if entropies is not None:
                    source = "plan_cache"
            if entropies is None and self._batcher is not None:
                try:
                    future = self._batcher.submit(
                        id(session.index), planner, plan_key=plan_key
                    )
                    entropies = await asyncio.wrap_future(future)
                    source = "batched"
                except (RuntimeError, CancelledError):
                    entropies = None  # closed batcher: inline path
            elif entropies is None and plan_key is not None:
                # Plan cache on, batcher off: run the kernel off-loop
                # and write it through both tiers.
                def compute(key=plan_key):
                    table = planner.entropies()
                    self.plan_cache.install(key, table)
                    return table

                entropies = await self._heavy_offload(compute)
                source = "computed"
            if entropies is not None:
                strategy.prime_entropies(session.state, entropies)
                # How this table was resolved, for the question event.
                managed.pending_source = source
        return self.propose_question(managed)

    def record_answer(
        self, managed: ManagedSession, question_id: int, label: Label
    ) -> Example:
        """Record the user's label, swapping in a precomputed branch.

        On a speculation hit the matching fork — which already recorded
        the label *and* proposed the next question — becomes the live
        session, so the answer and the follow-up question fetch are both
        lookups.  On a miss (branch still computing) or with speculation
        off, the label takes the ordinary inline path.  Raises exactly
        what :meth:`InferenceSession.answer` raises; an answer with a
        stale question id leaves the speculation intact for the retry,
        while an answer the sample rejects (only possible when a custom
        strategy proposed an already-certain class) has spent the
        question's speculation and retries inline.

        Every accepted answer publishes an ``answer`` event (and, when
        Γ now holds, a ``done`` event) on the session's feed; a
        rejected one publishes nothing.
        """
        example, hit = self._record_answer(managed, question_id, label)
        self._publish_answer(managed, question_id, example, hit)
        return example

    def _record_answer(
        self, managed: ManagedSession, question_id: int, label: Label
    ) -> tuple[Example, bool]:
        """The recording itself; returns ``(example, speculation_hit)``."""
        self._observe_think_time(managed, question_id)
        # The pending question's class id is what the journal records;
        # captured before a speculation hit swaps in the fork (which has
        # already answered and cleared its pending question).
        pending = managed.session.pending_question
        spec = managed.speculation
        if spec is None or spec.question_id != question_id:
            # No speculation for this id.  A mismatched id is rejected by
            # the session below without touching the live speculation.
            example = managed.session.answer(question_id, label)
            self._journal_answer(managed, pending.class_id, label)
            return example, False
        managed.speculation = None
        for branch_label, branch in spec.branches.items():
            if branch_label is not label:
                branch.cancel()
        branch = spec.branches.get(label)
        outcome = None
        if (
            branch is not None
            and branch.future.done()
            and not branch.future.cancelled()
        ):
            try:
                outcome = branch.future.result()
            except Exception:  # noqa: BLE001 - fall back to the inline path
                outcome = None
                # Counted separately from misses: erroring branches mean
                # a fork/planner bug, not an oracle winning the race.
                with self._spec_lock:
                    self._spec_branch_errors += 1
        if outcome is not None:
            example, twin = outcome
            managed.session = twin
            with self._spec_lock:
                self._spec_hits += 1
                self._spec_hits_by_depth[branch.depth] = (
                    self._spec_hits_by_depth.get(branch.depth, 0) + 1
                )
            self._adopt_children(managed, branch, twin)
            self._journal_answer(managed, pending.class_id, label)
            # The adopted fork's pending question was precomputed by
            # the speculation tree — the question event says so.
            managed.pending_source = "speculation"
            return example, True
        if branch is not None:
            branch.cancel()
        with self._spec_lock:
            self._spec_misses += 1
            depth = branch.depth if branch is not None else 1
            self._spec_misses_by_depth[depth] = (
                self._spec_misses_by_depth.get(depth, 0) + 1
            )
        example = managed.session.answer(question_id, label)
        self._journal_answer(managed, pending.class_id, label)
        return example, False

    @staticmethod
    def _adopt_children(
        managed: ManagedSession,
        branch: _SpeculativeBranch,
        twin: InferenceSession,
    ) -> None:
        """A hit's precomputed grandchild branches become the *next*
        question's speculation outright — answer→question→answer then
        collapses to two lookups, no new forks submitted."""
        if branch.children and twin.pending_question is not None:
            managed.speculation = Speculation(
                twin.pending_question.question_id, branch.children
            )
        else:
            for child in branch.children.values():
                child.cancel()

    def _observe_think_time(
        self, managed: ManagedSession, question_id: int
    ) -> None:
        """Fold the question→answer gap into the session's EWMA.

        Each question is observed at most once — the clock is consumed
        here, so a duplicate/retried answer POST cannot fold the same
        question's (by then much larger) gap in a second time.
        """
        if (
            managed.question_sent_at is None
            or managed.question_sent_id != question_id
        ):
            return
        gap = self._clock() - managed.question_sent_at
        managed.question_sent_at = None
        if managed.think_ewma is None:
            managed.think_ewma = gap
        else:
            managed.think_ewma = 0.5 * managed.think_ewma + 0.5 * gap

    def _speculate(
        self, managed: ManagedSession, question: Question
    ) -> None:
        """Precompute the answer tree for the pending question."""
        if not managed.session.strategy.speculative:
            return  # proposal is cheaper than a fork — nothing to hide
        spec = managed.speculation
        if spec is not None and spec.question_id == question.question_id:
            # Already in flight for this very question — or *adopted*
            # from a hit branch's precomputed grandchildren.  Checked
            # before every other gate so an adopted tree is neither
            # dropped nor run through the skip counters.
            return
        if (
            managed.think_ewma is not None
            and managed.think_ewma < self.speculation_min_think_seconds
        ):
            # The oracle answers faster than a branch could compute —
            # a zero-think-time client (load generator, script) gains
            # nothing and a fork is pure overhead.  The first question
            # always speculates (optimistic start, no gap observed yet).
            with self._spec_lock:
                self._spec_skipped_think += 1
            return
        if self.index_cache.pending_builds():
            # A cold index build — mandatory, user-visible work — is on
            # (or queued for) the build pool; droppable speculation must
            # not delay it (priority inversion).
            with self._spec_lock:
                self._spec_skipped += 1
            return
        self._drop_speculation(managed)
        branches = self._spawn_branches(
            managed.session, question.question_id, depth=1
        )
        if branches is None:
            return
        with self._spec_lock:
            self._spec_submitted += 1
        managed.speculation = Speculation(question.question_id, branches)

    def _spawn_branches(
        self,
        session: InferenceSession,
        question_id: int,
        depth: int,
    ) -> dict[Label, _SpeculativeBranch] | None:
        """Fork ``session`` and submit both answer branches at ``depth``,
        slot-gated as one pair; ``None`` when capacity declined them.

        Called from the event-loop side for the root pair and from
        branch workers for grandchildren — the slot ledger is the only
        shared state, and every submitted node releases its slot via
        the done callback regardless of which side spawned it."""
        with self._spec_lock:
            if self._spec_inflight + 2 > self.speculation_slots:
                self._spec_skipped += 1
                return None
            self._spec_inflight += 2
        branches: dict[Label, _SpeculativeBranch] = {}
        for branch_label in (Label.POSITIVE, Label.NEGATIVE):
            node = _SpeculativeBranch(depth=depth)
            twin = session.fork()
            try:
                node.future = self._executor().submit(
                    self._speculate_branch,
                    twin,
                    question_id,
                    branch_label,
                    node,
                )
            except RuntimeError:
                # Executor shut down mid-spawn: reap what made it out
                # (their done callbacks release those slots) and hand
                # back the unsubmitted reservations ourselves.
                for submitted in branches.values():
                    submitted.cancel()
                with self._spec_lock:
                    self._spec_inflight -= 2 - len(branches)
                return None
            node.future.add_done_callback(self._branch_finished)
            branches[branch_label] = node
        return branches

    def _branch_finished(self, _future: Future) -> None:
        with self._spec_lock:
            self._spec_inflight -= 1

    def _speculate_branch(
        self,
        twin: InferenceSession,
        question_id: int,
        label: Label,
        node: _SpeculativeBranch,
    ) -> tuple[Example, InferenceSession] | None:
        """Answer the fork with one hypothetical label and propose the
        follow-up question; abort checkpoints keep a cancelled branch
        from burning a full lookahead step.

        Below ``speculation_depth`` a finished branch fans out again,
        precomputing *its* answer pair (the grandchild level of the
        tree).  The worker attaches the children and then re-checks
        abort — mirroring ``cancel``'s set-then-walk — so a
        cancellation racing the attach always reaps them."""
        abort = node.abort
        if abort.is_set():
            return None
        example = twin.answer(question_id, label)
        if abort.is_set():
            return None
        next_question = twin.propose()
        if (
            next_question is not None
            and node.depth < self.speculation_depth
            and not abort.is_set()
        ):
            children = self._spawn_branches(
                twin, next_question.question_id, depth=node.depth + 1
            )
            if children is not None:
                node.children = children
                if abort.is_set():
                    for child in children.values():
                        child.cancel()
        return example, twin

    @staticmethod
    def _drop_speculation(managed: ManagedSession) -> None:
        if managed.speculation is not None:
            managed.speculation.cancel()
            managed.speculation = None

    # --- durable store plumbing ----------------------------------------------

    @property
    def _leasing(self) -> bool:
        return self.store is not None and self.owner_id is not None

    def _ensure_heartbeat(self) -> None:
        """Start the lease-renewal thread (once, lazily, leasing only).

        One daemon thread renews every held lease at a third of the TTL
        so a live worker never expires; a worker that stops renewing —
        SIGKILL, hard hang — loses its leases one TTL later and the
        survivors take its sessions over."""
        if not self._leasing or self._heartbeat_thread is not None:
            return
        self._heartbeat_stop.clear()
        self._heartbeat_thread = threading.Thread(
            target=self._heartbeat_loop,
            name="lease-heartbeat",
            daemon=True,
        )
        self._heartbeat_thread.start()

    def _heartbeat_loop(self) -> None:
        interval = self.lease_ttl_seconds / 3.0
        while not self._heartbeat_stop.wait(interval):
            # Snapshot: the event loop owns self._sessions; this thread
            # only flips per-session flags, never mutates the dict.
            for managed in list(self._sessions.values()):
                if (
                    not managed.durable
                    or managed.lease_lost
                    or managed.lease_epoch is None
                ):
                    continue
                try:
                    renewed = self.store.renew_lease(
                        managed.session_id,
                        self.owner_id,
                        managed.lease_epoch,
                        self.lease_ttl_seconds,
                    )
                except Exception:  # noqa: BLE001 - keep heartbeating others
                    continue
                if not renewed:
                    self._mark_lease_lost(managed)

    def _mark_lease_lost(self, managed: ManagedSession) -> None:
        """Another owner took this session: stop writing immediately
        and flag it for shedding (the dict entry is removed on the
        event loop, in :meth:`_shed_lease_lost`)."""
        with managed.store_lock:
            managed.store_ops.clear()
        managed.lease_lost = True
        managed.durable = False
        self._demoted.discard(managed.session_id)
        self._leases_lost += 1

    def _shed_lease_lost(self, session_id: str) -> None:
        """Drop a deposed session from memory (event loop only).

        Its durable state now belongs to the lease's new owner, so the
        store row is left strictly alone; a later touch goes through
        the ordinary rehydrate path and competes for the lease again."""
        managed = self._sessions.get(session_id)
        if managed is not None and managed.lease_lost:
            self._drop_speculation(managed)
            del self._sessions[session_id]

    def _snapshot_payload(self, managed: ManagedSession) -> dict[str, Any]:
        return snapshot_payload(
            managed.session, instance_ref=managed.instance_spec
        )

    def _persist_create(self, managed: ManagedSession) -> None:
        """Write the session's create record (checkpoint at admission).

        Unseeded sessions cannot snapshot, hence cannot be journaled —
        they stay non-durable and keep the delete-on-evict behaviour.
        Under leasing the queue leads with an ``acquire`` op, so the
        lease (and its fencing epoch) is in hand before the create
        checkpoint — or any later answer — touches the store.
        """
        if self.store is None or managed.session.seed is None:
            return
        managed.durable = True
        seq = managed.session.state.interaction_count
        managed.store_seq = seq
        managed.checkpoint_seq = seq
        if self._leasing:
            self._enqueue_store_op(managed, ("acquire",))
            self._ensure_heartbeat()
        self._enqueue_store_op(
            managed, ("checkpoint", self._snapshot_payload(managed), seq)
        )
        self._kick_flush(managed)

    def _journal_answer(
        self, managed: ManagedSession, class_id: int, label: Label
    ) -> None:
        """Enqueue one accepted answer (and, on cadence, a checkpoint)."""
        if not managed.durable:
            return
        managed.store_seq += 1
        seq = managed.store_seq
        self._enqueue_store_op(
            managed, ("answer", seq, class_id, str(label))
        )
        if seq - managed.checkpoint_seq >= self.checkpoint_every:
            managed.checkpoint_seq = seq
            self._enqueue_store_op(
                managed,
                ("checkpoint", self._snapshot_payload(managed), seq),
            )
        self._kick_flush(managed)
        if (
            self._sessions.get(managed.session_id) is not managed
            and managed.store_flush_future is not None
        ):
            # This session was demoted (or replaced) while the caller
            # still held it — an embedder-thread interleaving the
            # lock-guarded server path prevents.  Re-park the late
            # answer's flush so the next rehydration waits it out
            # instead of loading a journal missing an acknowledged
            # answer.
            self._demote_flushes[managed.session_id] = (
                managed.store_flush_future
            )

    def _enqueue_store_op(
        self, managed: ManagedSession, op: tuple
    ) -> None:
        with managed.store_lock:
            managed.store_ops.append(op)

    def _kick_flush(self, managed: ManagedSession) -> None:
        """Submit a drain job unless one is already in flight
        (per-session single-flight: a burst of answers becomes one
        batched store transaction)."""
        with managed.store_lock:
            if managed.store_flushing or not managed.store_ops:
                return
            managed.store_flushing = True
        managed.store_flush_future = self._store_pool().submit(
            self._drain_store_ops, managed
        )

    def _drain_store_ops(self, managed: ManagedSession) -> None:
        """Flush everything queued for one session (writer thread).

        Loops until the queue is empty so ops enqueued while a batch was
        writing are picked up by the same job — the single-flight
        guarantee.  Consecutive answers collapse into one journal
        transaction.  A store failure marks the session non-durable
        (and drops its queue) rather than erroring the answer path
        forever; the error is counted for ``GET /stats``.
        """
        store = self.store
        while True:
            with managed.store_lock:
                ops = managed.store_ops[:]
                managed.store_ops.clear()
                if not ops:
                    managed.store_flushing = False
                    return
            try:
                answers: list[tuple[int, int, str]] = []
                for op in ops:
                    if op[0] == "answer":
                        answers.append(op[1:])
                        continue
                    if answers:
                        store.append_answers(
                            managed.session_id,
                            answers,
                            fence=self._fence_of(managed),
                        )
                        answers = []
                    if op[0] == "acquire":
                        self._drain_acquire(managed)
                        continue
                    if op[0] == "release":
                        if managed.lease_epoch is not None:
                            store.release_lease(
                                managed.session_id,
                                self.owner_id,
                                managed.lease_epoch,
                            )
                            managed.lease_epoch = None
                        continue
                    store.put_checkpoint(
                        managed.session_id,
                        op[1],
                        op[2],
                        fence=self._fence_of(managed),
                    )
                if answers:
                    store.append_answers(
                        managed.session_id,
                        answers,
                        fence=self._fence_of(managed),
                    )
            except LeaseFenced:
                # Deposed: another worker holds the lease now and owns
                # the stored row — dropping OUR queue is mandatory,
                # touching THEIR data is forbidden (no delete here,
                # unlike the generic-failure arm below).
                with managed.store_lock:
                    managed.store_flushing = False
                self._mark_lease_lost(managed)
                self._fenced_total += 1
                return
            except Exception:  # noqa: BLE001 - durability must not kill serving
                with managed.store_lock:
                    managed.store_ops.clear()
                    managed.store_flushing = False
                managed.durable = False
                self._store_errors += 1
                self._demoted.discard(managed.session_id)
                try:
                    # The row now trails the live session; left behind,
                    # a later eviction-then-touch (or a DELETE, which
                    # skips the store for non-durable sessions) would
                    # resurrect a silently rolled-back copy.  Under
                    # leasing the row is deleted only while we still
                    # hold the lease (released here, atomically): if a
                    # takeover already happened, the row is the new
                    # owner's to keep.
                    if self._leasing:
                        epoch = managed.lease_epoch
                        managed.lease_epoch = None
                        if epoch is not None and self.store.release_lease(
                            managed.session_id, self.owner_id, epoch
                        ):
                            self.store.delete(managed.session_id)
                    else:
                        self.store.delete(managed.session_id)
                except Exception:  # noqa: BLE001 - store is already failing
                    pass
                return

    def _fence_of(self, managed: ManagedSession) -> tuple[str, int] | None:
        """The (owner, epoch) stamp for this session's store writes —
        None outside a fleet, so single-process stores never pay the
        per-write lease lookup."""
        if not self._leasing or managed.lease_epoch is None:
            return None
        return (self.owner_id, managed.lease_epoch)

    def _drain_acquire(self, managed: ManagedSession) -> None:
        """Process a queued ``acquire`` op (writer thread).

        A fresh session id cannot be contended, so a denial means the
        id is deliberately reused while another worker still holds it —
        surfaced as :class:`LeaseFenced` so the shared failure arm
        sheds the session without touching the holder's data."""
        lease = self.store.acquire_lease(
            managed.session_id, self.owner_id, self.lease_ttl_seconds
        )
        if lease is None:
            self._lease_denied += 1
            raise LeaseFenced(
                f"session {managed.session_id!r}: lease denied — held "
                f"by another live owner"
            )
        managed.lease_epoch = lease.epoch

    def flush_store(self) -> None:
        """Block until every enqueued store op has committed.

        For embedders and tests that need a durability barrier (e.g.
        before deliberately killing the process); the serving path never
        calls this.
        """
        futures = []
        for managed in list(self._sessions.values()):
            self._kick_flush(managed)
            if managed.store_flush_future is not None:
                futures.append(managed.store_flush_future)
        # snapshot: a concurrent rehydration's _load_stored pops
        # entries from a worker thread while we iterate
        futures.extend(list(self._demote_flushes.values()))
        for future in futures:
            future.result()

    def _load_stored(self, session_id: str) -> StoredSession | None:
        """Fetch a session's recoverable state (worker thread), first
        waiting out any in-flight demotion flush for the same id so the
        journal tail is complete before it is read.

        Under leasing the lease is acquired *before* the load: from the
        moment it is granted, any late flush from the previous owner is
        fenced out, so the journal read here is the final word.  A
        session whose lease has not yet expired (its owner may still be
        alive) is waited on briefly — the takeover window after a
        worker SIGKILL — and then refused with 409 rather than served
        from a contended copy."""
        flush = self._demote_flushes.pop(session_id, None)
        if flush is not None:
            flush.result()
        if self._leasing:
            if session_id not in self.store:
                return None
            lease = self._acquire_for_rehydrate(session_id)
            self._rehydrate_epochs[session_id] = lease.epoch
        return self.store.load(session_id)

    def _acquire_for_rehydrate(self, session_id: str):
        deadline = time.time() + self.lease_ttl_seconds * 2.0
        while True:
            lease = self.store.acquire_lease(
                session_id, self.owner_id, self.lease_ttl_seconds
            )
            if lease is not None:
                return lease
            if time.time() >= deadline:
                self._lease_denied += 1
                raise Conflict(
                    f"session {session_id!r} is leased to another "
                    f"worker; retry shortly"
                )
            time.sleep(min(0.05, self.lease_ttl_seconds / 10.0))

    def _admit_rehydrated(
        self,
        session_id: str,
        session: InferenceSession,
        instance_spec: dict[str, Any],
        cache_hit: bool,
        stored: StoredSession,
    ) -> ManagedSession:
        managed = self._build(
            session, instance_spec, cache_hit, session_id=session_id
        )
        managed.durable = True
        managed.store_seq = stored.journal_seq
        managed.checkpoint_seq = stored.checkpoint_seq
        if self._leasing:
            managed.lease_epoch = self._rehydrate_epochs.pop(
                session_id, None
            )
            self._ensure_heartbeat()
        self._admit(managed)
        self._demoted.discard(session_id)
        self._rehydrated_total += 1
        self._publish_lifecycle(managed, "session_rehydrated")
        return managed

    def _rehydrate_blocking(
        self, session_id: str
    ) -> ManagedSession | None:
        """Synchronous rehydration for embedders (inline replay)."""
        stored = self._load_stored(session_id)
        if stored is None:
            return None
        instance_spec = self._snapshot_instance_spec(stored.payload)
        self._ensure_capacity()
        instance, index, hit = self._index_for_spec(instance_spec, None)
        session = self._resume_session(stored.payload, instance, index)
        return self._admit_rehydrated(
            session_id, session, instance_spec, hit, stored
        )

    async def _drive_rehydrate(
        self, session_id: str, future: asyncio.Future
    ) -> None:
        """Run one rehydration to completion and settle its future
        (cache-owned task, same pattern as the index cache's builds:
        cancelling one waiter never abandons the rehydration)."""
        try:
            stored = await self.offload(self._load_stored, session_id)
            if stored is None:
                raise NotFound(f"no session {session_id!r}")
            instance_spec = self._snapshot_instance_spec(stored.payload)
            self._ensure_capacity()
            instance, index, hit = await self._index_for_spec_async(
                instance_spec, None
            )
            session = await self._heavy_offload(
                self._resume_session, stored.payload, instance, index
            )
            if session_id in self._rehydrate_tombstones:
                # Deleted while we were replaying: do not resurrect.
                raise NotFound(f"no session {session_id!r}")
            managed = self._admit_rehydrated(
                session_id, session, instance_spec, hit, stored
            )
        except BaseException as exc:
            if not future.done():
                future.set_exception(exc)
                future.exception()
            if isinstance(exc, asyncio.CancelledError):
                raise
        else:
            if not future.done():
                future.set_result(managed)
        finally:
            self._rehydrating.pop(session_id, None)
            self._rehydrate_tombstones.discard(session_id)

    # --- lookup --------------------------------------------------------------

    def _touch_live_durable(self, session_id: str) -> ManagedSession | None:
        """Short-circuit for a *durable* session still in memory.

        Touched exactly at TTL expiry, sweeping first would demote it
        and the same call would immediately rehydrate it — a flush
        wait, store load and full replay reconstructing the state that
        is one dict lookup away (and dropping the pending question on
        the floor).  Touching IS the TTL reset, so the durable session
        is revived in place instead.  Non-durable sessions keep the
        sweep-first semantics: expired means gone."""
        managed = self._sessions.get(session_id)
        if managed is not None and managed.durable:
            managed.last_used = self._clock()
            return managed
        return None

    def get(self, session_id: str) -> ManagedSession:
        """The live session with this id (touches its TTL clock).

        With a store attached, a demoted or recoverable session is
        transparently rehydrated — *inline*, for synchronous embedders;
        the server path uses :meth:`get_async`, which replays off-loop.
        """
        self._shed_lease_lost(session_id)
        managed = self._touch_live_durable(session_id)
        if managed is not None:
            self.sweep()
            return managed
        self.sweep()
        managed = self._sessions.get(session_id)
        if managed is None and self.store is not None:
            managed = self._rehydrate_blocking(session_id)
        if managed is None:
            raise NotFound(f"no session {session_id!r}")
        managed.last_used = self._clock()
        return managed

    async def get_async(self, session_id: str) -> ManagedSession:
        """Like :meth:`get`, but rehydration runs on the worker pools
        (store read on the preprocessing pool, label replay on the
        build pool) behind per-session single-flight — two concurrent
        touches of one demoted session trigger exactly one replay."""
        self._shed_lease_lost(session_id)
        managed = self._touch_live_durable(session_id)
        if managed is not None:
            self.sweep()
            return managed
        self.sweep()
        managed = self._sessions.get(session_id)
        if managed is not None:
            managed.last_used = self._clock()
            return managed
        if self.store is None:
            raise NotFound(f"no session {session_id!r}")
        pending = self._rehydrating.get(session_id)
        if pending is None:
            loop = asyncio.get_running_loop()
            pending = loop.create_future()
            self._rehydrating[session_id] = pending
            task = loop.create_task(
                self._drive_rehydrate(session_id, pending)
            )
            self._rehydrate_tasks.add(task)
            task.add_done_callback(self._rehydrate_tasks.discard)
        managed = await asyncio.shield(pending)
        managed.last_used = self._clock()
        return managed

    def delete(self, session_id: str) -> None:
        """Drop a session — and, when a store is attached, forget its
        durable state too; unknown ids raise :class:`NotFound`."""
        if not self._delete_live(session_id):
            if self.store is not None and session_id in self.store:
                self._delete_stored(session_id)
                return
            raise NotFound(f"no session {session_id!r}")

    async def delete_async(self, session_id: str) -> None:
        """Server twin of :meth:`delete`: the store existence probe for
        a non-live id is a SQLite read, so it runs on the preprocessing
        pool rather than stalling the event loop behind the writer
        thread's store lock mid-commit."""
        if self._delete_live(session_id):
            return
        if self.store is not None and await self.offload(
            self.store.__contains__, session_id
        ):
            self._delete_stored(session_id)
            return
        raise NotFound(f"no session {session_id!r}")

    def _delete_live(self, session_id: str) -> bool:
        """Drop the live session, if any; True when one was dropped."""
        managed = self._sessions.pop(session_id, None)
        if managed is None:
            return False
        self._drop_speculation(managed)
        if managed.durable:
            # Stop journaling first so a queued flush cannot resurrect
            # the row; the delete runs on the writer thread *behind*
            # any in-flight flush (single writer, FIFO).
            with managed.store_lock:
                managed.store_ops.clear()
            managed.durable = False
            self._forget_stored(session_id)
        self._publish_lifecycle(managed, "session_deleted")
        return True

    def _delete_stored(self, session_id: str) -> None:
        """Forget a demoted / crash-orphaned session."""
        if session_id in self._rehydrating:
            # A touch is replaying this session right now; mark it so
            # the rehydrate task refuses to admit it.
            self._rehydrate_tombstones.add(session_id)
        self._forget_stored(session_id)
        self.events.publish(
            session_id,
            "session_deleted",
            {"session_id": session_id, "stored": True},
        )

    def _forget_stored(self, session_id: str) -> None:
        self._demoted.discard(session_id)
        self._demote_flushes.pop(session_id, None)
        self._store_pool().submit(self.store.delete, session_id)

    def list_sessions(self) -> list[ManagedSession]:
        """All live sessions, oldest first."""
        self.sweep()
        return sorted(
            self._sessions.values(), key=lambda m: m.created_at
        )

    def _counts_payload(
        self, stored_ids: list[str] | None
    ) -> dict[str, int]:
        counts = {
            "live": len(self._sessions),
            "demoted": len(self._demoted),
            "recoverable": 0,
        }
        if stored_ids is not None:
            counts["recoverable"] = len(
                set(stored_ids).difference(self._sessions)
            )
        return counts

    def session_counts(self) -> dict[str, int]:
        """Live/demoted/recoverable tallies for ``GET /sessions``.

        *live* sessions are in memory; *demoted* ones were evicted to
        the store by this process and rehydrate on touch; *recoverable*
        is every stored session that is not currently live — demoted
        ones plus sessions left by a previous (possibly crashed)
        process on the same store.
        """
        self.sweep()
        return self._counts_payload(
            self.store.session_ids() if self.store is not None else None
        )

    async def session_counts_async(self) -> dict[str, int]:
        """Like :meth:`session_counts`, but the store read runs on the
        preprocessing pool — a SQLite scan must not stall the event
        loop behind the writer thread's store lock mid-commit."""
        self.sweep()
        stored_ids = (
            await self.offload(self.store.session_ids)
            if self.store is not None
            else None
        )
        return self._counts_payload(stored_ids)

    def __len__(self) -> int:
        return len(self._sessions)

    def builds(self) -> list[dict[str, Any]]:
        """Progress of every in-flight index build (for ``GET /builds``)."""
        return self.index_cache.pending_builds()

    async def stats_async(self) -> dict[str, Any]:
        """Server path for ``GET /stats``: the store's counter scan
        runs on the preprocessing pool, off the event loop."""
        store_stats = (
            await self.offload(self.store.stats)
            if self.store is not None
            else None
        )
        return self.stats(_store_stats=store_stats)

    def stats(
        self, _store_stats: dict[str, Any] | None = None
    ) -> dict[str, Any]:
        """Server-level counters for the stats endpoint."""
        self.sweep()
        with self._spec_lock:
            hits, misses = self._spec_hits, self._spec_misses
            hits_by_depth: dict[str, int] = {}
            misses_by_depth: dict[str, int] = {}
            ratio_by_depth: dict[str, float] = {}
            for level in range(1, self.speculation_depth + 1):
                h = self._spec_hits_by_depth.get(level, 0)
                m = self._spec_misses_by_depth.get(level, 0)
                hits_by_depth[str(level)] = h
                misses_by_depth[str(level)] = m
                ratio_by_depth[str(level)] = round(h / max(1, h + m), 4)
            speculation = {
                "enabled": self.speculate,
                "depth": self.speculation_depth,
                "slots": self.speculation_slots,
                "min_think_seconds": self.speculation_min_think_seconds,
                "in_flight": self._spec_inflight,
                "submitted": self._spec_submitted,
                "hits": hits,
                "misses": misses,
                "skipped_capacity": self._spec_skipped,
                "skipped_think": self._spec_skipped_think,
                "branch_errors": self._spec_branch_errors,
                "hit_ratio": round(hits / max(1, hits + misses), 4),
                "hits_by_depth": hits_by_depth,
                "misses_by_depth": misses_by_depth,
                "hit_ratio_by_depth": ratio_by_depth,
            }
        kernel_batch: dict[str, Any] = {
            "enabled": self._batcher is not None
        }
        if self._batcher is not None:
            kernel_batch.update(self._batcher.stats())
        plan_cache: dict[str, Any] = {
            "enabled": self.plan_cache is not None
        }
        if self.plan_cache is not None:
            plan_cache.update(self.plan_cache.stats())
        store: dict[str, Any] = {"enabled": self.store is not None}
        if self.store is not None:
            store.update(
                _store_stats
                if _store_stats is not None
                else self.store.stats()
            )
            store.update(
                checkpoint_every=self.checkpoint_every,
                demoted=len(self._demoted),
                demotions_total=self._demotions_total,
                rehydrations_total=self._rehydrated_total,
                flush_errors=self._store_errors,
            )
            if self._leasing:
                store["lease"] = {
                    "owner": self.owner_id,
                    "ttl_seconds": self.lease_ttl_seconds,
                    "held": sum(
                        1
                        for m in self._sessions.values()
                        if m.lease_epoch is not None
                    ),
                    "fenced_writes": self._fenced_total,
                    "lost": self._leases_lost,
                    "denied": self._lease_denied,
                }
        resident = self.index_cache.resident_bytes()
        memory = {
            "rss_bytes": _process_rss_bytes(),
            "index_private_bytes": resident["private_bytes"],
            "index_shared_bytes": resident["shared_bytes"],
        }
        return {
            "sessions": len(self._sessions),
            "max_sessions": self.max_sessions,
            "ttl_seconds": self.ttl_seconds,
            "expired_total": self._expired_total,
            "build_workers": self.build_workers,
            "memory": memory,
            "speculation": speculation,
            "kernel_batch": kernel_batch,
            "plan_cache": plan_cache,
            "store": store,
            "index_cache": self.index_cache.stats(),
        }
