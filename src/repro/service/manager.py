"""Session lifecycle: creation, lookup, TTL eviction, snapshot/resume.

The manager owns every live :class:`~repro.core.session.InferenceSession`
plus the shared :class:`~repro.service.index_cache.IndexCache`.  Sessions
on the same data share one immutable index but each keeps its own
``InferenceState``; an :class:`asyncio.Lock` per session serialises the
mutating operations (propose/answer/snapshot) so concurrent HTTP requests
against one session cannot interleave mid-protocol.

Expiry is lazy: every entry-point sweeps sessions idle longer than the
TTL, and capacity is enforced after the sweep — a full server answers
creation requests with 429 rather than evicting live users.

Session creation has two flavours: the synchronous :meth:`~SessionManager.create`
builds a cold index inline (embedding callers, tests), while the server
uses :meth:`~SessionManager.create_async`, which pushes the build through
the cache's single-flight path onto a ``concurrent.futures`` worker pool
(``build_workers`` threads, shard fan-out per ``shard_rows``) so a cold
build never stalls the event loop.

**Speculative next-question precompute.**  Question selection — L2S
especially — is the expensive half of a round-trip, and it happens while
the human oracle is *thinking*.  When a question goes out,
:meth:`~SessionManager.propose_question` forks the session twice and
answers each fork with one of the two possible labels on the build pool,
running the next proposal ahead of time; when the real answer arrives,
:meth:`~SessionManager.record_answer` swaps in the matching fork and the
follow-up ``GET /question`` is a lookup.  Both branches are precomputed,
so a *finished* branch always matches; a miss only means the oracle
answered faster than the branch could compute, in which case the branch
is aborted and the answer takes the ordinary inline path.  Speculation
is capacity-capped (``speculation_slots`` concurrent branch jobs;
excess proposals skip speculation rather than queue), cancellation-safe
(aborted branches stop at the next checkpoint and their forks are
discarded; pending jobs are cancelled outright), and **adaptive**: each
session's question→answer gap is tracked as an EWMA, and a session
whose oracle answers faster than ``speculation_min_think_seconds`` has
no think-time to hide work behind, so it stops speculating (a load
generator hammering the API costs nothing; a human thinking for seconds
gets every precompute).  ``GET /stats`` reports the hit ratio.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
import uuid
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable

from ..core.index_build import IndexBuilder
from ..core.sample import Example, Label
from ..core.signatures import SignatureIndex
from ..relational.relation import Instance

from ..core.serialize import (
    SnapshotError,
    snapshot_session,
    snapshot_to_dict,
)
from ..core.serialize import resume_session as core_resume_session
from ..core.session import InferenceSession, MaxInteractions, Question
from ..core.strategies import strategy_by_name
from .index_cache import IndexCache, instance_fingerprint
from .protocol import (
    BadRequest,
    CapacityExceeded,
    CreateSpec,
    NotFound,
    instance_from_spec,
)

__all__ = ["ManagedSession", "SessionManager", "Speculation"]


@dataclass(slots=True)
class _SpeculativeBranch:
    """One precomputed answer branch: the worker job and its kill switch."""

    future: Future
    abort: threading.Event

    def cancel(self) -> None:
        """Stop the branch: drop it from the queue if still pending,
        otherwise let it notice the abort flag and bail out cheaply."""
        self.abort.set()
        self.future.cancel()


@dataclass(slots=True)
class Speculation:
    """Both precomputed branches for one outstanding question."""

    question_id: int
    branches: dict[Label, _SpeculativeBranch]

    def cancel(self) -> None:
        for branch in self.branches.values():
            branch.cancel()


@dataclass(slots=True)
class ManagedSession:
    """One hosted session plus its serving metadata."""

    session_id: str
    session: InferenceSession
    instance_spec: dict[str, Any]
    cache_hit: bool
    created_at: float
    last_used: float
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    speculation: Speculation | None = None
    #: When the current pending question was first handed out (and its
    #: id, so idempotent re-fetches don't restart the clock), plus the
    #: session's smoothed question→answer gap — the observed oracle
    #: think-time that decides whether speculating is worth a fork.
    question_sent_at: float | None = None
    question_sent_id: int | None = None
    think_ewma: float | None = None

    def describe(self) -> dict[str, Any]:
        """The session-info payload (no inference state)."""
        halt = self.session.halt_condition
        return {
            "session_id": self.session_id,
            "strategy": self.session.strategy.name,
            "seed": self.session.seed,
            "max_questions": (
                halt.budget if isinstance(halt, MaxInteractions) else None
            ),
            "workload": self.instance_spec.get("builtin"),
            "index_cache_hit": self.cache_hit,
        }


class SessionManager:
    """All live sessions of one server process."""

    def __init__(
        self,
        *,
        index_cache: IndexCache | None = None,
        max_sessions: int = 256,
        ttl_seconds: float | None = 3600.0,
        clock: Callable[[], float] = time.monotonic,
        build_workers: int = 1,
        shard_rows: int | None = None,
        speculate: bool = True,
        speculation_slots: int | None = None,
        speculation_min_think_seconds: float = 0.02,
    ):
        if max_sessions < 1:
            raise ValueError("max_sessions must be positive")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive or None")
        if build_workers < 1:
            raise ValueError("build_workers must be positive")
        if speculation_slots is not None and speculation_slots < 0:
            raise ValueError("speculation_slots must be non-negative")
        if speculation_min_think_seconds < 0:
            raise ValueError(
                "speculation_min_think_seconds must be non-negative"
            )
        # `index_cache or ...` would discard an *empty* cache (len 0).
        # A caller-supplied cache keeps whatever builder it was
        # configured with — passing shard_rows alongside it would be
        # silently ignored, so that combination is rejected outright.
        if index_cache is not None:
            if shard_rows is not None:
                raise ValueError(
                    "shard_rows is applied to the manager-built cache; "
                    "configure the supplied IndexCache's builder instead"
                )
            self.index_cache = index_cache
        else:
            self.index_cache = IndexCache(
                builder=IndexBuilder(
                    shard_rows=shard_rows, workers=build_workers
                )
            )
        self.max_sessions = max_sessions
        self.ttl_seconds = ttl_seconds
        self.build_workers = build_workers
        self.speculate = speculate
        #: Concurrent speculative branch jobs allowed on the build pool;
        #: a proposal needing more skips speculation instead of queueing
        #: behind work it was meant to hide.
        self.speculation_slots = (
            speculation_slots
            if speculation_slots is not None
            else 2 * build_workers
        )
        #: Sessions whose observed question→answer gap (EWMA) falls
        #: below this stop speculating: there is no think-time to hide
        #: the precompute behind, so a fork is pure overhead.  0 means
        #: always speculate.
        self.speculation_min_think_seconds = speculation_min_think_seconds
        self._clock = clock
        self._sessions: dict[str, ManagedSession] = {}
        self._expired_total = 0
        self._build_executor: ThreadPoolExecutor | None = None
        self._offload_executor: ThreadPoolExecutor | None = None
        self._spec_lock = threading.Lock()
        self._spec_inflight = 0
        self._spec_submitted = 0
        self._spec_hits = 0
        self._spec_misses = 0
        self._spec_skipped = 0
        self._spec_skipped_think = 0
        self._spec_branch_errors = 0

    def _executor(self) -> ThreadPoolExecutor:
        """The worker pool index builds run on, off the event loop."""
        if self._build_executor is None:
            self._build_executor = ThreadPoolExecutor(
                max_workers=self.build_workers,
                thread_name_prefix="index-build",
            )
        return self._build_executor

    def offload(self, fn, *args):
        """Awaitable running CPU-bound ``fn(*args)`` off the event loop.

        Every O(data) *request-preprocessing* step goes through here —
        CSV parsing, content hashing, instance materialisation — on a
        small pool of its own, separate from the build pool: a warm
        upload create (parse + hash + cache hit) must never queue
        behind a long cold build occupying the build workers.
        Exceptions (e.g. ``BadRequest`` from validation) propagate to
        the awaiter unchanged.
        """
        if self._offload_executor is None:
            self._offload_executor = ThreadPoolExecutor(
                max_workers=2, thread_name_prefix="create-offload"
            )
        return asyncio.get_running_loop().run_in_executor(
            self._offload_executor, fn, *args
        )

    def _heavy_offload(self, fn, *args):
        """Like :meth:`offload` but on the *build* pool — for O(session)
        compute (snapshot replays) that must not crowd out the small
        preprocessing pool fast creates depend on.  Mandatory work:
        in-flight speculation yields to it like it yields to builds."""
        self._yield_speculation_to_build()
        return asyncio.get_running_loop().run_in_executor(
            self._executor(), fn, *args
        )

    def close(self, wait: bool = False) -> None:
        """Release the worker pools.

        Queued-but-not-started jobs are cancelled either way; a job
        already executing always runs to completion.  ``wait=True``
        blocks until it has — the server's loop thread does this before
        closing its event loop, so a build finishing during shutdown
        never fires completion callbacks into a closed loop.
        Speculative branches are aborted first, so shutdown never waits
        on a lookahead whose result nobody will read.
        """
        for managed in self._sessions.values():
            self._drop_speculation(managed)
        for attr in ("_build_executor", "_offload_executor"):
            executor = getattr(self, attr)
            if executor is not None:
                executor.shutdown(wait=wait, cancel_futures=True)
                setattr(self, attr, None)

    # --- lifecycle -----------------------------------------------------------

    def sweep(self) -> list[str]:
        """Drop sessions idle past the TTL; returns the evicted ids."""
        if self.ttl_seconds is None:
            return []
        deadline = self._clock() - self.ttl_seconds
        expired = [
            session_id
            for session_id, managed in self._sessions.items()
            if managed.last_used < deadline
        ]
        for session_id in expired:
            self._drop_speculation(self._sessions[session_id])
            del self._sessions[session_id]
        self._expired_total += len(expired)
        return expired

    def _ensure_capacity(self) -> None:
        """Reject in O(1) *before* any index build or snapshot replay."""
        self.sweep()
        if len(self._sessions) >= self.max_sessions:
            raise CapacityExceeded(
                f"server is at capacity ({self.max_sessions} sessions); "
                f"retry later or delete a session"
            )

    def _admit(self, managed: ManagedSession) -> ManagedSession:
        self._ensure_capacity()
        self._sessions[managed.session_id] = managed
        return managed

    def _build(
        self,
        session: InferenceSession,
        instance_spec: dict[str, Any],
        cache_hit: bool,
    ) -> ManagedSession:
        now = self._clock()
        return ManagedSession(
            session_id=uuid.uuid4().hex[:16],
            session=session,
            instance_spec=instance_spec,
            cache_hit=cache_hit,
            created_at=now,
            last_used=now,
        )

    @staticmethod
    def _builtin_key(spec: dict[str, Any]) -> str:
        """The cache key of a builtin workload spec — one definition,
        shared by the sync and async paths, so both always land on the
        same cache entry and the same single-flight build."""
        return "builtin:" + json.dumps(
            spec["builtin"], sort_keys=True, default=str
        )

    def _index_for_spec(
        self, spec: dict[str, Any], instance: Instance | None
    ) -> tuple[Instance, SignatureIndex, bool]:
        """Resolve ``(instance, shared index, cache hit)`` for a spec.

        Builtin specs are already canonical, so they key the cache
        directly — a hit skips both workload regeneration and content
        hashing, and the instance comes back off the cached index.
        """
        if instance is None and "builtin" in spec:
            index, hit = self.index_cache.get_or_build_keyed(
                self._builtin_key(spec), lambda: instance_from_spec(spec)
            )
            return index.instance, index, hit
        if instance is None:
            instance = instance_from_spec(spec)
        index, hit = self.index_cache.get_or_build(instance)
        return instance, index, hit

    async def _index_for_spec_async(
        self, spec: dict[str, Any], instance: Instance | None
    ) -> tuple[Instance, SignatureIndex, bool]:
        """Async twin of :meth:`_index_for_spec`: the build runs on the
        manager's worker pool (single-flight per key), so the event loop
        keeps serving other sessions during a cold build."""
        cache = self.index_cache
        executor = self._executor()
        if instance is None and "builtin" in spec:
            key = self._builtin_key(spec)
            if key not in cache:
                self._yield_speculation_to_build()
            index, hit = await cache.get_or_build_keyed_async(
                key, lambda: instance_from_spec(spec), executor
            )
            return index.instance, index, hit
        if instance is None:
            # Inline snapshot specs carry the whole dataset —
            # materialise off-loop like everything else O(data).
            instance = await self.offload(instance_from_spec, spec)
        # Hash on the preprocessing pool (fast, never behind a build);
        # only the build itself competes for the build workers.
        key = await self.offload(instance_fingerprint, instance)
        if key not in cache:
            self._yield_speculation_to_build()
        index, hit = await cache.get_or_build_keyed_async(
            key, lambda: instance, executor
        )
        return instance, index, hit

    def _yield_speculation_to_build(self) -> None:
        """A cold index build is about to be submitted: cancel every
        in-flight speculation so mandatory, user-visible work never
        queues behind droppable branch jobs (queued branches are dropped
        outright; running ones bail at their next abort checkpoint)."""
        for managed in self._sessions.values():
            self._drop_speculation(managed)

    def _make_session(
        self, spec: CreateSpec, instance: Instance, index: SignatureIndex
    ) -> InferenceSession:
        return InferenceSession(
            instance,
            strategy_by_name(spec.strategy),
            halt_condition=(
                MaxInteractions(spec.max_questions)
                if spec.max_questions is not None
                else None
            ),
            index=index,
            seed=spec.seed,
        )

    def create(self, spec: CreateSpec) -> ManagedSession:
        """Open a session per a validated creation request (inline build)."""
        self._ensure_capacity()
        instance, index, hit = self._index_for_spec(
            spec.instance_spec, spec.instance
        )
        session = self._make_session(spec, instance, index)
        return self._admit(self._build(session, spec.instance_spec, hit))

    async def create_async(self, spec: CreateSpec) -> ManagedSession:
        """Like :meth:`create`, but a cold index build happens off-loop.

        Capacity is re-checked by ``_admit`` after the await — the
        server may have filled while the build was in flight.
        """
        self._ensure_capacity()
        instance, index, hit = await self._index_for_spec_async(
            spec.instance_spec, spec.instance
        )
        session = self._make_session(spec, instance, index)
        return self._admit(self._build(session, spec.instance_spec, hit))

    def _resume_session(
        self,
        payload: dict[str, Any],
        instance: Instance,
        index: SignatureIndex,
    ) -> InferenceSession:
        try:
            return core_resume_session(
                payload, instance=instance, index=index
            )
        except (SnapshotError, ValueError, KeyError, TypeError) as exc:
            raise BadRequest(f"cannot resume snapshot: {exc}") from exc

    @staticmethod
    def _snapshot_instance_spec(payload: dict[str, Any]) -> dict[str, Any]:
        if not isinstance(payload, dict) or "labeled" not in payload:
            raise BadRequest("expected a session_snapshot payload")
        instance_spec = payload.get("instance")
        if not isinstance(instance_spec, dict):
            raise BadRequest("snapshot carries no instance spec")
        return instance_spec

    def resume(self, payload: dict[str, Any]) -> ManagedSession:
        """Open a session by replaying a snapshot payload."""
        instance_spec = self._snapshot_instance_spec(payload)
        self._ensure_capacity()
        instance, index, hit = self._index_for_spec(instance_spec, None)
        session = self._resume_session(payload, instance, index)
        return self._admit(self._build(session, instance_spec, hit))

    async def resume_async(self, payload: dict[str, Any]) -> ManagedSession:
        """Like :meth:`resume`, but the cold index build *and* the
        label replay happen off-loop — replaying a long snapshot steps
        the strategy once per label, which is O(snapshot), not O(1)."""
        instance_spec = self._snapshot_instance_spec(payload)
        self._ensure_capacity()
        instance, index, hit = await self._index_for_spec_async(
            instance_spec, None
        )
        session = await self._heavy_offload(
            self._resume_session, payload, instance, index
        )
        return self._admit(self._build(session, instance_spec, hit))

    def snapshot(self, session_id: str) -> dict[str, Any]:
        """The resumable state of one session as a JSON payload."""
        managed = self.get(session_id)
        payload = snapshot_to_dict(
            snapshot_session(
                managed.session, instance_ref=managed.instance_spec
            )
        )
        payload["kind"] = "session_snapshot"
        return payload

    # --- question round-trips (with speculative precompute) ------------------

    def propose_question(self, managed: ManagedSession) -> Question | None:
        """The session's next question, kicking off speculation for it.

        Must run under the session's lock (the app does).  Idempotent
        like :meth:`InferenceSession.propose`: re-fetching the pending
        question neither consults the strategy again nor re-submits
        speculation jobs.
        """
        question = managed.session.propose()
        if question is not None:
            fresh = managed.question_sent_id != question.question_id
            if fresh:
                # newly proposed (not an idempotent re-fetch): the
                # think-time clock starts now, and the speculation
                # decision is made exactly once — so a polling client
                # neither re-runs the skip gates nor skews the counters
                managed.question_sent_id = question.question_id
                managed.question_sent_at = self._clock()
                if self.speculate:
                    self._speculate(managed, question)
        return question

    def record_answer(
        self, managed: ManagedSession, question_id: int, label: Label
    ) -> Example:
        """Record the user's label, swapping in a precomputed branch.

        On a speculation hit the matching fork — which already recorded
        the label *and* proposed the next question — becomes the live
        session, so the answer and the follow-up question fetch are both
        lookups.  On a miss (branch still computing) or with speculation
        off, the label takes the ordinary inline path.  Raises exactly
        what :meth:`InferenceSession.answer` raises; an answer with a
        stale question id leaves the speculation intact for the retry,
        while an answer the sample rejects (only possible when a custom
        strategy proposed an already-certain class) has spent the
        question's speculation and retries inline.
        """
        self._observe_think_time(managed, question_id)
        spec = managed.speculation
        if spec is None or spec.question_id != question_id:
            # No speculation for this id.  A mismatched id is rejected by
            # the session below without touching the live speculation.
            return managed.session.answer(question_id, label)
        managed.speculation = None
        for branch_label, branch in spec.branches.items():
            if branch_label is not label:
                branch.cancel()
        branch = spec.branches.get(label)
        outcome = None
        if (
            branch is not None
            and branch.future.done()
            and not branch.future.cancelled()
        ):
            try:
                outcome = branch.future.result()
            except Exception:  # noqa: BLE001 - fall back to the inline path
                outcome = None
                # Counted separately from misses: erroring branches mean
                # a fork/planner bug, not an oracle winning the race.
                with self._spec_lock:
                    self._spec_branch_errors += 1
        if outcome is not None:
            example, twin = outcome
            managed.session = twin
            with self._spec_lock:
                self._spec_hits += 1
            return example
        if branch is not None:
            branch.cancel()
        with self._spec_lock:
            self._spec_misses += 1
        return managed.session.answer(question_id, label)

    def _observe_think_time(
        self, managed: ManagedSession, question_id: int
    ) -> None:
        """Fold the question→answer gap into the session's EWMA.

        Each question is observed at most once — the clock is consumed
        here, so a duplicate/retried answer POST cannot fold the same
        question's (by then much larger) gap in a second time.
        """
        if (
            managed.question_sent_at is None
            or managed.question_sent_id != question_id
        ):
            return
        gap = self._clock() - managed.question_sent_at
        managed.question_sent_at = None
        if managed.think_ewma is None:
            managed.think_ewma = gap
        else:
            managed.think_ewma = 0.5 * managed.think_ewma + 0.5 * gap

    def _speculate(
        self, managed: ManagedSession, question: Question
    ) -> None:
        """Precompute both answer branches for the pending question."""
        if not managed.session.strategy.speculative:
            return  # proposal is cheaper than a fork — nothing to hide
        if (
            managed.think_ewma is not None
            and managed.think_ewma < self.speculation_min_think_seconds
        ):
            # The oracle answers faster than a branch could compute —
            # a zero-think-time client (load generator, script) gains
            # nothing and a fork is pure overhead.  The first question
            # always speculates (optimistic start, no gap observed yet).
            with self._spec_lock:
                self._spec_skipped_think += 1
            return
        spec = managed.speculation
        if spec is not None and spec.question_id == question.question_id:
            return  # already in flight for this very question
        if self.index_cache.pending_builds():
            # A cold index build — mandatory, user-visible work — is on
            # (or queued for) the build pool; droppable speculation must
            # not delay it (priority inversion).
            with self._spec_lock:
                self._spec_skipped += 1
            return
        self._drop_speculation(managed)
        with self._spec_lock:
            if self._spec_inflight + 2 > self.speculation_slots:
                self._spec_skipped += 1
                return
            self._spec_inflight += 2
            self._spec_submitted += 1
        executor = self._executor()
        branches: dict[Label, _SpeculativeBranch] = {}
        for branch_label in (Label.POSITIVE, Label.NEGATIVE):
            twin = managed.session.fork()
            abort = threading.Event()
            future = executor.submit(
                self._speculate_branch,
                twin,
                question.question_id,
                branch_label,
                abort,
            )
            future.add_done_callback(self._branch_finished)
            branches[branch_label] = _SpeculativeBranch(future, abort)
        managed.speculation = Speculation(question.question_id, branches)

    def _branch_finished(self, _future: Future) -> None:
        with self._spec_lock:
            self._spec_inflight -= 1

    @staticmethod
    def _speculate_branch(
        twin: InferenceSession,
        question_id: int,
        label: Label,
        abort: threading.Event,
    ) -> tuple[Example, InferenceSession] | None:
        """Answer the fork with one hypothetical label and propose the
        follow-up question; abort checkpoints keep a cancelled branch
        from burning a full lookahead step."""
        if abort.is_set():
            return None
        example = twin.answer(question_id, label)
        if abort.is_set():
            return None
        twin.propose()
        return example, twin

    @staticmethod
    def _drop_speculation(managed: ManagedSession) -> None:
        if managed.speculation is not None:
            managed.speculation.cancel()
            managed.speculation = None

    # --- lookup --------------------------------------------------------------

    def get(self, session_id: str) -> ManagedSession:
        """The live session with this id (touches its TTL clock)."""
        self.sweep()
        managed = self._sessions.get(session_id)
        if managed is None:
            raise NotFound(f"no session {session_id!r}")
        managed.last_used = self._clock()
        return managed

    def delete(self, session_id: str) -> None:
        """Drop a session; unknown ids raise :class:`NotFound`."""
        managed = self._sessions.pop(session_id, None)
        if managed is None:
            raise NotFound(f"no session {session_id!r}")
        self._drop_speculation(managed)

    def list_sessions(self) -> list[ManagedSession]:
        """All live sessions, oldest first."""
        self.sweep()
        return sorted(
            self._sessions.values(), key=lambda m: m.created_at
        )

    def __len__(self) -> int:
        return len(self._sessions)

    def builds(self) -> list[dict[str, Any]]:
        """Progress of every in-flight index build (for ``GET /builds``)."""
        return self.index_cache.pending_builds()

    def stats(self) -> dict[str, Any]:
        """Server-level counters for the stats endpoint."""
        self.sweep()
        with self._spec_lock:
            hits, misses = self._spec_hits, self._spec_misses
            speculation = {
                "enabled": self.speculate,
                "slots": self.speculation_slots,
                "min_think_seconds": self.speculation_min_think_seconds,
                "in_flight": self._spec_inflight,
                "submitted": self._spec_submitted,
                "hits": hits,
                "misses": misses,
                "skipped_capacity": self._spec_skipped,
                "skipped_think": self._spec_skipped_think,
                "branch_errors": self._spec_branch_errors,
                "hit_ratio": round(hits / max(1, hits + misses), 4),
            }
        return {
            "sessions": len(self._sessions),
            "max_sessions": self.max_sessions,
            "ttl_seconds": self.ttl_seconds,
            "expired_total": self._expired_total,
            "build_workers": self.build_workers,
            "speculation": speculation,
            "index_cache": self.index_cache.stats(),
        }
