"""Session lifecycle: creation, lookup, TTL eviction, snapshot/resume.

The manager owns every live :class:`~repro.core.session.InferenceSession`
plus the shared :class:`~repro.service.index_cache.IndexCache`.  Sessions
on the same data share one immutable index but each keeps its own
``InferenceState``; an :class:`asyncio.Lock` per session serialises the
mutating operations (propose/answer/snapshot) so concurrent HTTP requests
against one session cannot interleave mid-protocol.

Expiry is lazy: every entry-point sweeps sessions idle longer than the
TTL, and capacity is enforced after the sweep — a full server answers
creation requests with 429 rather than evicting live users.

Session creation has two flavours: the synchronous :meth:`~SessionManager.create`
builds a cold index inline (embedding callers, tests), while the server
uses :meth:`~SessionManager.create_async`, which pushes the build through
the cache's single-flight path onto a ``concurrent.futures`` worker pool
(``build_workers`` threads, shard fan-out per ``shard_rows``) so a cold
build never stalls the event loop.
"""

from __future__ import annotations

import asyncio
import json
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable

from ..core.index_build import IndexBuilder
from ..core.signatures import SignatureIndex
from ..relational.relation import Instance

from ..core.serialize import (
    SnapshotError,
    snapshot_session,
    snapshot_to_dict,
)
from ..core.serialize import resume_session as core_resume_session
from ..core.session import InferenceSession, MaxInteractions
from ..core.strategies import strategy_by_name
from .index_cache import IndexCache, instance_fingerprint
from .protocol import (
    BadRequest,
    CapacityExceeded,
    CreateSpec,
    NotFound,
    instance_from_spec,
)

__all__ = ["ManagedSession", "SessionManager"]


@dataclass(slots=True)
class ManagedSession:
    """One hosted session plus its serving metadata."""

    session_id: str
    session: InferenceSession
    instance_spec: dict[str, Any]
    cache_hit: bool
    created_at: float
    last_used: float
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)

    def describe(self) -> dict[str, Any]:
        """The session-info payload (no inference state)."""
        halt = self.session.halt_condition
        return {
            "session_id": self.session_id,
            "strategy": self.session.strategy.name,
            "seed": self.session.seed,
            "max_questions": (
                halt.budget if isinstance(halt, MaxInteractions) else None
            ),
            "workload": self.instance_spec.get("builtin"),
            "index_cache_hit": self.cache_hit,
        }


class SessionManager:
    """All live sessions of one server process."""

    def __init__(
        self,
        *,
        index_cache: IndexCache | None = None,
        max_sessions: int = 256,
        ttl_seconds: float | None = 3600.0,
        clock: Callable[[], float] = time.monotonic,
        build_workers: int = 1,
        shard_rows: int | None = None,
    ):
        if max_sessions < 1:
            raise ValueError("max_sessions must be positive")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive or None")
        if build_workers < 1:
            raise ValueError("build_workers must be positive")
        # `index_cache or ...` would discard an *empty* cache (len 0).
        # A caller-supplied cache keeps whatever builder it was
        # configured with — passing shard_rows alongside it would be
        # silently ignored, so that combination is rejected outright.
        if index_cache is not None:
            if shard_rows is not None:
                raise ValueError(
                    "shard_rows is applied to the manager-built cache; "
                    "configure the supplied IndexCache's builder instead"
                )
            self.index_cache = index_cache
        else:
            self.index_cache = IndexCache(
                builder=IndexBuilder(
                    shard_rows=shard_rows, workers=build_workers
                )
            )
        self.max_sessions = max_sessions
        self.ttl_seconds = ttl_seconds
        self.build_workers = build_workers
        self._clock = clock
        self._sessions: dict[str, ManagedSession] = {}
        self._expired_total = 0
        self._build_executor: ThreadPoolExecutor | None = None
        self._offload_executor: ThreadPoolExecutor | None = None

    def _executor(self) -> ThreadPoolExecutor:
        """The worker pool index builds run on, off the event loop."""
        if self._build_executor is None:
            self._build_executor = ThreadPoolExecutor(
                max_workers=self.build_workers,
                thread_name_prefix="index-build",
            )
        return self._build_executor

    def offload(self, fn, *args):
        """Awaitable running CPU-bound ``fn(*args)`` off the event loop.

        Every O(data) *request-preprocessing* step goes through here —
        CSV parsing, content hashing, instance materialisation — on a
        small pool of its own, separate from the build pool: a warm
        upload create (parse + hash + cache hit) must never queue
        behind a long cold build occupying the build workers.
        Exceptions (e.g. ``BadRequest`` from validation) propagate to
        the awaiter unchanged.
        """
        if self._offload_executor is None:
            self._offload_executor = ThreadPoolExecutor(
                max_workers=2, thread_name_prefix="create-offload"
            )
        return asyncio.get_running_loop().run_in_executor(
            self._offload_executor, fn, *args
        )

    def _heavy_offload(self, fn, *args):
        """Like :meth:`offload` but on the *build* pool — for O(session)
        compute (snapshot replays) that must not crowd out the small
        preprocessing pool fast creates depend on."""
        return asyncio.get_running_loop().run_in_executor(
            self._executor(), fn, *args
        )

    def close(self, wait: bool = False) -> None:
        """Release the worker pools.

        Queued-but-not-started jobs are cancelled either way; a job
        already executing always runs to completion.  ``wait=True``
        blocks until it has — the server's loop thread does this before
        closing its event loop, so a build finishing during shutdown
        never fires completion callbacks into a closed loop.
        """
        for attr in ("_build_executor", "_offload_executor"):
            executor = getattr(self, attr)
            if executor is not None:
                executor.shutdown(wait=wait, cancel_futures=True)
                setattr(self, attr, None)

    # --- lifecycle -----------------------------------------------------------

    def sweep(self) -> list[str]:
        """Drop sessions idle past the TTL; returns the evicted ids."""
        if self.ttl_seconds is None:
            return []
        deadline = self._clock() - self.ttl_seconds
        expired = [
            session_id
            for session_id, managed in self._sessions.items()
            if managed.last_used < deadline
        ]
        for session_id in expired:
            del self._sessions[session_id]
        self._expired_total += len(expired)
        return expired

    def _ensure_capacity(self) -> None:
        """Reject in O(1) *before* any index build or snapshot replay."""
        self.sweep()
        if len(self._sessions) >= self.max_sessions:
            raise CapacityExceeded(
                f"server is at capacity ({self.max_sessions} sessions); "
                f"retry later or delete a session"
            )

    def _admit(self, managed: ManagedSession) -> ManagedSession:
        self._ensure_capacity()
        self._sessions[managed.session_id] = managed
        return managed

    def _build(
        self,
        session: InferenceSession,
        instance_spec: dict[str, Any],
        cache_hit: bool,
    ) -> ManagedSession:
        now = self._clock()
        return ManagedSession(
            session_id=uuid.uuid4().hex[:16],
            session=session,
            instance_spec=instance_spec,
            cache_hit=cache_hit,
            created_at=now,
            last_used=now,
        )

    @staticmethod
    def _builtin_key(spec: dict[str, Any]) -> str:
        """The cache key of a builtin workload spec — one definition,
        shared by the sync and async paths, so both always land on the
        same cache entry and the same single-flight build."""
        return "builtin:" + json.dumps(
            spec["builtin"], sort_keys=True, default=str
        )

    def _index_for_spec(
        self, spec: dict[str, Any], instance: Instance | None
    ) -> tuple[Instance, SignatureIndex, bool]:
        """Resolve ``(instance, shared index, cache hit)`` for a spec.

        Builtin specs are already canonical, so they key the cache
        directly — a hit skips both workload regeneration and content
        hashing, and the instance comes back off the cached index.
        """
        if instance is None and "builtin" in spec:
            index, hit = self.index_cache.get_or_build_keyed(
                self._builtin_key(spec), lambda: instance_from_spec(spec)
            )
            return index.instance, index, hit
        if instance is None:
            instance = instance_from_spec(spec)
        index, hit = self.index_cache.get_or_build(instance)
        return instance, index, hit

    async def _index_for_spec_async(
        self, spec: dict[str, Any], instance: Instance | None
    ) -> tuple[Instance, SignatureIndex, bool]:
        """Async twin of :meth:`_index_for_spec`: the build runs on the
        manager's worker pool (single-flight per key), so the event loop
        keeps serving other sessions during a cold build."""
        cache = self.index_cache
        executor = self._executor()
        if instance is None and "builtin" in spec:
            index, hit = await cache.get_or_build_keyed_async(
                self._builtin_key(spec),
                lambda: instance_from_spec(spec),
                executor,
            )
            return index.instance, index, hit
        if instance is None:
            # Inline snapshot specs carry the whole dataset —
            # materialise off-loop like everything else O(data).
            instance = await self.offload(instance_from_spec, spec)
        # Hash on the preprocessing pool (fast, never behind a build);
        # only the build itself competes for the build workers.
        key = await self.offload(instance_fingerprint, instance)
        index, hit = await cache.get_or_build_keyed_async(
            key, lambda: instance, executor
        )
        return instance, index, hit

    def _make_session(
        self, spec: CreateSpec, instance: Instance, index: SignatureIndex
    ) -> InferenceSession:
        return InferenceSession(
            instance,
            strategy_by_name(spec.strategy),
            halt_condition=(
                MaxInteractions(spec.max_questions)
                if spec.max_questions is not None
                else None
            ),
            index=index,
            seed=spec.seed,
        )

    def create(self, spec: CreateSpec) -> ManagedSession:
        """Open a session per a validated creation request (inline build)."""
        self._ensure_capacity()
        instance, index, hit = self._index_for_spec(
            spec.instance_spec, spec.instance
        )
        session = self._make_session(spec, instance, index)
        return self._admit(self._build(session, spec.instance_spec, hit))

    async def create_async(self, spec: CreateSpec) -> ManagedSession:
        """Like :meth:`create`, but a cold index build happens off-loop.

        Capacity is re-checked by ``_admit`` after the await — the
        server may have filled while the build was in flight.
        """
        self._ensure_capacity()
        instance, index, hit = await self._index_for_spec_async(
            spec.instance_spec, spec.instance
        )
        session = self._make_session(spec, instance, index)
        return self._admit(self._build(session, spec.instance_spec, hit))

    def _resume_session(
        self,
        payload: dict[str, Any],
        instance: Instance,
        index: SignatureIndex,
    ) -> InferenceSession:
        try:
            return core_resume_session(
                payload, instance=instance, index=index
            )
        except (SnapshotError, ValueError, KeyError, TypeError) as exc:
            raise BadRequest(f"cannot resume snapshot: {exc}") from exc

    @staticmethod
    def _snapshot_instance_spec(payload: dict[str, Any]) -> dict[str, Any]:
        if not isinstance(payload, dict) or "labeled" not in payload:
            raise BadRequest("expected a session_snapshot payload")
        instance_spec = payload.get("instance")
        if not isinstance(instance_spec, dict):
            raise BadRequest("snapshot carries no instance spec")
        return instance_spec

    def resume(self, payload: dict[str, Any]) -> ManagedSession:
        """Open a session by replaying a snapshot payload."""
        instance_spec = self._snapshot_instance_spec(payload)
        self._ensure_capacity()
        instance, index, hit = self._index_for_spec(instance_spec, None)
        session = self._resume_session(payload, instance, index)
        return self._admit(self._build(session, instance_spec, hit))

    async def resume_async(self, payload: dict[str, Any]) -> ManagedSession:
        """Like :meth:`resume`, but the cold index build *and* the
        label replay happen off-loop — replaying a long snapshot steps
        the strategy once per label, which is O(snapshot), not O(1)."""
        instance_spec = self._snapshot_instance_spec(payload)
        self._ensure_capacity()
        instance, index, hit = await self._index_for_spec_async(
            instance_spec, None
        )
        session = await self._heavy_offload(
            self._resume_session, payload, instance, index
        )
        return self._admit(self._build(session, instance_spec, hit))

    def snapshot(self, session_id: str) -> dict[str, Any]:
        """The resumable state of one session as a JSON payload."""
        managed = self.get(session_id)
        payload = snapshot_to_dict(
            snapshot_session(
                managed.session, instance_ref=managed.instance_spec
            )
        )
        payload["kind"] = "session_snapshot"
        return payload

    # --- lookup --------------------------------------------------------------

    def get(self, session_id: str) -> ManagedSession:
        """The live session with this id (touches its TTL clock)."""
        self.sweep()
        managed = self._sessions.get(session_id)
        if managed is None:
            raise NotFound(f"no session {session_id!r}")
        managed.last_used = self._clock()
        return managed

    def delete(self, session_id: str) -> None:
        """Drop a session; unknown ids raise :class:`NotFound`."""
        if self._sessions.pop(session_id, None) is None:
            raise NotFound(f"no session {session_id!r}")

    def list_sessions(self) -> list[ManagedSession]:
        """All live sessions, oldest first."""
        self.sweep()
        return sorted(
            self._sessions.values(), key=lambda m: m.created_at
        )

    def __len__(self) -> int:
        return len(self._sessions)

    def builds(self) -> list[dict[str, Any]]:
        """Progress of every in-flight index build (for ``GET /builds``)."""
        return self.index_cache.pending_builds()

    def stats(self) -> dict[str, Any]:
        """Server-level counters for the stats endpoint."""
        self.sweep()
        return {
            "sessions": len(self._sessions),
            "max_sessions": self.max_sessions,
            "ttl_seconds": self.ttl_seconds,
            "expired_total": self._expired_total,
            "build_workers": self.build_workers,
            "index_cache": self.index_cache.stats(),
        }
