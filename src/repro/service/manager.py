"""Session lifecycle: creation, lookup, TTL eviction, snapshot/resume.

The manager owns every live :class:`~repro.core.session.InferenceSession`
plus the shared :class:`~repro.service.index_cache.IndexCache`.  Sessions
on the same data share one immutable index but each keeps its own
``InferenceState``; an :class:`asyncio.Lock` per session serialises the
mutating operations (propose/answer/snapshot) so concurrent HTTP requests
against one session cannot interleave mid-protocol.

Expiry is lazy: every entry-point sweeps sessions idle longer than the
TTL, and capacity is enforced after the sweep — a full server answers
creation requests with 429 rather than evicting live users.
"""

from __future__ import annotations

import asyncio
import json
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable

from ..core.signatures import SignatureIndex
from ..relational.relation import Instance

from ..core.serialize import (
    SnapshotError,
    snapshot_session,
    snapshot_to_dict,
)
from ..core.serialize import resume_session as core_resume_session
from ..core.session import InferenceSession, MaxInteractions
from ..core.strategies import strategy_by_name
from .index_cache import IndexCache
from .protocol import (
    BadRequest,
    CapacityExceeded,
    CreateSpec,
    NotFound,
    instance_from_spec,
)

__all__ = ["ManagedSession", "SessionManager"]


@dataclass(slots=True)
class ManagedSession:
    """One hosted session plus its serving metadata."""

    session_id: str
    session: InferenceSession
    instance_spec: dict[str, Any]
    cache_hit: bool
    created_at: float
    last_used: float
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)

    def describe(self) -> dict[str, Any]:
        """The session-info payload (no inference state)."""
        halt = self.session.halt_condition
        return {
            "session_id": self.session_id,
            "strategy": self.session.strategy.name,
            "seed": self.session.seed,
            "max_questions": (
                halt.budget if isinstance(halt, MaxInteractions) else None
            ),
            "workload": self.instance_spec.get("builtin"),
            "index_cache_hit": self.cache_hit,
        }


class SessionManager:
    """All live sessions of one server process."""

    def __init__(
        self,
        *,
        index_cache: IndexCache | None = None,
        max_sessions: int = 256,
        ttl_seconds: float | None = 3600.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_sessions < 1:
            raise ValueError("max_sessions must be positive")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive or None")
        # `index_cache or ...` would discard an *empty* cache (len 0).
        self.index_cache = (
            index_cache if index_cache is not None else IndexCache()
        )
        self.max_sessions = max_sessions
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._sessions: dict[str, ManagedSession] = {}
        self._expired_total = 0

    # --- lifecycle -----------------------------------------------------------

    def sweep(self) -> list[str]:
        """Drop sessions idle past the TTL; returns the evicted ids."""
        if self.ttl_seconds is None:
            return []
        deadline = self._clock() - self.ttl_seconds
        expired = [
            session_id
            for session_id, managed in self._sessions.items()
            if managed.last_used < deadline
        ]
        for session_id in expired:
            del self._sessions[session_id]
        self._expired_total += len(expired)
        return expired

    def _ensure_capacity(self) -> None:
        """Reject in O(1) *before* any index build or snapshot replay."""
        self.sweep()
        if len(self._sessions) >= self.max_sessions:
            raise CapacityExceeded(
                f"server is at capacity ({self.max_sessions} sessions); "
                f"retry later or delete a session"
            )

    def _admit(self, managed: ManagedSession) -> ManagedSession:
        self._ensure_capacity()
        self._sessions[managed.session_id] = managed
        return managed

    def _build(
        self,
        session: InferenceSession,
        instance_spec: dict[str, Any],
        cache_hit: bool,
    ) -> ManagedSession:
        now = self._clock()
        return ManagedSession(
            session_id=uuid.uuid4().hex[:16],
            session=session,
            instance_spec=instance_spec,
            cache_hit=cache_hit,
            created_at=now,
            last_used=now,
        )

    def _index_for_spec(
        self, spec: dict[str, Any], instance: Instance | None
    ) -> tuple[Instance, SignatureIndex, bool]:
        """Resolve ``(instance, shared index, cache hit)`` for a spec.

        Builtin specs are already canonical, so they key the cache
        directly — a hit skips both workload regeneration and content
        hashing, and the instance comes back off the cached index.
        """
        if instance is None and "builtin" in spec:
            key = "builtin:" + json.dumps(
                spec["builtin"], sort_keys=True, default=str
            )
            index, hit = self.index_cache.get_or_build_keyed(
                key, lambda: instance_from_spec(spec)
            )
            return index.instance, index, hit
        if instance is None:
            instance = instance_from_spec(spec)
        index, hit = self.index_cache.get_or_build(instance)
        return instance, index, hit

    def create(self, spec: CreateSpec) -> ManagedSession:
        """Open a session per a validated creation request."""
        self._ensure_capacity()
        instance, index, hit = self._index_for_spec(
            spec.instance_spec, spec.instance
        )
        session = InferenceSession(
            instance,
            strategy_by_name(spec.strategy),
            halt_condition=(
                MaxInteractions(spec.max_questions)
                if spec.max_questions is not None
                else None
            ),
            index=index,
            seed=spec.seed,
        )
        return self._admit(self._build(session, spec.instance_spec, hit))

    def resume(self, payload: dict[str, Any]) -> ManagedSession:
        """Open a session by replaying a snapshot payload."""
        if not isinstance(payload, dict) or "labeled" not in payload:
            raise BadRequest("expected a session_snapshot payload")
        self._ensure_capacity()
        instance_spec = payload.get("instance")
        if not isinstance(instance_spec, dict):
            raise BadRequest("snapshot carries no instance spec")
        instance, index, hit = self._index_for_spec(instance_spec, None)
        try:
            session = core_resume_session(
                payload, instance=instance, index=index
            )
        except (SnapshotError, ValueError, KeyError, TypeError) as exc:
            raise BadRequest(f"cannot resume snapshot: {exc}") from exc
        return self._admit(self._build(session, instance_spec, hit))

    def snapshot(self, session_id: str) -> dict[str, Any]:
        """The resumable state of one session as a JSON payload."""
        managed = self.get(session_id)
        payload = snapshot_to_dict(
            snapshot_session(
                managed.session, instance_ref=managed.instance_spec
            )
        )
        payload["kind"] = "session_snapshot"
        return payload

    # --- lookup --------------------------------------------------------------

    def get(self, session_id: str) -> ManagedSession:
        """The live session with this id (touches its TTL clock)."""
        self.sweep()
        managed = self._sessions.get(session_id)
        if managed is None:
            raise NotFound(f"no session {session_id!r}")
        managed.last_used = self._clock()
        return managed

    def delete(self, session_id: str) -> None:
        """Drop a session; unknown ids raise :class:`NotFound`."""
        if self._sessions.pop(session_id, None) is None:
            raise NotFound(f"no session {session_id!r}")

    def list_sessions(self) -> list[ManagedSession]:
        """All live sessions, oldest first."""
        self.sweep()
        return sorted(
            self._sessions.values(), key=lambda m: m.created_at
        )

    def __len__(self) -> int:
        return len(self._sessions)

    def stats(self) -> dict[str, Any]:
        """Server-level counters for the stats endpoint."""
        self.sweep()
        return {
            "sessions": len(self._sessions),
            "max_sessions": self.max_sessions,
            "ttl_seconds": self.ttl_seconds,
            "expired_total": self._expired_total,
            "index_cache": self.index_cache.stats(),
        }
