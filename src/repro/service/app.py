"""The asyncio HTTP/JSON server hosting concurrent inference sessions.

Stdlib only: a minimal HTTP/1.1 request loop over ``asyncio`` streams
(keep-alive, ``Content-Length`` bodies) in front of a JSON router.  Every
handler is a small synchronous computation — label recording and question
selection are array operations on the shared index — so the single event
loop comfortably serves many interleaved sessions; per-session locks in
the :class:`~repro.service.manager.SessionManager` keep each session's
protocol sequential regardless of how requests interleave.

Routes
------

==========  ==============================  =====================================
method      path                            action
==========  ==============================  =====================================
POST        ``/sessions``                   create a session (builtin or CSV)
GET         ``/sessions``                   list live sessions
POST        ``/sessions/resume``            recreate a session from a snapshot
GET         ``/sessions/{id}``              session info + progress
GET         ``/sessions/{id}/question``     next membership question (or done)
POST        ``/sessions/{id}/answer``       record a label for a question
GET         ``/sessions/{id}/predicate``    current ``T(S+)`` + progress
GET         ``/sessions/{id}/snapshot``     resumable session state
DELETE      ``/sessions/{id}``              drop the session
GET         ``/sessions/{id}/stream``       SSE: per-session event feed (push)
GET         ``/events/stream``              SSE: service-wide event feed
GET         ``/dashboard``                  incrementally maintained aggregates
GET         ``/builds``                     progress of in-flight index builds
GET         ``/stats``                      server + index-cache counters
==========  ==============================  =====================================

**Streaming (PR 10).**  The two ``/stream`` routes upgrade the response
to ``Transfer-Encoding: chunked`` with ``Content-Type:
text/event-stream`` and push SSE frames as the manager publishes events
— a streaming client receives the next question the moment speculation
or a kernel batch resolves it, instead of polling ``GET /question``.
Subscribing to a session proposes (and therefore speculates on) its
next question under the session lock, and every subsequent ``POST
/answer`` re-proposes *before* writing the answer response — but only
while the session actually has stream subscribers, so polled sessions
keep the exact pre-streaming answer path.  The question event therefore
rides the answer round-trip: a streamed client usually holds the next
question before its ``POST /answer`` even returns.  The question a
stream pushes and the one ``GET /question`` returns are the same
pending :class:`~repro.core.session.Question` (proposal is
idempotent), which is what makes streamed and polled question
sequences bit-for-bit comparable.

Cold index builds run on the manager's worker pool (single-flight per
fingerprint), so while one client waits for a large build, every other
session keeps answering and ``GET /builds`` reports shard progress.

Fleet workers (``ServiceApp(control=True)``) additionally expose
worker-internal control routes the front router drives — never meant
for external clients, and 404 unless enabled:

==========  ==============================  =====================================
GET         ``/control/health``             liveness + live-session count
POST        ``/control/drain``              demote every durable session, flush,
                                            release leases (graceful shutdown)
POST        ``/control/demote``             demote the listed sessions (rebalance
                                            after a dead slot respawns)
==========  ==============================  =====================================

The router also assigns session ids itself (it must know the id to pick
the owning worker before the create lands), passing them down via the
internal ``x-fleet-session-id`` header on create/resume.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import os
import socket
import threading
import time
import weakref
from typing import Any

from ..core.consistency import InconsistentSampleError
from ..core.session import QuestionProtocolError
from .events import SERVICE_FEED, EventBus, EventSubscription, sse_frame
from .manager import ManagedSession, SessionManager
from .protocol import (
    BadRequest,
    Conflict,
    NotFound,
    ServiceError,
    builds_payload,
    parse_answer_payload,
    parse_create_payload,
    predicate_payload,
    progress_payload,
    question_payload,
    sessions_payload,
)

__all__ = [
    "ServiceApp",
    "EventStream",
    "ServiceFeedBroadcaster",
    "start_server",
    "run_server",
    "ServiceServer",
]

_MAX_BODY_BYTES = 64 * 1024 * 1024
_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


#: Event kinds that end a per-session stream after delivery — the
#: session finished, or stopped being servable from this process.
_STREAM_CLOSE_KINDS = frozenset(
    {"done", "session_deleted", "session_demoted", "session_expired"}
)


class EventStream:
    """A streaming response: ``dispatch`` returns one of these instead
    of a JSON payload, and the connection handler serves SSE frames
    from the subscription until a terminal event, client disconnect,
    or server shutdown (the connection is never reused afterwards).

    ``broadcast=True`` marks a subscription-less stream served by the
    app's :class:`ServiceFeedBroadcaster` instead of a per-socket
    queue — used for ``GET /events/stream`` where hundreds of
    subscribers share identical bytes."""

    def __init__(
        self,
        subscription: EventSubscription | None = None,
        *,
        initial: list[tuple[str, bytes]] | None = None,
        close_kinds: frozenset[str] = frozenset(),
        heartbeat_seconds: float = 15.0,
        broadcast: bool = False,
    ):
        self.subscription = subscription
        #: ``(kind, frame)`` pairs written before any queued event — the
        #: subscribe-time snapshot (hello + pending question), built
        #: under the session lock so it is gap-free with the queue.
        self.initial = initial or []
        self.close_kinds = close_kinds
        self.heartbeat_seconds = heartbeat_seconds
        self.broadcast = broadcast

    def close(self) -> None:
        if self.subscription is not None:
            self.subscription.close()


class ServiceFeedBroadcaster:
    """Off-loop coalescing fan-out for ``GET /events/stream`` sockets.

    Per-subscriber queues price fan-out at O(subscribers) scheduled
    callbacks per event: at 256 subscribers every answer wakes 256 pump
    coroutines (each write + drain) ahead of the next request handler,
    and answer p95 pays for all of them.  Even coalesced onto the loop,
    256 socket writes per event burst still show up in the answer tail
    — so the broadcaster takes the writes *off the loop entirely*.  A
    single ``service-feed`` thread owns every subscriber socket after
    its snapshot is flushed: the bus's ``service_sink`` appends frames
    to a list under a condition variable (O(1) per event on the loop),
    and the thread drains whatever accumulated while it was last busy
    into ONE HTTP chunk — whole SSE frames only, so the fleet router's
    chunk-at-a-time proxying stays frame-atomic — and sends the same
    bytes object to every socket with non-blocking ``send`` (each
    syscall drops the GIL, so request handling proceeds).  Writing at
    most as fast as it can drain makes the coalescing self-pacing:
    the busier the feed, the more frames each chunk carries.

    Backpressure is eviction, not stalling: a partial send parks the
    remainder in that subscriber's pending buffer (retried next cycle),
    and a subscriber whose pending passes ``max_buffer_bytes`` is
    aborted so one slow reader can never wedge the feed (the same
    drop-don't-block stance as
    :class:`~repro.service.events.EventSubscription`).  The thread
    also owns the keep-alive: an SSE comment chunk to everyone after
    ``heartbeat_seconds`` of feed silence.

    ``register``/``unregister``/``enqueue`` run on the server's event
    loop thread (``EventBus._deliver`` marshals off-loop publishes via
    ``call_soon_threadsafe`` before invoking the sink); ``stop`` may
    be called from any thread.
    """

    def __init__(
        self,
        bus: EventBus,
        *,
        max_buffer_bytes: int = 4 * 1024 * 1024,
        heartbeat_seconds: float = 15.0,
        min_cycle_seconds: float = 0.05,
        yield_every: int = 64,
    ):
        self._bus = bus
        self._cond = threading.Condition()
        #: frames awaiting the next send cycle (guarded by _cond)
        self._frames: list[bytes] = []
        #: writer -> [dup'd socket, per-socket unsent remainder].  The
        #: dup keeps our fd valid whatever the transport does, so a
        #: send can never race transport teardown into a recycled fd.
        self._targets: dict[asyncio.StreamWriter, list] = {}
        #: dup'd sockets of unregistered writers, closed by the feed
        #: thread between cycles (never under a possibly-mid-send peer)
        self._retired: list[socket.socket] = []
        self._stopped = False
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self.max_buffer_bytes = max_buffer_bytes
        self.heartbeat_seconds = heartbeat_seconds
        #: Floor between send cycles: an unthrottled thread cycling
        #: per event fights the loop for the GIL; pacing it batches
        #: more frames per chunk and leaves the loop long quiet runs.
        self.min_cycle_seconds = min_cycle_seconds
        #: Sockets sent between explicit GIL yields.  ``send`` drops
        #: the GIL only for the syscall, and the releasing thread wins
        #: the re-acquire until the interpreter's switch interval (5ms
        #: default) forces a handoff — a large send loop would hold
        #: request handling off the CPU for that long.  A real sleep
        #: every ``yield_every`` sockets hands the loop the GIL now,
        #: bounding the feed's contiguous hold to well under 1ms.
        self.yield_every = yield_every

    def register(self, writer: asyncio.StreamWriter) -> None:
        """Hand one subscriber socket to the feed thread.  Loop thread
        only, and only once the transport's write buffer is empty —
        from here on the thread is the socket's sole writer."""
        sock = writer.get_extra_info("socket")
        if sock is None:
            raise RuntimeError("transport exposes no raw socket")
        dup = socket.socket(fileno=os.dup(sock.fileno()))
        dup.setblocking(False)
        loop = asyncio.get_running_loop()
        with self._cond:
            self._loop = loop
            self._targets[writer] = [dup, b""]
            if self._thread is None or not self._thread.is_alive():
                self._stopped = False
                self._thread = threading.Thread(
                    target=self._run, name="service-feed", daemon=True
                )
                self._thread.start()
        self._bus.sink_attached(loop)

    def unregister(self, writer: asyncio.StreamWriter) -> None:
        """Detach one socket; idempotent, because the thread may
        already have evicted the writer its serving coroutine is
        tearing down."""
        with self._cond:
            entry = self._targets.pop(writer, None)
            if entry is not None:
                thread_alive = (
                    self._thread is not None and self._thread.is_alive()
                )
                if thread_alive:
                    self._retired.append(entry[0])
                else:
                    entry[0].close()
        if entry is not None:
            self._bus.sink_detached()

    def enqueue(self, frame: bytes) -> None:
        """The bus's ``service_sink`` hook — one call per published
        event; the send cycle amortises across whatever accumulates."""
        with self._cond:
            if not self._targets:
                return
            self._frames.append(frame)
            self._cond.notify()

    def stop(self) -> None:
        """Stop and join the feed thread (server shutdown)."""
        with self._cond:
            self._stopped = True
            thread = self._thread
            self._thread = None
            self._cond.notify()
        if thread is not None:
            thread.join(timeout=10)
        with self._cond:
            leftovers = [
                entry[0] for entry in self._targets.values()
            ] + self._retired
            self._targets.clear()
            self._retired.clear()
        for sock in leftovers:
            sock.close()

    # --- feed thread ---------------------------------------------------------

    def _run(self) -> None:
        last_send = time.monotonic()
        last_cycle = 0.0
        while True:
            with self._cond:
                if not self._frames and not self._stopped:
                    retry = any(
                        entry[1] for entry in self._targets.values()
                    )
                    idle = time.monotonic() - last_send
                    self._cond.wait(
                        timeout=(
                            0.05
                            if retry
                            else max(
                                self.heartbeat_seconds - idle, 0.01
                            )
                        )
                    )
                if self._stopped:
                    return
                frames, self._frames = self._frames, []
                targets = list(self._targets.items())
                retired, self._retired = self._retired, []
            for sock in retired:
                sock.close()
            if not targets:
                last_send = time.monotonic()
                continue
            if frames:
                gap = self.min_cycle_seconds - (
                    time.monotonic() - last_cycle
                )
                if gap > 0:
                    time.sleep(gap)
                with self._cond:
                    # Frames that arrived during the pacing sleep join
                    # this cycle's chunk — the throttle IS the batcher.
                    if self._frames:
                        frames.extend(self._frames)
                        self._frames = []
                last_cycle = time.monotonic()
            if (
                not frames
                and time.monotonic() - last_send
                >= self.heartbeat_seconds
            ):
                # SSE comment — ignored by consumers, but it exercises
                # every socket so half-open connections fail fast.
                frames = [b": keep-alive\n\n"]
            chunk = _chunk(b"".join(frames)) if frames else b""
            if frames:
                last_send = time.monotonic()
            for index, (writer, entry) in enumerate(targets):
                if index and index % self.yield_every == 0:
                    time.sleep(0.0002)  # hand the loop the GIL
                sock, pending = entry
                # The hot path sends the SAME bytes object to every
                # socket; only a lagging subscriber pays a concat.
                data = pending + chunk if pending else chunk
                if not data:
                    continue
                try:
                    sent = sock.send(data)
                except (BlockingIOError, InterruptedError):
                    sent = 0
                except OSError:
                    self._evict(writer)
                    continue
                rest = data[sent:]
                if len(rest) > self.max_buffer_bytes:
                    self._evict(writer)
                    continue
                entry[1] = rest

    def _evict(self, writer: asyncio.StreamWriter) -> None:
        """Drop a dead or hopelessly lagging subscriber (feed thread).
        The transport is aborted *on the loop* — closing the raw fd
        from this thread would yank it out from under the selector."""
        self.unregister(writer)
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(_abort_writer, writer)
        except RuntimeError:
            pass  # loop closed mid-eviction; the socket dies with it


def _abort_writer(writer: asyncio.StreamWriter) -> None:
    transport = writer.transport
    if transport is not None:
        transport.abort()


class ServiceApp:
    """Routes (method, path, JSON body) triples onto the manager."""

    def __init__(
        self,
        manager: SessionManager | None = None,
        *,
        control: bool = False,
        heartbeat_seconds: float = 15.0,
    ):
        # `manager or ...` would discard an *empty* manager (it has len 0).
        self.manager = manager if manager is not None else SessionManager()
        #: Expose the worker-internal ``/control/*`` routes (fleet
        #: workers only; a public-facing server keeps them 404).
        self.control = control
        #: Idle gap after which a stream writes an SSE keep-alive
        #: comment, so half-open sockets die fast on both ends.
        self.heartbeat_seconds = heartbeat_seconds
        #: Shared coalescing writer behind every ``GET /events/stream``
        #: socket; the bus invokes ``enqueue`` once per published event.
        self.service_feed = ServiceFeedBroadcaster(
            self.manager.events, heartbeat_seconds=heartbeat_seconds
        )
        self.manager.events.service_sink = self.service_feed.enqueue

    async def dispatch(
        self,
        method: str,
        path: str,
        payload: Any,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict[str, Any]]:
        """Handle one request; returns ``(status, response payload)``."""
        try:
            return await self._route(method, path, payload, headers)
        except ServiceError as exc:
            return exc.status, {
                "error": exc.code,
                "message": str(exc),
            }
        except Exception as exc:  # noqa: BLE001 - last-resort barrier
            return 500, {"error": "internal_error", "message": str(exc)}

    async def _route(
        self,
        method: str,
        path: str,
        payload: Any,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict[str, Any]]:
        parts = [p for p in path.split("/") if p]
        if parts == ["stats"] or not parts:
            if method != "GET":
                raise BadRequest(f"{method} not allowed on /stats")
            return 200, await self.manager.stats_async()
        if parts == ["builds"]:
            if method != "GET":
                raise BadRequest(f"{method} not allowed on /builds")
            return 200, builds_payload(self.manager.builds())
        if parts == ["dashboard"]:
            if method != "GET":
                raise BadRequest(f"{method} not allowed on /dashboard")
            return 200, self.manager.dashboard()
        if parts == ["events", "stream"]:
            if method != "GET":
                raise BadRequest(
                    f"{method} not allowed on /events/stream"
                )
            return 200, self._service_stream()
        if parts and parts[0] == "control":
            return await self._control(method, parts, payload)
        if parts[0] != "sessions":
            raise NotFound(f"no route {path!r}")

        if len(parts) == 1:
            if method == "POST":
                return await self._create(payload, headers)
            if method == "GET":
                # Counts first: session_counts sweeps, so listing
                # afterwards cannot include a session the counts just
                # demoted (the two views stay consistent).
                counts = await self.manager.session_counts_async()
                return 200, sessions_payload(
                    [
                        {
                            **m.describe(),
                            "progress": progress_payload(m.session),
                        }
                        for m in self.manager.list_sessions()
                    ],
                    counts,
                )
            raise BadRequest(f"{method} not allowed on /sessions")

        if parts[1] == "resume" and len(parts) == 2:
            if method != "POST":
                raise BadRequest(f"{method} not allowed on resume")
            return await self._resume(payload, headers)

        session_id = parts[1]
        action = parts[2] if len(parts) == 3 else None
        if len(parts) > 3:
            raise NotFound(f"no route {path!r}")
        if action is None and method == "DELETE":
            # Deleting a demoted session must not rehydrate it first —
            # the manager forgets stored state directly (probing the
            # store off-loop).
            await self.manager.delete_async(session_id)
            return 200, {"deleted": session_id}
        # Touching a demoted session rehydrates it off-loop (replay on
        # the build pool, single-flight per id) — transparently to the
        # client, exactly like waiting out a cold index build.
        managed = await self.manager.get_async(session_id)

        if action is None:
            if method == "GET":
                return 200, {
                    **managed.describe(),
                    "progress": progress_payload(managed.session),
                }
            raise BadRequest(f"{method} not allowed on a session")
        if action == "question" and method == "GET":
            return await self._question(managed)
        if action == "stream" and method == "GET":
            return 200, await self._stream(managed)
        if action == "answer" and method == "POST":
            return await self._answer(managed, payload)
        if action == "predicate" and method == "GET":
            async with managed.lock:
                return 200, predicate_payload(managed.session)
        if action == "snapshot" and method == "GET":
            async with managed.lock:
                return 200, self.manager.snapshot(session_id)
        raise NotFound(f"no route {path!r}")

    @staticmethod
    def _fleet_session_id(headers: dict[str, str] | None) -> str | None:
        """The router-assigned session id, when this request came
        through the fleet front (internal header, absent otherwise)."""
        if not headers:
            return None
        return headers.get("x-fleet-session-id") or None

    async def _control(
        self, method: str, parts: list[str], payload: Any
    ) -> tuple[int, dict[str, Any]]:
        """Worker-internal routes the fleet router drives."""
        if not self.control:
            raise NotFound("no route /" + "/".join(parts))
        route = parts[1] if len(parts) == 2 else None
        if route == "health":
            if method != "GET":
                raise BadRequest(f"{method} not allowed on health")
            return 200, {
                "ok": True,
                "owner": self.manager.owner_id,
                "sessions": len(self.manager),
            }
        if route == "drain":
            if method != "POST":
                raise BadRequest(f"{method} not allowed on drain")
            demoted = self.manager.demote_all()
            # Durability barrier off-loop: every demoted session's
            # journal tail (and its trailing lease release) commits
            # before the router is told the drain finished.
            await self.manager.offload(self.manager.flush_store)
            return 200, {"demoted": demoted}
        if route == "demote":
            if method != "POST":
                raise BadRequest(f"{method} not allowed on demote")
            if not isinstance(payload, dict) or not isinstance(
                payload.get("session_ids"), list
            ):
                raise BadRequest("'session_ids' must be a list")
            demoted: list[str] = []
            skipped: list[str] = []
            for session_id in payload["session_ids"]:
                try:
                    self.manager.demote(session_id)
                except (NotFound, BadRequest):
                    skipped.append(session_id)
                else:
                    demoted.append(session_id)
            await self.manager.offload(self.manager.flush_store)
            return 200, {"demoted": demoted, "skipped": skipped}
        raise NotFound("no route /" + "/".join(parts))

    async def _create(
        self, payload: Any, headers: dict[str, str] | None = None
    ) -> tuple[int, dict[str, Any]]:
        # Validating an uploaded payload parses its CSV text — O(cells),
        # so it runs on the build pool like hashing and building.  A
        # builtin payload is O(1) and validates inline: a warm builtin
        # create must never queue behind someone else's cold build.
        if isinstance(payload, dict) and "csv" in payload:
            spec = await self.manager.offload(parse_create_payload, payload)
        else:
            spec = parse_create_payload(payload)
        session_id = self._fleet_session_id(headers)
        if session_id is not None:
            spec = dataclasses.replace(spec, session_id=session_id)
        managed = await self.manager.create_async(spec)
        return 201, {
            **managed.describe(),
            "progress": progress_payload(managed.session),
        }

    async def _resume(
        self, payload: Any, headers: dict[str, str] | None = None
    ) -> tuple[int, dict[str, Any]]:
        if not isinstance(payload, dict):
            raise BadRequest("request body must be a snapshot object")
        managed = await self.manager.resume_async(
            payload, session_id=self._fleet_session_id(headers)
        )
        return 201, {
            **managed.describe(),
            "progress": progress_payload(managed.session),
        }

    async def _question(self, managed) -> tuple[int, dict[str, Any]]:
        async with managed.lock:
            # The manager both proposes and starts speculating on the
            # answer tree, so the next round-trip is a lookup when the
            # precompute wins the race against the user's think time.
            # The async path runs the entropy kernel through the shared
            # cross-session batcher, off the event loop.
            question = await self.manager.propose_question_async(managed)
            if question is None:
                return 200, {
                    "done": True,
                    "progress": progress_payload(managed.session),
                }
            return 200, {
                "done": False,
                **question_payload(managed.session, question),
            }

    async def _answer(
        self, managed, payload: Any
    ) -> tuple[int, dict[str, Any]]:
        question_id, label = parse_answer_payload(payload)
        async with managed.lock:
            try:
                example = self.manager.record_answer(
                    managed, question_id, label
                )
            except QuestionProtocolError as exc:
                raise Conflict(str(exc)) from exc
            except InconsistentSampleError as exc:
                raise Conflict(str(exc)) from exc
            response = {
                "recorded": {
                    "question_id": question_id,
                    "label": str(example.label),
                },
                "progress": progress_payload(managed.session),
            }
            if (
                not managed.session.is_finished()
                and self.manager.events.has_subscribers(
                    managed.session_id
                )
            ):
                # Streamed session: propose — and thereby publish — the
                # next question *before* the answer response, so the
                # question event rides the answer round-trip and is
                # already in the subscriber's hand when ``POST /answer``
                # returns.  Best-effort: a proposal failure must not
                # fail the recorded answer.  Polled sessions skip this,
                # keeping the pre-streaming answer path bit-for-bit.
                try:
                    await self.manager.propose_question_async(managed)
                except ServiceError:
                    pass
        return 200, response

    # --- streaming -----------------------------------------------------------

    async def _stream(self, managed: ManagedSession) -> EventStream:
        """``GET /sessions/{id}/stream``: subscribe to the session feed.

        Proposing *before* subscribing (both under the session lock)
        makes the initial snapshot authoritative: the pending question
        — freshly proposed or re-fetched — rides in the snapshot, and
        every later event arrives through the queue, each exactly once.
        """
        bus = self.manager.events
        session = managed.session
        async with managed.lock:
            question = await self.manager.propose_question_async(managed)
            subscription = bus.subscribe(managed.session_id)
            seq = bus.topic_seq(managed.session_id)
            initial = [
                (
                    "hello",
                    sse_frame(
                        {
                            "event": "hello",
                            "topic": managed.session_id,
                            "seq": seq,
                            **managed.describe(),
                            "progress": progress_payload(session),
                        }
                    ),
                )
            ]
            if question is not None:
                initial.append(
                    (
                        "question",
                        sse_frame(
                            {
                                "event": "question",
                                "topic": managed.session_id,
                                "seq": seq,
                                "session_id": managed.session_id,
                                "strategy": session.strategy.name,
                                "source": "snapshot",
                                "planner": session.strategy.progress(),
                                "progress": progress_payload(session),
                                **question_payload(session, question),
                            }
                        ),
                    )
                )
            elif session.is_finished():
                initial.append(
                    (
                        "done",
                        sse_frame(
                            {
                                "event": "done",
                                "topic": managed.session_id,
                                "seq": seq,
                                "session_id": managed.session_id,
                                "strategy": session.strategy.name,
                                "interactions": (
                                    session.state.interaction_count
                                ),
                                "progress": progress_payload(session),
                            }
                        ),
                    )
                )
        return EventStream(
            subscription,
            initial=initial,
            close_kinds=_STREAM_CLOSE_KINDS,
            heartbeat_seconds=self.heartbeat_seconds,
        )

    def _service_stream(self) -> EventStream:
        """``GET /events/stream``: the service-wide feed, opening with a
        dashboard snapshot so a monitoring client starts consistent.

        Served in broadcast mode — every subscriber shares the
        :class:`ServiceFeedBroadcaster` instead of owning a queue and a
        pump coroutine, so fan-out cost per event is one scheduled
        flush, not one wake-up per socket.  (Events published between
        this snapshot and the socket's registration are not replayed;
        the feed is observability, already lossy by design under
        overflow, unlike the gap-free per-session streams.)"""
        bus = self.manager.events
        hello = {
            "event": "hello",
            "topic": SERVICE_FEED,
            "seq": bus.topic_seq(SERVICE_FEED),
            "dashboard": self.manager.dashboard(),
        }
        return EventStream(
            initial=[("hello", sse_frame(hello))],
            heartbeat_seconds=self.heartbeat_seconds,
            broadcast=True,
        )


# --- HTTP plumbing -----------------------------------------------------------


_STREAM_HEAD = (
    b"HTTP/1.1 200 OK\r\n"
    b"Content-Type: text/event-stream\r\n"
    b"Cache-Control: no-cache\r\n"
    b"Connection: close\r\n"
    b"Transfer-Encoding: chunked\r\n"
    b"\r\n"
)


def _chunk(frame: bytes) -> bytes:
    """One HTTP/1.1 chunk.  Exactly one SSE frame per chunk: the fleet
    router forwards whole chunks, so frame boundaries survive proxying
    and a worker dying mid-frame can never corrupt a client's parse."""
    return f"{len(frame):x}\r\n".encode("ascii") + frame + b"\r\n"


async def _serve_stream(
    writer: asyncio.StreamWriter, stream: EventStream
) -> None:
    """Pump an :class:`EventStream` down one chunked HTTP response."""
    subscription = stream.subscription
    try:
        writer.write(_STREAM_HEAD)
        closing = False
        for kind, frame in stream.initial:
            writer.write(_chunk(frame))
            if kind in stream.close_kinds:
                closing = True
        await writer.drain()
        while not closing:
            try:
                kind, frame = await asyncio.wait_for(
                    subscription.get(),
                    timeout=stream.heartbeat_seconds,
                )
            except asyncio.TimeoutError:
                # SSE comment — ignored by consumers, but it exercises
                # the socket so a half-open connection fails fast.
                writer.write(_chunk(b": keep-alive\n\n"))
                await writer.drain()
                continue
            writer.write(_chunk(frame))
            if kind in stream.close_kinds:
                closing = True
            await writer.drain()
        writer.write(b"0\r\n\r\n")
        await writer.drain()
    except (
        ConnectionResetError,
        BrokenPipeError,
        OSError,
        asyncio.CancelledError,
    ):
        # Client went away or the server is shutting down — either way
        # the subscription just needs tearing down.
        pass
    finally:
        stream.close()


async def _serve_broadcast(
    app: ServiceApp,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    stream: EventStream,
) -> None:
    """Serve a broadcast-mode :class:`EventStream`: once the head and
    snapshot are flushed the socket is handed to the
    :class:`ServiceFeedBroadcaster`'s feed thread (which also owns the
    keep-alive) — this coroutine only watches for client close."""
    broadcaster = app.service_feed
    registered = False
    try:
        writer.write(_STREAM_HEAD)
        for _kind, frame in stream.initial:
            writer.write(_chunk(frame))
        await writer.drain()
        # The feed thread writes the raw socket directly, so hand over
        # only once the transport's own buffer is empty — drain() only
        # guarantees "below high water", not "flushed".
        transport = writer.transport
        deadline = asyncio.get_running_loop().time() + 5.0
        while transport.get_write_buffer_size():
            if asyncio.get_running_loop().time() > deadline:
                return  # client not reading its own snapshot; give up
            await asyncio.sleep(0.001)
        broadcaster.register(writer)
        registered = True
        while True:
            data = await reader.read(1)
            if not data:
                return  # client closed its end (or the feed evicted us)
            # Anything else is a pipelined request on a Connection:
            # close stream — a client bug; ignore the bytes.
    except (
        ConnectionResetError,
        BrokenPipeError,
        OSError,
        asyncio.CancelledError,
    ):
        pass
    finally:
        if registered:
            broadcaster.unregister(writer)


def _response_bytes(status: int, payload: dict[str, Any]) -> bytes:
    body = json.dumps(payload).encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: keep-alive\r\n"
        f"\r\n"
    ).encode("ascii")
    return head + body


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, bytes, bool, dict[str, str]] | None:
    """Parse one request; None at end-of-stream before a request line."""
    line = await reader.readline()
    if not line:
        return None
    try:
        method, target, version = line.decode("ascii").split()
    except ValueError:
        raise BadRequest(f"malformed request line {line!r}")
    headers: dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    raw_length = headers.get("content-length", "0") or "0"
    try:
        length = int(raw_length)
    except ValueError:
        raise BadRequest(f"malformed Content-Length {raw_length!r}")
    if length < 0 or length > _MAX_BODY_BYTES:
        raise BadRequest(f"bad request body length {length}")
    body = await reader.readexactly(length) if length else b""
    keep_alive = (
        headers.get("connection", "").lower() != "close"
        and version.upper() != "HTTP/1.0"
    )
    # Strip any query string; the protocol is JSON-body only.
    path = target.split("?", 1)[0]
    return method.upper(), path, body, keep_alive, headers


async def _handle_connection(
    app: ServiceApp,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        while True:
            try:
                request = await _read_request(reader)
            except (
                asyncio.IncompleteReadError,
                ConnectionResetError,
            ):
                break
            except asyncio.CancelledError:
                # Server shutdown while the connection idled between
                # requests — close quietly.
                break
            except ValueError as exc:
                # StreamReader raises ValueError for over-limit lines.
                writer.write(
                    _response_bytes(
                        400, {"error": "bad_request", "message": str(exc)}
                    )
                )
                await writer.drain()
                break
            except BadRequest as exc:
                writer.write(
                    _response_bytes(
                        400, {"error": "bad_request", "message": str(exc)}
                    )
                )
                await writer.drain()
                break
            if request is None:
                break
            method, path, body, keep_alive, headers = request
            try:
                if body:
                    try:
                        payload = json.loads(body)
                    except json.JSONDecodeError as exc:
                        status, response = 400, {
                            "error": "bad_request",
                            "message": f"invalid JSON body: {exc}",
                        }
                    else:
                        status, response = await app.dispatch(
                            method, path, payload, headers
                        )
                else:
                    status, response = await app.dispatch(
                        method, path, None, headers
                    )
            except asyncio.CancelledError:
                # Server shutdown while a handler awaited off-loop work
                # (e.g. an index build) — drop the connection quietly;
                # the client sees a disconnect, not a half-response.
                break
            if isinstance(response, EventStream):
                # Streaming upgrade: this connection now belongs to the
                # stream until it ends; never reused for requests.
                if response.broadcast:
                    await _serve_broadcast(app, reader, writer, response)
                else:
                    await _serve_stream(writer, response)
                break
            writer.write(_response_bytes(status, response))
            await writer.drain()
            if not keep_alive:
                break
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.CancelledError,
        ):
            # CancelledError: the loop is tearing the task down mid
            # close (worker drain) — the transport is going away with
            # it, so there is nothing left to wait for.
            pass


async def start_server(
    app: ServiceApp,
    host: str = "127.0.0.1",
    port: int = 0,
) -> asyncio.base_events.Server:
    """Bind and start serving; ``port=0`` picks a free port."""
    return await asyncio.start_server(
        lambda r, w: _handle_connection(app, r, w), host, port
    )


async def run_server(
    app: ServiceApp, host: str = "127.0.0.1", port: int = 8642
) -> None:
    """Serve until cancelled (the CLI entry point's coroutine)."""
    server = await start_server(app, host, port)
    addresses = ", ".join(
        f"{sock.getsockname()[0]}:{sock.getsockname()[1]}"
        for sock in server.sockets
    )
    print(f"repro-join service listening on {addresses}")
    async with server:
        await server.serve_forever()


class ServiceServer:
    """A server on a background thread — for tests, benchmarks, and
    examples that need a live endpoint inside one process.

    Usage::

        with ServiceServer(manager=SessionManager()) as server:
            client = ServiceClient(server.host, server.port)
    """

    #: Every started-but-not-closed instance — the test suite's leak
    #: guard asserts this is empty after each session, so a test that
    #: forgets ``close()`` fails loudly instead of leaking a socket and
    #: a loop thread into the next test.
    _live: "weakref.WeakSet[ServiceServer]" = weakref.WeakSet()

    def __init__(
        self,
        manager: SessionManager | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        heartbeat_seconds: float = 15.0,
    ):
        self.app = ServiceApp(manager, heartbeat_seconds=heartbeat_seconds)
        self._requested = (host, port)
        self.host: str | None = None
        self.port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._server: asyncio.base_events.Server | None = None

    @property
    def manager(self) -> SessionManager:
        """The hosted session manager."""
        return self.app.manager

    def start(self) -> "ServiceServer":
        """Start the loop thread and block until the port is bound."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("service failed to start within 30s")
        ServiceServer._live.add(self)
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)

        async def main() -> None:
            host, port = self._requested
            self._server = await start_server(self.app, host, port)
            sockname = self._server.sockets[0].getsockname()
            self.host, self.port = sockname[0], sockname[1]
            self._started.set()
            await self._server.serve_forever()

        try:
            loop.run_until_complete(main())
        except asyncio.CancelledError:
            pass
        finally:
            # Drain the build pools while the loop object still exists:
            # an in-flight build finishing after loop.close() would fire
            # call_soon_threadsafe into a closed loop from its worker
            # thread.  Here the loop is merely stopped, so the late
            # callback is accepted and harmlessly discarded by close().
            self.app.service_feed.stop()
            self.app.manager.close(wait=True)
            # Connection tasks legitimately swallow the shutdown cancel
            # (to tear their stream down cleanly) and then park once
            # more on ``writer.wait_closed()``; cancel again and let
            # them finish, or they die un-awaited when the loop closes
            # ("Task was destroyed but it is pending!" noise).
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    def close(self) -> None:
        """Stop serving and join the loop thread."""
        loop, thread = self._loop, self._thread
        if loop is None or thread is None:
            return

        def _shutdown() -> None:
            for task in asyncio.all_tasks(loop):
                task.cancel()

        loop.call_soon_threadsafe(_shutdown)
        thread.join(timeout=30)
        self._loop = None
        self._thread = None
        self.manager.close()
        ServiceServer._live.discard(self)

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
