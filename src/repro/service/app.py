"""The asyncio HTTP/JSON server hosting concurrent inference sessions.

Stdlib only: a minimal HTTP/1.1 request loop over ``asyncio`` streams
(keep-alive, ``Content-Length`` bodies) in front of a JSON router.  Every
handler is a small synchronous computation — label recording and question
selection are array operations on the shared index — so the single event
loop comfortably serves many interleaved sessions; per-session locks in
the :class:`~repro.service.manager.SessionManager` keep each session's
protocol sequential regardless of how requests interleave.

Routes
------

==========  ==============================  =====================================
method      path                            action
==========  ==============================  =====================================
POST        ``/sessions``                   create a session (builtin or CSV)
GET         ``/sessions``                   list live sessions
POST        ``/sessions/resume``            recreate a session from a snapshot
GET         ``/sessions/{id}``              session info + progress
GET         ``/sessions/{id}/question``     next membership question (or done)
POST        ``/sessions/{id}/answer``       record a label for a question
GET         ``/sessions/{id}/predicate``    current ``T(S+)`` + progress
GET         ``/sessions/{id}/snapshot``     resumable session state
DELETE      ``/sessions/{id}``              drop the session
GET         ``/builds``                     progress of in-flight index builds
GET         ``/stats``                      server + index-cache counters
==========  ==============================  =====================================

Cold index builds run on the manager's worker pool (single-flight per
fingerprint), so while one client waits for a large build, every other
session keeps answering and ``GET /builds`` reports shard progress.

Fleet workers (``ServiceApp(control=True)``) additionally expose
worker-internal control routes the front router drives — never meant
for external clients, and 404 unless enabled:

==========  ==============================  =====================================
GET         ``/control/health``             liveness + live-session count
POST        ``/control/drain``              demote every durable session, flush,
                                            release leases (graceful shutdown)
POST        ``/control/demote``             demote the listed sessions (rebalance
                                            after a dead slot respawns)
==========  ==============================  =====================================

The router also assigns session ids itself (it must know the id to pick
the owning worker before the create lands), passing them down via the
internal ``x-fleet-session-id`` header on create/resume.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import threading
from typing import Any

from ..core.consistency import InconsistentSampleError
from ..core.session import QuestionProtocolError
from .manager import SessionManager
from .protocol import (
    BadRequest,
    Conflict,
    NotFound,
    ServiceError,
    builds_payload,
    parse_answer_payload,
    parse_create_payload,
    predicate_payload,
    progress_payload,
    question_payload,
    sessions_payload,
)

__all__ = ["ServiceApp", "start_server", "run_server", "ServiceServer"]

_MAX_BODY_BYTES = 64 * 1024 * 1024
_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class ServiceApp:
    """Routes (method, path, JSON body) triples onto the manager."""

    def __init__(
        self,
        manager: SessionManager | None = None,
        *,
        control: bool = False,
    ):
        # `manager or ...` would discard an *empty* manager (it has len 0).
        self.manager = manager if manager is not None else SessionManager()
        #: Expose the worker-internal ``/control/*`` routes (fleet
        #: workers only; a public-facing server keeps them 404).
        self.control = control

    async def dispatch(
        self,
        method: str,
        path: str,
        payload: Any,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict[str, Any]]:
        """Handle one request; returns ``(status, response payload)``."""
        try:
            return await self._route(method, path, payload, headers)
        except ServiceError as exc:
            return exc.status, {
                "error": exc.code,
                "message": str(exc),
            }
        except Exception as exc:  # noqa: BLE001 - last-resort barrier
            return 500, {"error": "internal_error", "message": str(exc)}

    async def _route(
        self,
        method: str,
        path: str,
        payload: Any,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict[str, Any]]:
        parts = [p for p in path.split("/") if p]
        if parts == ["stats"] or not parts:
            if method != "GET":
                raise BadRequest(f"{method} not allowed on /stats")
            return 200, await self.manager.stats_async()
        if parts == ["builds"]:
            if method != "GET":
                raise BadRequest(f"{method} not allowed on /builds")
            return 200, builds_payload(self.manager.builds())
        if parts and parts[0] == "control":
            return await self._control(method, parts, payload)
        if parts[0] != "sessions":
            raise NotFound(f"no route {path!r}")

        if len(parts) == 1:
            if method == "POST":
                return await self._create(payload, headers)
            if method == "GET":
                # Counts first: session_counts sweeps, so listing
                # afterwards cannot include a session the counts just
                # demoted (the two views stay consistent).
                counts = await self.manager.session_counts_async()
                return 200, sessions_payload(
                    [
                        {
                            **m.describe(),
                            "progress": progress_payload(m.session),
                        }
                        for m in self.manager.list_sessions()
                    ],
                    counts,
                )
            raise BadRequest(f"{method} not allowed on /sessions")

        if parts[1] == "resume" and len(parts) == 2:
            if method != "POST":
                raise BadRequest(f"{method} not allowed on resume")
            return await self._resume(payload, headers)

        session_id = parts[1]
        action = parts[2] if len(parts) == 3 else None
        if len(parts) > 3:
            raise NotFound(f"no route {path!r}")
        if action is None and method == "DELETE":
            # Deleting a demoted session must not rehydrate it first —
            # the manager forgets stored state directly (probing the
            # store off-loop).
            await self.manager.delete_async(session_id)
            return 200, {"deleted": session_id}
        # Touching a demoted session rehydrates it off-loop (replay on
        # the build pool, single-flight per id) — transparently to the
        # client, exactly like waiting out a cold index build.
        managed = await self.manager.get_async(session_id)

        if action is None:
            if method == "GET":
                return 200, {
                    **managed.describe(),
                    "progress": progress_payload(managed.session),
                }
            raise BadRequest(f"{method} not allowed on a session")
        if action == "question" and method == "GET":
            return await self._question(managed)
        if action == "answer" and method == "POST":
            return await self._answer(managed, payload)
        if action == "predicate" and method == "GET":
            async with managed.lock:
                return 200, predicate_payload(managed.session)
        if action == "snapshot" and method == "GET":
            async with managed.lock:
                return 200, self.manager.snapshot(session_id)
        raise NotFound(f"no route {path!r}")

    @staticmethod
    def _fleet_session_id(headers: dict[str, str] | None) -> str | None:
        """The router-assigned session id, when this request came
        through the fleet front (internal header, absent otherwise)."""
        if not headers:
            return None
        return headers.get("x-fleet-session-id") or None

    async def _control(
        self, method: str, parts: list[str], payload: Any
    ) -> tuple[int, dict[str, Any]]:
        """Worker-internal routes the fleet router drives."""
        if not self.control:
            raise NotFound("no route /" + "/".join(parts))
        route = parts[1] if len(parts) == 2 else None
        if route == "health":
            if method != "GET":
                raise BadRequest(f"{method} not allowed on health")
            return 200, {
                "ok": True,
                "owner": self.manager.owner_id,
                "sessions": len(self.manager),
            }
        if route == "drain":
            if method != "POST":
                raise BadRequest(f"{method} not allowed on drain")
            demoted = self.manager.demote_all()
            # Durability barrier off-loop: every demoted session's
            # journal tail (and its trailing lease release) commits
            # before the router is told the drain finished.
            await self.manager.offload(self.manager.flush_store)
            return 200, {"demoted": demoted}
        if route == "demote":
            if method != "POST":
                raise BadRequest(f"{method} not allowed on demote")
            if not isinstance(payload, dict) or not isinstance(
                payload.get("session_ids"), list
            ):
                raise BadRequest("'session_ids' must be a list")
            demoted: list[str] = []
            skipped: list[str] = []
            for session_id in payload["session_ids"]:
                try:
                    self.manager.demote(session_id)
                except (NotFound, BadRequest):
                    skipped.append(session_id)
                else:
                    demoted.append(session_id)
            await self.manager.offload(self.manager.flush_store)
            return 200, {"demoted": demoted, "skipped": skipped}
        raise NotFound("no route /" + "/".join(parts))

    async def _create(
        self, payload: Any, headers: dict[str, str] | None = None
    ) -> tuple[int, dict[str, Any]]:
        # Validating an uploaded payload parses its CSV text — O(cells),
        # so it runs on the build pool like hashing and building.  A
        # builtin payload is O(1) and validates inline: a warm builtin
        # create must never queue behind someone else's cold build.
        if isinstance(payload, dict) and "csv" in payload:
            spec = await self.manager.offload(parse_create_payload, payload)
        else:
            spec = parse_create_payload(payload)
        session_id = self._fleet_session_id(headers)
        if session_id is not None:
            spec = dataclasses.replace(spec, session_id=session_id)
        managed = await self.manager.create_async(spec)
        return 201, {
            **managed.describe(),
            "progress": progress_payload(managed.session),
        }

    async def _resume(
        self, payload: Any, headers: dict[str, str] | None = None
    ) -> tuple[int, dict[str, Any]]:
        if not isinstance(payload, dict):
            raise BadRequest("request body must be a snapshot object")
        managed = await self.manager.resume_async(
            payload, session_id=self._fleet_session_id(headers)
        )
        return 201, {
            **managed.describe(),
            "progress": progress_payload(managed.session),
        }

    async def _question(self, managed) -> tuple[int, dict[str, Any]]:
        async with managed.lock:
            # The manager both proposes and starts speculating on the
            # answer tree, so the next round-trip is a lookup when the
            # precompute wins the race against the user's think time.
            # The async path runs the entropy kernel through the shared
            # cross-session batcher, off the event loop.
            question = await self.manager.propose_question_async(managed)
            if question is None:
                return 200, {
                    "done": True,
                    "progress": progress_payload(managed.session),
                }
            return 200, {
                "done": False,
                **question_payload(managed.session, question),
            }

    async def _answer(
        self, managed, payload: Any
    ) -> tuple[int, dict[str, Any]]:
        question_id, label = parse_answer_payload(payload)
        async with managed.lock:
            try:
                example = self.manager.record_answer(
                    managed, question_id, label
                )
            except QuestionProtocolError as exc:
                raise Conflict(str(exc)) from exc
            except InconsistentSampleError as exc:
                raise Conflict(str(exc)) from exc
            return 200, {
                "recorded": {
                    "question_id": question_id,
                    "label": str(example.label),
                },
                "progress": progress_payload(managed.session),
            }


# --- HTTP plumbing -----------------------------------------------------------


def _response_bytes(status: int, payload: dict[str, Any]) -> bytes:
    body = json.dumps(payload).encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: keep-alive\r\n"
        f"\r\n"
    ).encode("ascii")
    return head + body


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, bytes, bool, dict[str, str]] | None:
    """Parse one request; None at end-of-stream before a request line."""
    line = await reader.readline()
    if not line:
        return None
    try:
        method, target, version = line.decode("ascii").split()
    except ValueError:
        raise BadRequest(f"malformed request line {line!r}")
    headers: dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    raw_length = headers.get("content-length", "0") or "0"
    try:
        length = int(raw_length)
    except ValueError:
        raise BadRequest(f"malformed Content-Length {raw_length!r}")
    if length < 0 or length > _MAX_BODY_BYTES:
        raise BadRequest(f"bad request body length {length}")
    body = await reader.readexactly(length) if length else b""
    keep_alive = (
        headers.get("connection", "").lower() != "close"
        and version.upper() != "HTTP/1.0"
    )
    # Strip any query string; the protocol is JSON-body only.
    path = target.split("?", 1)[0]
    return method.upper(), path, body, keep_alive, headers


async def _handle_connection(
    app: ServiceApp,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        while True:
            try:
                request = await _read_request(reader)
            except (
                asyncio.IncompleteReadError,
                ConnectionResetError,
            ):
                break
            except asyncio.CancelledError:
                # Server shutdown while the connection idled between
                # requests — close quietly.
                break
            except ValueError as exc:
                # StreamReader raises ValueError for over-limit lines.
                writer.write(
                    _response_bytes(
                        400, {"error": "bad_request", "message": str(exc)}
                    )
                )
                await writer.drain()
                break
            except BadRequest as exc:
                writer.write(
                    _response_bytes(
                        400, {"error": "bad_request", "message": str(exc)}
                    )
                )
                await writer.drain()
                break
            if request is None:
                break
            method, path, body, keep_alive, headers = request
            try:
                if body:
                    try:
                        payload = json.loads(body)
                    except json.JSONDecodeError as exc:
                        status, response = 400, {
                            "error": "bad_request",
                            "message": f"invalid JSON body: {exc}",
                        }
                    else:
                        status, response = await app.dispatch(
                            method, path, payload, headers
                        )
                else:
                    status, response = await app.dispatch(
                        method, path, None, headers
                    )
            except asyncio.CancelledError:
                # Server shutdown while a handler awaited off-loop work
                # (e.g. an index build) — drop the connection quietly;
                # the client sees a disconnect, not a half-response.
                break
            writer.write(_response_bytes(status, response))
            await writer.drain()
            if not keep_alive:
                break
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.CancelledError,
        ):
            # CancelledError: the loop is tearing the task down mid
            # close (worker drain) — the transport is going away with
            # it, so there is nothing left to wait for.
            pass


async def start_server(
    app: ServiceApp,
    host: str = "127.0.0.1",
    port: int = 0,
) -> asyncio.base_events.Server:
    """Bind and start serving; ``port=0`` picks a free port."""
    return await asyncio.start_server(
        lambda r, w: _handle_connection(app, r, w), host, port
    )


async def run_server(
    app: ServiceApp, host: str = "127.0.0.1", port: int = 8642
) -> None:
    """Serve until cancelled (the CLI entry point's coroutine)."""
    server = await start_server(app, host, port)
    addresses = ", ".join(
        f"{sock.getsockname()[0]}:{sock.getsockname()[1]}"
        for sock in server.sockets
    )
    print(f"repro-join service listening on {addresses}")
    async with server:
        await server.serve_forever()


class ServiceServer:
    """A server on a background thread — for tests, benchmarks, and
    examples that need a live endpoint inside one process.

    Usage::

        with ServiceServer(manager=SessionManager()) as server:
            client = ServiceClient(server.host, server.port)
    """

    def __init__(
        self,
        manager: SessionManager | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.app = ServiceApp(manager)
        self._requested = (host, port)
        self.host: str | None = None
        self.port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._server: asyncio.base_events.Server | None = None

    @property
    def manager(self) -> SessionManager:
        """The hosted session manager."""
        return self.app.manager

    def start(self) -> "ServiceServer":
        """Start the loop thread and block until the port is bound."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("service failed to start within 30s")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)

        async def main() -> None:
            host, port = self._requested
            self._server = await start_server(self.app, host, port)
            sockname = self._server.sockets[0].getsockname()
            self.host, self.port = sockname[0], sockname[1]
            self._started.set()
            await self._server.serve_forever()

        try:
            loop.run_until_complete(main())
        except asyncio.CancelledError:
            pass
        finally:
            # Drain the build pools while the loop object still exists:
            # an in-flight build finishing after loop.close() would fire
            # call_soon_threadsafe into a closed loop from its worker
            # thread.  Here the loop is merely stopped, so the late
            # callback is accepted and harmlessly discarded by close().
            self.app.manager.close(wait=True)
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    def close(self) -> None:
        """Stop serving and join the loop thread."""
        loop, thread = self._loop, self._thread
        if loop is None or thread is None:
            return

        def _shutdown() -> None:
            for task in asyncio.all_tasks(loop):
                task.cancel()

        loop.call_soon_threadsafe(_shutdown)
        thread.join(timeout=30)
        self._loop = None
        self._thread = None
        self.manager.close()

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
