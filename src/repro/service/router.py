"""The fleet's front router: one public port, N worker processes.

A thin stdlib-asyncio HTTP/1.1 proxy speaking the *existing* service
protocol — clients cannot tell a fleet from a single server.  Every
request is routed by **session id**:

* ``POST /sessions`` and ``POST /sessions/resume`` have no id yet, so
  the router mints one (it must know the id *before* it can pick the
  worker) and passes it down via the internal ``x-fleet-session-id``
  header; the worker creates the session under exactly that id.
* ``/sessions/{id}/...`` goes to the id's **home slot** —
  ``crc32(id) % workers``, a stable partition every router restart
  recomputes identically (unlike Python's per-process ``hash``) — so a
  session's whole life is served by one process and its in-memory
  state (speculation trees, batched kernels) stays hot.
* ``/stats``, ``/sessions`` (list), ``/builds`` and ``/dashboard``
  fan out to every live worker and aggregate; ``/fleet`` is the
  router's own view (slots, pids, generations, failover counters).

**Streaming (PR 10).**  The two SSE routes are proxied, not
dispatched: the router forwards the worker's chunked response *one
complete chunk at a time* (each chunk is exactly one SSE frame, by
construction on the worker side), so a worker dying mid-frame can
never leak a torn frame to a client.  A mid-stream worker death
surfaces as a clean, retryable ``reconnect`` event followed by a
proper end-of-stream — never a silent hang — and the client
resubscribes, landing on the failover survivor exactly like any other
request.  ``GET /events/stream`` multiplexes every worker's service
feed into one client stream, reattaching to respawned slots
automatically.

**Failover.**  When the home worker is unreachable (SIGKILLed, or
mid-respawn), the router picks a live survivor, records the *override*
``session → survivor slot``, and re-sends.  The survivor rehydrates the
session from the shared store behind the lease takeover: it waits out
the dead owner's lease TTL, bumps the fencing epoch, and replays the
checkpoint + journal tail bit-for-bit.  A request is only re-sent when
that is provably safe: the bytes never reached a worker (connect
refused), or the method is an idempotent GET — a mutating request that
died mid-flight is answered 503 and left to the client.

**Rebalance.**  The supervisor respawns the dead slot; once it is back,
the router asks each survivor to ``/control/demote`` the sessions it
was covering (checkpoint + flush + lease release) and clears the
overrides — the next touch rehydrates each session on its home slot.

**Drain.**  ``shutdown(drain=True)`` (the CLI's SIGTERM path) stops
accepting, tells every live worker to ``/control/drain`` — demoting
every durable session and releasing every lease — and only then
terminates the fleet, so a redeploy loses nothing and leaves no lease
for a successor fleet to wait out.
"""

from __future__ import annotations

import asyncio
import json
import uuid
import zlib
from typing import Any

from .app import _STREAM_HEAD, _chunk, _read_request, _response_bytes
from .events import SERVICE_FEED, sse_frame
from .fleet import Fleet, WorkerHandle
from .protocol import BadRequest

__all__ = ["FleetRouter", "WorkerUnavailable"]

_POOL_PER_WORKER = 32

#: Poll interval while a service-feed pump waits out a slot respawn.
_REATTACH_INTERVAL = 0.2


class _ClientGone(Exception):
    """The downstream client closed its stream connection."""


class WorkerUnavailable(Exception):
    """A proxied request could not complete against its worker.

    ``sent`` distinguishes the two failure points: ``False`` means the
    connection never carried the request (retrying anywhere is safe),
    ``True`` means the worker may have processed it (only idempotent
    requests may be retried)."""

    def __init__(self, slot: int, reason: str, *, sent: bool):
        super().__init__(f"worker slot {slot}: {reason}")
        self.slot = slot
        self.sent = sent


class FleetRouter:
    """Route public requests onto the fleet's worker processes."""

    def __init__(self, fleet: Fleet):
        self.fleet = fleet
        fleet.on_respawn = self._rebalance
        #: session_id -> slot currently covering it instead of its home
        #: slot (set on failover, cleared by rebalance/delete).
        self.overrides: dict[str, int] = {}
        #: (slot, generation) -> idle pooled connections; keyed by
        #: generation so a respawned slot never inherits sockets to its
        #: dead predecessor.
        self._pools: dict[tuple[int, int], list[tuple]] = {}
        self._server: asyncio.base_events.Server | None = None
        #: Live client-connection tasks, cancelled on shutdown so a
        #: keep-alive connection can't outlive the event loop.
        self._connections: set[asyncio.Task] = set()
        self.proxied_total = 0
        self.failovers_total = 0
        self.rebalanced_total = 0
        self.unavailable_total = 0

    # --- routing -------------------------------------------------------------

    def slot_of(self, session_id: str) -> int:
        return zlib.crc32(session_id.encode("utf-8")) % self.fleet.size

    def _pick_live(self, exclude: int | None = None) -> WorkerHandle | None:
        """A live worker, preferring slots other than ``exclude``;
        deterministic order so one dead slot's sessions all land on the
        same survivor (their rehydrations share its index cache)."""
        handles = self.fleet.live_handles()
        for handle in handles:
            if handle.slot != exclude:
                return handle
        return handles[0] if handles else None

    def _home_handle(
        self, session_id: str
    ) -> tuple[int, WorkerHandle | None]:
        slot = self.overrides.get(session_id)
        if slot is not None:
            handle = self.fleet.alive(slot)
            if handle is not None:
                return slot, handle
            # The covering worker died too: fall back to the home slot.
            del self.overrides[session_id]
        slot = self.slot_of(session_id)
        return slot, self.fleet.alive(slot)

    # --- worker-side HTTP ----------------------------------------------------

    async def _checkout(self, handle: WorkerHandle):
        pool = self._pools.get((handle.slot, handle.generation))
        while pool:
            reader, writer = pool.pop()
            if not writer.is_closing():
                return reader, writer
            writer.close()
        return await asyncio.open_connection(
            self.fleet.config.host, handle.port
        )

    def _checkin(self, handle: WorkerHandle, reader, writer) -> None:
        key = (handle.slot, handle.generation)
        pool = self._pools.setdefault(key, [])
        if len(pool) < _POOL_PER_WORKER and not writer.is_closing():
            pool.append((reader, writer))
        else:
            writer.close()

    async def proxy(
        self,
        handle: WorkerHandle,
        method: str,
        path: str,
        body: bytes,
        extra_headers: dict[str, str] | None = None,
    ) -> tuple[int, bytes]:
        """One raw round-trip against one worker (keep-alive pooled)."""
        fresh = False
        try:
            reader, writer = await self._checkout(handle)
        except OSError as exc:
            raise WorkerUnavailable(
                handle.slot, f"connect failed: {exc}", sent=False
            ) from exc
        try:
            head = [
                f"{method} {path} HTTP/1.1",
                f"Host: {self.fleet.config.host}:{handle.port}",
                f"Content-Length: {len(body)}",
                "Content-Type: application/json",
                "Connection: keep-alive",
            ]
            for name, value in (extra_headers or {}).items():
                head.append(f"{name}: {value}")
            writer.write(
                ("\r\n".join(head) + "\r\n\r\n").encode("ascii") + body
            )
            await writer.drain()
            status, response_body = await self._read_worker_response(
                reader
            )
        except (OSError, asyncio.IncompleteReadError, ValueError) as exc:
            writer.close()
            if not fresh:
                # A pooled keep-alive socket can be stale (worker
                # restarted, idle timeout): retry once on a fresh
                # connection before declaring the worker gone.
                try:
                    reader, writer = await asyncio.open_connection(
                        self.fleet.config.host, handle.port
                    )
                except OSError as exc2:
                    raise WorkerUnavailable(
                        handle.slot,
                        f"connect failed: {exc2}",
                        sent=False,
                    ) from exc2
                fresh = True
                try:
                    writer.write(
                        ("\r\n".join(head) + "\r\n\r\n").encode("ascii")
                        + body
                    )
                    await writer.drain()
                    status, response_body = (
                        await self._read_worker_response(reader)
                    )
                except (
                    OSError,
                    asyncio.IncompleteReadError,
                    ValueError,
                ) as exc3:
                    writer.close()
                    raise WorkerUnavailable(
                        handle.slot, f"request failed: {exc3}", sent=True
                    ) from exc3
            else:
                raise WorkerUnavailable(
                    handle.slot, f"request failed: {exc}", sent=True
                ) from exc
        self._checkin(handle, reader, writer)
        self.proxied_total += 1
        return status, response_body

    @staticmethod
    async def _read_worker_response(reader) -> tuple[int, bytes]:
        line = await reader.readline()
        if not line:
            raise asyncio.IncompleteReadError(b"", None)
        status = int(line.split()[1])
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        body = await reader.readexactly(length) if length else b""
        return status, body

    def proxy_json(
        self,
        handle: WorkerHandle,
        method: str,
        path: str,
        payload: Any = None,
    ):
        body = (
            json.dumps(payload).encode("utf-8")
            if payload is not None
            else b""
        )
        return self.proxy(handle, method, path, body)

    # --- request handling ----------------------------------------------------

    async def dispatch_raw(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, bytes]:
        """Route one public request; returns ``(status, body bytes)``."""
        parts = [p for p in path.split("/") if p]
        if parts == ["fleet"]:
            return await self._aggregate_fleet()
        if parts == ["stats"] or not parts:
            return await self._aggregate_stats()
        if parts == ["builds"]:
            return await self._aggregate_builds()
        if parts == ["dashboard"]:
            return await self._aggregate_dashboard()
        if parts == ["sessions"] and method == "GET":
            return await self._aggregate_sessions()
        creating = (parts == ["sessions"] and method == "POST") or (
            parts == ["sessions", "resume"] and method == "POST"
        )
        if creating:
            return await self._create(method, path, body)
        if parts and parts[0] == "sessions" and len(parts) >= 2:
            return await self._session_request(
                parts[1], method, path, body
            )
        return self._json(
            404, {"error": "not_found", "message": f"no route {path!r}"}
        )

    async def _create(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, bytes]:
        """Mint the session id, pick its home worker, pass the id down.

        A create that fails mid-flight is *not* retried elsewhere — the
        first worker might have admitted the session; answering 503 and
        letting the client re-create keeps at-most-one alive."""
        session_id = uuid.uuid4().hex[:16]
        slot = self.slot_of(session_id)
        handle = self.fleet.alive(slot)
        if handle is None:
            # Home slot is mid-respawn: cover the new session on a
            # survivor, exactly like a failover of an existing one.
            handle = self._pick_live(exclude=slot)
            if handle is None:
                return self._no_workers()
            self.overrides[session_id] = handle.slot
            self.failovers_total += 1
        try:
            return await self.proxy(
                handle,
                method,
                path,
                body,
                extra_headers={"x-fleet-session-id": session_id},
            )
        except WorkerUnavailable:
            self.unavailable_total += 1
            self.overrides.pop(session_id, None)
            return self._unavailable()

    async def _session_request(
        self, session_id: str, method: str, path: str, body: bytes
    ) -> tuple[int, bytes]:
        slot, handle = self._home_handle(session_id)
        if handle is not None:
            try:
                status, response = await self.proxy(
                    handle, method, path, body
                )
            except WorkerUnavailable as exc:
                if not exc.sent and method != "GET":
                    # The request bytes never left the router, so a
                    # mutating request is still safe to fail over.
                    pass
                elif method != "GET":
                    self.unavailable_total += 1
                    return self._unavailable()
            else:
                if method == "DELETE" and status < 400:
                    self.overrides.pop(session_id, None)
                return status, response
        # Home (or covering) worker is gone: fail over to a survivor,
        # which takes the session's lease over and rehydrates it.
        survivor = self._pick_live(exclude=slot)
        if survivor is None:
            return self._no_workers()
        self.overrides[session_id] = survivor.slot
        self.failovers_total += 1
        try:
            status, response = await self.proxy(
                survivor, method, path, body
            )
        except WorkerUnavailable:
            self.unavailable_total += 1
            self.overrides.pop(session_id, None)
            return self._unavailable()
        if method == "DELETE" and status < 400:
            self.overrides.pop(session_id, None)
        return status, response

    # --- aggregation ---------------------------------------------------------

    async def _fan_out(
        self, method: str, path: str
    ) -> list[tuple[WorkerHandle, dict[str, Any]]]:
        handles = self.fleet.live_handles()
        results = await asyncio.gather(
            *(self.proxy_json(h, method, path) for h in handles),
            return_exceptions=True,
        )
        payloads = []
        for handle, result in zip(handles, results):
            if isinstance(result, BaseException):
                continue
            status, body = result
            if status >= 400:
                continue
            payloads.append((handle, json.loads(body)))
        return payloads

    def fleet_payload(self) -> dict[str, Any]:
        return {
            "workers": self.fleet.size,
            "alive": len(self.fleet.live_handles()),
            "respawns_total": self.fleet.respawns_total,
            "failovers_total": self.failovers_total,
            "rebalanced_total": self.rebalanced_total,
            "proxied_total": self.proxied_total,
            "unavailable_total": self.unavailable_total,
            "overrides": len(self.overrides),
            "slots": [
                handle.describe() if handle is not None else None
                for handle in self.fleet.workers
            ],
        }

    async def _aggregate_fleet(self) -> tuple[int, bytes]:
        """``GET /fleet``: the router's own view (:meth:`fleet_payload`)
        plus fleet-wide memory, shared-index and plan-cache aggregates
        drawn from every live worker's ``/stats``."""
        payload = self.fleet_payload()
        gathered = await self._fan_out("GET", "/stats")
        by_slot: dict[str, Any] = {}
        rss_total = 0
        private_total = 0
        shared_max = 0
        attach_hits = builds = publishes = 0
        plan_local = plan_shared = plan_computes = plan_publishes = 0
        plan_entries = 0
        plan_ready_max = 0
        plan_bytes_max = 0
        for handle, stats in gathered:
            memory = stats.get("memory") or {}
            cache = stats.get("index_cache") or {}
            plan = stats.get("plan_cache") or {}
            private = int(memory.get("index_private_bytes", 0))
            shared = int(memory.get("index_shared_bytes", 0))
            by_slot[str(handle.slot)] = {
                "rss_bytes": memory.get("rss_bytes"),
                "index_private_bytes": private,
                "index_shared_bytes": shared,
                "attach_hits": cache.get("attach_hits", 0),
                "builds": cache.get("builds", 0),
                "publishes": cache.get("publishes", 0),
                "plan_local_hits": plan.get("local_hits", 0),
                "plan_shared_hits": plan.get("shared_hits", 0),
                "plan_computes": plan.get("computes", 0),
            }
            rss_total += int(memory.get("rss_bytes") or 0)
            private_total += private
            shared_max = max(shared_max, shared)
            attach_hits += int(cache.get("attach_hits", 0))
            builds += int(cache.get("builds", 0))
            publishes += int(cache.get("publishes", 0))
            plan_local += int(plan.get("local_hits", 0))
            plan_shared += int(plan.get("shared_hits", 0))
            plan_computes += int(plan.get("computes", 0))
            plan_publishes += int(plan.get("publishes", 0))
            plan_entries += int(plan.get("entries", 0))
            registry = (plan.get("shared") or {}).get("registry") or {}
            # Every worker reads the same machine-wide registry: its
            # ready-segment totals aggregate by max (count each shared
            # entry once), not by sum.
            plan_ready_max = max(
                plan_ready_max, int(registry.get("ready_segments", 0))
            )
            plan_bytes_max = max(
                plan_bytes_max, int(registry.get("ready_bytes", 0))
            )
        payload["memory"] = {
            "rss_bytes_total": rss_total,
            "index_private_bytes_total": private_total,
            # A shared segment is one machine-wide copy however many
            # workers map it: aggregate across workers by max, not sum.
            "index_shared_bytes": shared_max,
            "index_resident_bytes_total": private_total + shared_max,
            "by_slot": by_slot,
        }
        payload["shared_index"] = {
            "attach_hits_total": attach_hits,
            "builds_total": builds,
            "publishes_total": publishes,
        }
        payload["plan_cache"] = {
            "local_hits_total": plan_local,
            "shared_hits_total": plan_shared,
            "computes_total": plan_computes,
            "publishes_total": plan_publishes,
            "entries_total": plan_entries,
            "shared_entries": plan_ready_max,
            "shared_bytes": plan_bytes_max,
        }
        return self._json(200, payload)

    async def _aggregate_stats(self) -> tuple[int, bytes]:
        gathered = await self._fan_out("GET", "/stats")
        return self._json(
            200,
            {
                "fleet": self.fleet_payload(),
                "sessions": sum(
                    p.get("sessions", 0) for _, p in gathered
                ),
                "workers": {
                    str(handle.slot): payload
                    for handle, payload in gathered
                },
            },
        )

    async def _aggregate_builds(self) -> tuple[int, bytes]:
        gathered = await self._fan_out("GET", "/builds")
        builds = [
            build
            for _, payload in gathered
            for build in payload.get("builds", [])
        ]
        return self._json(
            200, {"builds": builds, "in_flight": len(builds)}
        )

    async def _aggregate_dashboard(self) -> tuple[int, bytes]:
        return self._json(200, await self._dashboard_payload())

    async def _dashboard_payload(self) -> dict[str, Any]:
        """Merge every worker's ``GET /dashboard`` into one fleet view.

        Workers maintain their aggregates incrementally and every leaf
        under ``totals``/``by_kind``/``by_source``/``by_strategy`` is a
        summable integer, so the fleet dashboard is key-wise addition —
        no rescan anywhere.  ``uptime_seconds`` aggregates by max (the
        oldest surviving worker)."""
        gathered = await self._fan_out("GET", "/dashboard")
        totals: dict[str, int] = {}
        by_kind: dict[str, int] = {}
        by_source: dict[str, int] = {}
        by_strategy: dict[str, dict[str, int]] = {}
        by_slot: dict[str, Any] = {}
        uptime = 0.0
        for handle, payload in gathered:
            for key, value in (payload.get("totals") or {}).items():
                totals[key] = totals.get(key, 0) + int(value)
            for key, value in (payload.get("by_kind") or {}).items():
                by_kind[key] = by_kind.get(key, 0) + int(value)
            for key, value in (payload.get("by_source") or {}).items():
                by_source[key] = by_source.get(key, 0) + int(value)
            for name, row in (payload.get("by_strategy") or {}).items():
                merged = by_strategy.setdefault(name, {})
                for key, value in row.items():
                    merged[key] = merged.get(key, 0) + int(value)
            meta = payload.get("meta") or {}
            uptime = max(uptime, float(meta.get("uptime_seconds", 0.0)))
            by_slot[str(handle.slot)] = payload.get("totals") or {}
        return {
            "totals": totals,
            "by_kind": by_kind,
            "by_source": by_source,
            "by_strategy": by_strategy,
            "by_slot": by_slot,
            "meta": {
                "uptime_seconds": uptime,
                "workers": self.fleet.size,
                "alive": len(self.fleet.live_handles()),
            },
        }

    async def _aggregate_sessions(self) -> tuple[int, bytes]:
        """Merge every worker's ``GET /sessions`` into one fleet view.

        ``live``/``demoted`` sum; ``recoverable`` cannot (each worker
        counts every stored-but-not-local session, including sessions
        live on its peers) — the shared store's total is recovered as
        ``max(live_i + recoverable_i)`` and the fleet-wide recoverable
        count is that total minus everything live anywhere."""
        gathered = await self._fan_out("GET", "/sessions")
        sessions = [
            entry
            for _, payload in gathered
            for entry in payload.get("sessions", [])
        ]
        live = sum(p.get("live", 0) for _, p in gathered)
        stored_total = max(
            (
                p.get("live", 0) + p.get("recoverable", 0)
                for _, p in gathered
            ),
            default=0,
        )
        return self._json(
            200,
            {
                "sessions": sessions,
                "live": live,
                "demoted": sum(p.get("demoted", 0) for _, p in gathered),
                "recoverable": max(0, stored_total - live),
            },
        )

    # --- stream proxying -----------------------------------------------------

    def _stream_request(self, handle: WorkerHandle, path: str) -> bytes:
        """The upstream GET for a stream subscription — a dedicated,
        non-pooled connection (``Connection: close``): a stream owns
        its socket for its whole life, so pooling gains nothing and a
        mid-stream death must kill exactly one subscription."""
        return (
            f"GET {path} HTTP/1.1\r\n"
            f"Host: {self.fleet.config.host}:{handle.port}\r\n"
            f"Content-Length: 0\r\n"
            f"Connection: close\r\n"
            f"\r\n"
        ).encode("ascii")

    @staticmethod
    async def _read_response_head(
        reader,
    ) -> tuple[int, dict[str, str]]:
        line = await reader.readline()
        if not line:
            raise asyncio.IncompleteReadError(b"", None)
        status = int(line.split()[1])
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return status, headers

    @staticmethod
    async def _read_chunk(reader) -> bytes | None:
        """One complete HTTP chunk payload; ``None`` on the terminal
        0-chunk.  Reading whole chunks (and re-emitting them whole) is
        what makes the proxy frame-atomic: a worker death between
        chunks loses nothing, a death *mid*-chunk raises here and the
        partial frame is dropped instead of forwarded."""
        size_line = await reader.readline()
        if not size_line:
            raise asyncio.IncompleteReadError(b"", None)
        size = int(size_line.strip().split(b";")[0], 16)
        if size == 0:
            await reader.readline()  # trailing CRLF of the last chunk
            return None
        payload = await reader.readexactly(size)
        await reader.readexactly(2)  # chunk-terminating CRLF
        return payload

    async def _open_session_stream(self, session_id: str, path: str):
        """Connect to the session's worker and read the response head,
        failing over (with an override, like any session request) when
        the home worker is unreachable.  Subscribing is idempotent, so
        retrying on a survivor is always safe — unlike a mutating
        request, a subscription that half-landed on a dead worker has
        no effect a client could observe."""
        slot, handle = self._home_handle(session_id)
        tried_failover = False
        while True:
            if handle is None:
                survivor = self._pick_live(exclude=slot)
                if survivor is None:
                    return None
                self.overrides[session_id] = survivor.slot
                self.failovers_total += 1
                handle = survivor
                tried_failover = True
            try:
                reader, writer = await asyncio.open_connection(
                    self.fleet.config.host, handle.port
                )
            except OSError:
                reader = writer = None
            if reader is not None:
                try:
                    writer.write(self._stream_request(handle, path))
                    await writer.drain()
                    status, headers = await self._read_response_head(
                        reader
                    )
                    return handle, reader, writer, status, headers
                except (
                    OSError,
                    asyncio.IncompleteReadError,
                    ValueError,
                ):
                    writer.close()
            self.unavailable_total += 1
            if tried_failover:
                return None
            slot, handle = handle.slot, None

    def _reconnect_frame(
        self, topic: str, slot: int, **extra: Any
    ) -> bytes:
        """The SSE event a client sees instead of a hang when its
        stream's worker dies: explicitly retryable — resubscribe and
        the router fails the new subscription over to a survivor."""
        return sse_frame(
            {
                "event": "reconnect",
                "topic": topic,
                "seq": 0,
                "retryable": True,
                "reason": "worker_unavailable",
                "slot": slot,
                **extra,
            }
        )

    async def _proxy_session_stream(
        self, writer, session_id: str, path: str
    ) -> None:
        """``GET /sessions/{id}/stream``: forward the worker's SSE
        stream chunk-by-chunk; on mid-stream worker death emit a
        ``reconnect`` event and a clean end-of-stream."""
        opened = await self._open_session_stream(session_id, path)
        if opened is None:
            writer.write(self._raw_response(*self._unavailable()))
            await writer.drain()
            return
        handle, up_reader, up_writer, status, headers = opened
        try:
            chunked = (
                headers.get("transfer-encoding", "").lower() == "chunked"
            )
            if not chunked:
                # Not a stream (e.g. a 404 for an unknown session):
                # relay the JSON error as an ordinary response.
                length = int(headers.get("content-length", "0") or "0")
                body = (
                    await up_reader.readexactly(length) if length else b""
                )
                writer.write(self._raw_response(status, body))
                await writer.drain()
                return
            self.proxied_total += 1
            writer.write(_STREAM_HEAD)
            await writer.drain()
            while True:
                try:
                    payload = await self._read_chunk(up_reader)
                except (
                    OSError,
                    asyncio.IncompleteReadError,
                    ValueError,
                ):
                    # Worker died mid-stream (SIGKILL, crash): a clean
                    # retryable event, then a proper end-of-stream —
                    # the client resubscribes and lands on a survivor.
                    self.unavailable_total += 1
                    writer.write(
                        _chunk(
                            self._reconnect_frame(
                                session_id,
                                handle.slot,
                                session_id=session_id,
                            )
                        )
                        + b"0\r\n\r\n"
                    )
                    await writer.drain()
                    return
                if payload is None:
                    writer.write(b"0\r\n\r\n")
                    await writer.drain()
                    return
                writer.write(_chunk(payload))
                await writer.drain()
        except (
            ConnectionResetError,
            BrokenPipeError,
            OSError,
            asyncio.CancelledError,
        ):
            pass  # client went away, or router shutdown
        finally:
            up_writer.close()

    async def _client_write(self, writer, lock, data: bytes) -> None:
        try:
            async with lock:
                writer.write(data)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError) as exc:
            raise _ClientGone() from exc

    async def _proxy_service_stream(self, writer) -> None:
        """``GET /events/stream``: multiplex every worker's service
        feed into one client stream.  One pump task per slot forwards
        chunks under a shared write lock; a dead slot's pump emits a
        ``reconnect`` event and reattaches once the supervisor has
        respawned the worker, so one subscription observes the whole
        fleet across failovers."""
        try:
            writer.write(_STREAM_HEAD)
            writer.write(
                _chunk(
                    sse_frame(
                        {
                            "event": "hello",
                            "topic": SERVICE_FEED,
                            "seq": 0,
                            "dashboard": await self._dashboard_payload(),
                        }
                    )
                )
            )
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            return
        lock = asyncio.Lock()
        stop = asyncio.Event()
        pumps = [
            asyncio.ensure_future(
                self._pump_service_slot(slot, writer, lock, stop)
            )
            for slot in range(self.fleet.size)
        ]
        try:
            await stop.wait()
        finally:
            for pump in pumps:
                pump.cancel()
            await asyncio.gather(*pumps, return_exceptions=True)

    async def _pump_service_slot(
        self, slot: int, writer, lock, stop
    ) -> None:
        """Forward one slot's service feed until the client goes away;
        across worker deaths: reconnect event → wait for respawn →
        fresh subscription (whose ``hello`` carries the respawned
        worker's dashboard snapshot, so the client re-baselines)."""
        try:
            while not stop.is_set():
                handle = self.fleet.alive(slot)
                if handle is None:
                    await asyncio.sleep(_REATTACH_INTERVAL)
                    continue
                try:
                    up_reader, up_writer = await asyncio.open_connection(
                        self.fleet.config.host, handle.port
                    )
                except OSError:
                    await asyncio.sleep(_REATTACH_INTERVAL)
                    continue
                try:
                    up_writer.write(
                        self._stream_request(handle, "/events/stream")
                    )
                    await up_writer.drain()
                    status, headers = await self._read_response_head(
                        up_reader
                    )
                    if (
                        status != 200
                        or headers.get("transfer-encoding", "").lower()
                        != "chunked"
                    ):
                        await asyncio.sleep(_REATTACH_INTERVAL)
                        continue
                    while True:
                        payload = await self._read_chunk(up_reader)
                        if payload is None:
                            break  # worker closed cleanly: reattach
                        await self._client_write(
                            writer, lock, _chunk(payload)
                        )
                except (
                    OSError,
                    asyncio.IncompleteReadError,
                    ValueError,
                ):
                    await self._client_write(
                        writer,
                        lock,
                        _chunk(
                            self._reconnect_frame(SERVICE_FEED, slot)
                        ),
                    )
                    await asyncio.sleep(_REATTACH_INTERVAL)
                finally:
                    up_writer.close()
        except _ClientGone:
            stop.set()
        except asyncio.CancelledError:
            pass

    # --- rebalance and drain -------------------------------------------------

    async def _rebalance(self, replacement: WorkerHandle) -> None:
        """A slot respawned: send its strayed sessions home.

        Each survivor demotes the sessions it was covering (checkpoint,
        flush, lease release); the overrides are cleared, so the next
        touch rehydrates each session on the respawned home slot."""
        slot = replacement.slot
        strayed: dict[int, list[str]] = {}
        for session_id, covering in self.overrides.items():
            if self.slot_of(session_id) == slot and covering != slot:
                strayed.setdefault(covering, []).append(session_id)
        for covering, session_ids in strayed.items():
            holder = self.fleet.alive(covering)
            if holder is None:
                # The covering worker died as well; its leases expire
                # on their own and the home slot takes the sessions
                # over on next touch — clearing the overrides is
                # still correct.
                cleared = session_ids
            else:
                try:
                    status, body = await self.proxy_json(
                        holder,
                        "POST",
                        "/control/demote",
                        {"session_ids": session_ids},
                    )
                except WorkerUnavailable:
                    cleared = session_ids
                else:
                    if status >= 400:
                        continue
                    # Only the sessions the holder actually demoted
                    # (checkpointed, flushed, lease released) go home;
                    # a skipped one is mid-rehydration on the holder —
                    # clearing its override now would point the home
                    # slot at a lease the holder is actively renewing.
                    cleared = json.loads(body).get("demoted", [])
            for session_id in cleared:
                self.overrides.pop(session_id, None)
                self.rebalanced_total += 1

    async def drain(self) -> dict[str, Any]:
        """Ask every live worker to demote all sessions and release
        all leases (the graceful-shutdown barrier)."""
        demoted: dict[str, list[str]] = {}
        for handle in self.fleet.live_handles():
            try:
                status, body = await self.proxy_json(
                    handle, "POST", "/control/drain"
                )
            except WorkerUnavailable:
                continue
            if status < 400:
                demoted[str(handle.slot)] = json.loads(body).get(
                    "demoted", []
                )
        return demoted

    # --- HTTP front ----------------------------------------------------------

    @staticmethod
    def _json(status: int, payload: dict[str, Any]) -> tuple[int, bytes]:
        return status, json.dumps(payload).encode("utf-8")

    def _unavailable(self) -> tuple[int, bytes]:
        return self._json(
            503,
            {
                "error": "worker_unavailable",
                "message": (
                    "the session's worker is restarting; retry shortly"
                ),
            },
        )

    def _no_workers(self) -> tuple[int, bytes]:
        return self._json(
            503,
            {
                "error": "no_workers",
                "message": "no live worker processes",
            },
        )

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except (
                    asyncio.IncompleteReadError,
                    ConnectionResetError,
                    asyncio.CancelledError,
                ):
                    break
                except (ValueError, BadRequest) as exc:
                    writer.write(
                        _response_bytes(
                            400,
                            {
                                "error": "bad_request",
                                "message": str(exc),
                            },
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                method, path, body, keep_alive, _headers = request
                parts = [p for p in path.split("/") if p]
                if method == "GET" and (
                    parts == ["events", "stream"]
                    or (
                        len(parts) == 3
                        and parts[0] == "sessions"
                        and parts[2] == "stream"
                    )
                ):
                    # Streaming upgrade: the connection belongs to the
                    # proxied stream until it ends, never reused.
                    try:
                        if parts == ["events", "stream"]:
                            await self._proxy_service_stream(writer)
                        else:
                            await self._proxy_session_stream(
                                writer, parts[1], path
                            )
                    except asyncio.CancelledError:
                        pass
                    break
                try:
                    status, response = await self.dispatch_raw(
                        method, path, body
                    )
                except asyncio.CancelledError:
                    break
                except Exception as exc:  # noqa: BLE001 - barrier
                    status, response = self._json(
                        500,
                        {
                            "error": "internal_error",
                            "message": str(exc),
                        },
                    )
                writer.write(self._raw_response(status, response))
                await writer.drain()
                if not keep_alive:
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    @staticmethod
    def _raw_response(status: int, body: bytes) -> bytes:
        from .app import _REASONS

        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: keep-alive\r\n"
            f"\r\n"
        ).encode("ascii")
        return head + body

    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> asyncio.base_events.Server:
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        return self._server

    async def shutdown(self, drain: bool = False) -> None:
        """Stop serving; with ``drain`` every worker checkpoints,
        demotes and releases its sessions before the fleet is
        terminated (SIGTERM semantics for the whole deployment)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(
                *self._connections, return_exceptions=True
            )
        if drain:
            await self.drain()
        for pool in self._pools.values():
            for _, pooled_writer in pool:
                pooled_writer.close()
        self._pools.clear()
        await self.fleet.terminate()
