"""Pluggable row sources for signature-index construction.

The :class:`~repro.core.index_build.IndexBuilder` never touches concrete
storage: it consumes a :class:`SignatureSource`, which answers "where do
the rows of ``R`` and ``P`` come from?".  Three backends cover the
spectrum from unit tests to products far beyond memory:

* :class:`InstanceSource` — an in-memory
  :class:`~repro.relational.relation.Instance` (the default; every other
  entry point funnels through :func:`as_signature_source`);
* :class:`CsvSource` — header-first CSV files or text, with the left
  relation *streamed* in blocks: rows of ``R`` are read, de-duplicated
  and handed to the builder a shard at a time, so the build's array
  working set (encoded codes, packed signature words) is bounded by the
  block size rather than ``|R|`` and the product ``R × P`` is never
  materialised anywhere — only the raw distinct rows themselves are
  retained (for exact de-duplication, and to hand the finished index
  its instance without re-parsing the file);
* :class:`SqliteSource` — tables in a SQLite database, with the
  per-attribute equality tests *pushed down* into SQL
  (:func:`~repro.relational.sqlite_backend.sql_signature_shard`): only
  the distinct signatures cross the database boundary.

Every source reproduces the exact set semantics of
:class:`~repro.relational.relation.Relation` — duplicate rows dropped,
first-occurrence order kept — so index builds are bit-for-bit identical
across backends (property-tested in
``tests/properties/test_index_build.py``).
"""

from __future__ import annotations

import io
import sqlite3
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Any, Callable, Iterator, TextIO

from .csv_io import iter_csv_rows
from .relation import Instance, Relation, Row
from .schema import RelationSchema
from .sqlite_backend import (
    distinct_row_count,
    load_relation_ordered,
    make_dedup_table,
    sql_signature_shard,
    sqlite_quote,
)

__all__ = [
    "SignatureSource",
    "InstanceSource",
    "CsvSource",
    "SqliteSource",
    "as_signature_source",
]

LeftBlock = tuple[int, tuple[Row, ...]]


class SignatureSource(ABC):
    """Abstract supplier of the two relations of an index build.

    The builder's contract:

    * :meth:`right_rows` returns all of ``P`` (the side every shard
      needs in full — it is the smaller side in the paper's workloads);
    * :meth:`iter_left_blocks` yields ``R`` in canonical order as
      ``(start_index, rows)`` blocks, de-duplicated globally, so block
      ``k`` starts where block ``k-1`` stopped;
    * :meth:`instance` materialises the full
      :class:`~repro.relational.relation.Instance` — called once, after
      the signatures are computed, because the finished
      :class:`~repro.core.signatures.SignatureIndex` needs Ω and the
      relations for predicate decoding;
    * sources with :attr:`supports_pushdown` compute whole shard
      histograms natively via :meth:`shard_signatures` and are never
      asked for raw rows.
    """

    #: True when :meth:`shard_signatures` evaluates shards natively
    #: (e.g. inside SQL) instead of handing rows to the packed kernel.
    supports_pushdown: bool = False

    @property
    @abstractmethod
    def left_schema(self) -> RelationSchema:
        """Schema of ``R``."""

    @property
    @abstractmethod
    def right_schema(self) -> RelationSchema:
        """Schema of ``P``."""

    @abstractmethod
    def instance(self) -> Instance:
        """The fully materialised instance (cached by implementations)."""

    def left_count(self) -> int | None:
        """``|R|`` after de-duplication, or ``None`` when unknown until
        the stream is drained (pure streaming sources)."""
        return None

    @abstractmethod
    def right_rows(self) -> tuple[Row, ...]:
        """All rows of ``P``, de-duplicated, first-occurrence order."""

    @abstractmethod
    def iter_left_blocks(
        self, block_rows: int | None
    ) -> Iterator[LeftBlock]:
        """Yield ``(start_index, rows)`` blocks of de-duplicated ``R``
        rows in canonical order; ``None`` means one block with all rows.
        Empty blocks are never yielded."""

    def shard_signatures(self, start: int, stop: int) -> dict:
        """Push-down hook: ``{mask: (count, first_ordinal)}`` for left
        rows ``start ≤ ord < stop`` against all of ``P``."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support signature push-down"
        )

    def end_build(self) -> None:
        """Called by the builder when a build finishes (success or
        failure): release any per-build scratch state.  Default: none."""

    def describe(self) -> dict[str, Any]:
        """A JSON-able summary for build status and benchmarks."""
        return {
            "kind": type(self).__name__,
            "left": self.left_schema.name,
            "right": self.right_schema.name,
        }


def _blocks_of(
    rows: tuple[Row, ...], block_rows: int | None
) -> Iterator[LeftBlock]:
    """Slice materialised rows into ``(start, rows)`` blocks (``None`` =
    one block, empty input = no blocks) — the shared tail of every
    random-access source's :meth:`iter_left_blocks`."""
    if not rows:
        return
    if block_rows is None:
        yield 0, rows
        return
    for start in range(0, len(rows), block_rows):
        yield start, rows[start : start + block_rows]


class InstanceSource(SignatureSource):
    """A source over an already-materialised in-memory instance."""

    def __init__(self, instance: Instance):
        self._instance = instance

    @property
    def left_schema(self) -> RelationSchema:
        return self._instance.left.schema

    @property
    def right_schema(self) -> RelationSchema:
        return self._instance.right.schema

    def instance(self) -> Instance:
        return self._instance

    def left_count(self) -> int:
        return len(self._instance.left)

    def right_rows(self) -> tuple[Row, ...]:
        return self._instance.right.rows

    def iter_left_blocks(
        self, block_rows: int | None
    ) -> Iterator[LeftBlock]:
        return _blocks_of(self._instance.left.rows, block_rows)


class CsvSource(SignatureSource):
    """A source streaming the left relation from header-first CSV.

    ``P`` is read (and cached) in full; ``R`` is re-opened and streamed
    block by block, de-duplicated on the fly.  The build's heavy
    allocations — encoded code matrices and packed signature words —
    only ever cover one block, which is what keeps ≫10⁷-tuple products
    buildable without the monolithic path's full-product working set
    (the raw distinct row tuples are retained: exact de-duplication
    needs them, and a fully drained stream doubles as the row cache so
    :meth:`instance` never re-parses the file).  Values stay strings
    (CSV carries no types; the type-inferring reader needs whole
    columns and therefore cannot stream), matching an untyped
    :func:`~repro.relational.csv_io.read_csv`.
    """

    def __init__(
        self,
        left_path: str | Path,
        right_path: str | Path,
        left_name: str | None = None,
        right_name: str | None = None,
    ):
        left_path, right_path = Path(left_path), Path(right_path)
        self._init(
            lambda: left_path.open(newline=""),
            lambda: right_path.open(newline=""),
            left_name if left_name is not None else left_path.stem,
            right_name if right_name is not None else right_path.stem,
            str(left_path),
            str(right_path),
        )

    @classmethod
    def from_text(
        cls,
        left_text: str,
        right_text: str,
        left_name: str = "left",
        right_name: str = "right",
    ) -> "CsvSource":
        """A source over in-memory CSV text (service uploads, tests)."""
        source = cls.__new__(cls)
        source._init(
            lambda: io.StringIO(left_text, newline=""),
            lambda: io.StringIO(right_text, newline=""),
            left_name,
            right_name,
            f"CSV text ({left_name})",
            f"CSV text ({right_name})",
        )
        return source

    def _init(
        self,
        open_left: Callable[[], TextIO],
        open_right: Callable[[], TextIO],
        left_name: str,
        right_name: str,
        left_label: str,
        right_label: str,
    ) -> None:
        self._open_left = open_left
        self._open_right = open_right
        self._left_name = left_name
        self._right_name = right_name
        self._left_label = left_label
        self._right_label = right_label
        self._left_schema: RelationSchema | None = None
        self._left_rows: tuple[Row, ...] | None = None
        self._right: Relation | None = None
        self._instance: Instance | None = None

    @property
    def left_schema(self) -> RelationSchema:
        if self._left_schema is None:
            with self._open_left() as handle:
                header = next(iter_csv_rows(handle, self._left_label))
            self._left_schema = RelationSchema(self._left_name, header)
        return self._left_schema

    def left_count(self) -> int | None:
        # Unknown until the stream has been drained once.
        return None if self._left_rows is None else len(self._left_rows)

    @property
    def right_schema(self) -> RelationSchema:
        return self._right_relation().schema

    def _right_relation(self) -> Relation:
        if self._right is None:
            with self._open_right() as handle:
                rows = iter_csv_rows(handle, self._right_label)
                header = next(rows)
                self._right = Relation(
                    RelationSchema(self._right_name, header), rows
                )
        return self._right

    def right_rows(self) -> tuple[Row, ...]:
        return self._right_relation().rows

    def iter_left_blocks(
        self, block_rows: int | None
    ) -> Iterator[LeftBlock]:
        if self._left_rows is not None:
            yield from _blocks_of(self._left_rows, block_rows)
            return
        seen: set[Row] = set()
        ordered: list[Row] = []
        block: list[Row] = []
        start = 0
        with self._open_left() as handle:
            rows = iter_csv_rows(handle, self._left_label)
            header = next(rows)
            if self._left_schema is None:
                self._left_schema = RelationSchema(self._left_name, header)
            for row in rows:
                if row in seen:
                    continue
                seen.add(row)
                ordered.append(row)
                block.append(row)
                if block_rows is not None and len(block) >= block_rows:
                    yield start, tuple(block)
                    start += len(block)
                    block = []
            if block:
                yield start, tuple(block)
        # The stream was fully drained: the dedup set already pinned
        # every distinct row, so keeping them (in order) is free and
        # spares instance() a second parse of the file.
        self._left_rows = tuple(ordered)

    def instance(self) -> Instance:
        if self._instance is None:
            if self._left_rows is None:
                for _ in self.iter_left_blocks(None):
                    pass
            left = Relation(self.left_schema, self._left_rows)
            self._instance = Instance(left, self._right_relation())
        return self._instance


class SqliteSource(SignatureSource):
    """A source evaluating signature shards inside a SQLite database.

    The per-attribute equality tests of ``T`` are pushed into SQL
    (CASE-WHEN bit words grouped over the cross join), so a shard build
    moves only ``{signature: (count, first ordinal)}`` across the
    database boundary.  Note SQLite connections are bound to their
    creating thread by default — shard queries run sequentially in the
    builder thread, which is also the honest layout for an embedded
    engine that brings its own native loops.
    """

    supports_pushdown = True

    def __init__(
        self,
        conn: sqlite3.Connection,
        left_table: str,
        right_table: str,
        left_attributes: list[str] | None = None,
        right_attributes: list[str] | None = None,
    ):
        self._conn = conn
        self._left_table = left_table
        self._right_table = right_table
        self._left_schema_ = RelationSchema(
            left_table, self._resolve_attributes(left_table, left_attributes)
        )
        self._right_schema_ = RelationSchema(
            right_table,
            self._resolve_attributes(right_table, right_attributes),
        )
        self._instance: Instance | None = None
        self._left_count: int | None = None
        self._dedup_sources: tuple[str, str] | None = None
        # The push-down's dedup ordinals are defined over MIN(rowid);
        # views and WITHOUT ROWID tables have none, and an explicit
        # column named rowid/_rowid_/oid *shadows* the implicit one, so
        # all of those take the kernel path over the loaded instance
        # instead of crashing (or silently mis-ordering) mid-build.
        shadowed = {"rowid", "_rowid_", "oid"}
        self.supports_pushdown = (
            not any(
                attribute.name.lower() in shadowed
                for schema in (self._left_schema_, self._right_schema_)
                for attribute in schema
            )
            and self._has_rowid(left_table)
            and self._has_rowid(right_table)
        )

    def _has_rowid(self, table: str) -> bool:
        try:
            row = self._conn.execute(
                f"SELECT rowid FROM {sqlite_quote(table)} LIMIT 1"
            ).fetchone()
        except sqlite3.OperationalError:
            return False  # WITHOUT ROWID tables: no such column
        # Views resolve rowid to NULL instead of erroring — NULL
        # ordinals would make the dedup order arbitrary, so they fall
        # back too.  An empty table has nothing to mis-order.
        return row is None or row[0] is not None

    def _resolve_attributes(
        self, table: str, attributes: list[str] | None
    ) -> list[str]:
        if attributes is not None:
            return list(attributes)
        cursor = self._conn.execute(
            f"SELECT * FROM {sqlite_quote(table)} LIMIT 0"
        )
        return [description[0] for description in cursor.description]

    @property
    def left_schema(self) -> RelationSchema:
        return self._left_schema_

    @property
    def right_schema(self) -> RelationSchema:
        return self._right_schema_

    def _attribute_names(self, schema: RelationSchema) -> list[str]:
        return [attribute.name for attribute in schema]

    def instance(self) -> Instance:
        if self._instance is None:
            self._instance = Instance(
                load_relation_ordered(
                    self._conn,
                    self._left_table,
                    self._attribute_names(self._left_schema_),
                ),
                load_relation_ordered(
                    self._conn,
                    self._right_table,
                    self._attribute_names(self._right_schema_),
                ),
            )
        return self._instance

    def left_count(self) -> int:
        if self._left_count is None:
            self._left_count = distinct_row_count(
                self._conn,
                self._left_table,
                self._attribute_names(self._left_schema_),
            )
        return self._left_count

    def right_rows(self) -> tuple[Row, ...]:
        return self.instance().right.rows

    def iter_left_blocks(
        self, block_rows: int | None
    ) -> Iterator[LeftBlock]:
        # Kernel-path fallback (used when push-down is disabled, e.g. to
        # cross-validate the SQL path against the packed kernel).
        return _blocks_of(self.instance().left.rows, block_rows)

    def end_build(self) -> None:
        """Drop the per-build TEMP dedup tables — they each hold a full
        materialised copy of a relation, and a long-lived connection
        creating fresh sources per rebuild must not accumulate them."""
        if self._dedup_sources is not None:
            for quoted in self._dedup_sources:
                self._conn.execute(f"DROP TABLE IF EXISTS temp.{quoted}")
            self._dedup_sources = None

    def _dedup_tables(self) -> tuple[str, str]:
        """Materialise the first-occurrence ordinals of both tables once
        per *build* (TEMP tables, dropped again by :meth:`end_build`) so
        shard queries range-scan them instead of re-sorting the whole
        table per shard.  The data is assumed immutable for the source's
        lifetime — the same contract every backend already relies on."""
        if self._dedup_sources is None:
            token = f"{id(self):x}"
            self._dedup_sources = (
                make_dedup_table(
                    self._conn,
                    self._left_table,
                    self._attribute_names(self._left_schema_),
                    f"repro_dedup_l_{token}",
                ),
                make_dedup_table(
                    self._conn,
                    self._right_table,
                    self._attribute_names(self._right_schema_),
                    f"repro_dedup_r_{token}",
                ),
            )
        return self._dedup_sources

    def shard_signatures(self, start: int, stop: int) -> dict:
        left_source, right_source = self._dedup_tables()
        return sql_signature_shard(
            self._conn,
            self._left_table,
            self._right_table,
            self._attribute_names(self._left_schema_),
            self._attribute_names(self._right_schema_),
            start,
            stop,
            len(self.right_rows()),
            left_source=left_source,
            right_source=right_source,
        )


def as_signature_source(
    data: "SignatureSource | Instance",
) -> SignatureSource:
    """Coerce an :class:`Instance` (or pass a source through) — the
    builder's universal front door."""
    if isinstance(data, SignatureSource):
        return data
    if isinstance(data, Instance):
        return InstanceSource(data)
    raise TypeError(
        f"expected an Instance or SignatureSource, got {type(data).__name__}"
    )
