"""Relational schema model.

The paper assumes two relations ``R`` and ``P`` with *disjoint* attribute
sets and no further schema knowledge (no types, no integrity constraints).
We qualify every attribute with its relation name so that attribute sets of
distinct relations are disjoint by construction, which lets the same
attribute name (say ``partkey``) appear in both relations of a TPC-H join
without ambiguity.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Iterator

__all__ = ["Attribute", "RelationSchema", "SchemaError"]

_IDENTIFIER = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


class SchemaError(ValueError):
    """Raised for malformed schemas (bad names, duplicates, arity mismatch)."""


@dataclass(frozen=True, slots=True)
class Attribute:
    """A relation-qualified attribute, e.g. ``Flight.Airline``.

    Two attributes are equal iff both the relation name and the attribute
    name agree, so attribute sets of two differently named relations are
    disjoint, as required by the paper's setting.
    """

    relation: str
    name: str

    def __post_init__(self) -> None:
        if not _IDENTIFIER.match(self.relation):
            raise SchemaError(f"invalid relation name: {self.relation!r}")
        if not _IDENTIFIER.match(self.name):
            raise SchemaError(f"invalid attribute name: {self.name!r}")

    def __str__(self) -> str:
        return f"{self.relation}.{self.name}"

    @classmethod
    def parse(cls, text: str) -> "Attribute":
        """Parse ``"Rel.attr"`` into an :class:`Attribute`.

        >>> Attribute.parse("Flight.Airline")
        Attribute(relation='Flight', name='Airline')
        """
        relation, sep, name = text.partition(".")
        if not sep:
            raise SchemaError(
                f"expected 'Relation.attribute', got {text!r}"
            )
        return cls(relation.strip(), name.strip())


class RelationSchema:
    """An ordered list of attributes belonging to one named relation.

    The order matters: tuple values are stored positionally, and the
    position of an attribute is used throughout the signature machinery.
    """

    __slots__ = ("_name", "_attributes", "_positions")

    def __init__(self, name: str, attribute_names: Iterable[str]):
        if not _IDENTIFIER.match(name):
            raise SchemaError(f"invalid relation name: {name!r}")
        self._name = name
        self._attributes = tuple(
            Attribute(name, attr) for attr in attribute_names
        )
        if not self._attributes:
            raise SchemaError(f"relation {name!r} must have attributes")
        self._positions = {
            attr: pos for pos, attr in enumerate(self._attributes)
        }
        if len(self._positions) != len(self._attributes):
            raise SchemaError(f"duplicate attribute in relation {name!r}")

    @property
    def name(self) -> str:
        """The relation name."""
        return self._name

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        """The attributes, in declaration order."""
        return self._attributes

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self._attributes)

    def position(self, attribute: Attribute | str) -> int:
        """Return the 0-based position of ``attribute`` in this schema.

        Accepts an :class:`Attribute` or a bare attribute name.
        """
        if isinstance(attribute, str):
            attribute = Attribute(self._name, attribute)
        try:
            return self._positions[attribute]
        except KeyError:
            raise SchemaError(
                f"{attribute} is not an attribute of {self._name}"
            ) from None

    def attribute(self, name: str) -> Attribute:
        """Return the attribute of this relation called ``name``."""
        attr = Attribute(self._name, name)
        if attr not in self._positions:
            raise SchemaError(f"{self._name} has no attribute {name!r}")
        return attr

    def __contains__(self, attribute: object) -> bool:
        return attribute in self._positions

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelationSchema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        names = ", ".join(attr.name for attr in self._attributes)
        return f"RelationSchema({self._name!r}, [{names}])"

    def is_disjoint_from(self, other: "RelationSchema") -> bool:
        """True iff the two attribute sets are disjoint (paper requirement)."""
        return not set(self._attributes) & set(other._attributes)
