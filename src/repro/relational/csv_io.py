"""CSV import/export for relations.

CSV has no type information, so values round-trip as strings unless the
caller opts into ``infer_types=True``, which converts columns that are
uniformly integral (or uniformly float-like) to numbers.  The equality
semantics of the inference algorithms are type-sensitive (``"1" != 1``),
hence the explicit opt-in.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Hashable

from .relation import Relation
from .schema import RelationSchema

__all__ = ["write_csv", "read_csv", "read_csv_text", "iter_csv_rows"]


def write_csv(relation: Relation, path: str | Path) -> None:
    """Write a relation (header + rows) to ``path``."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([attr.name for attr in relation.schema])
        writer.writerows(relation.rows)


def _convert_column(values: list[str]) -> list[Hashable]:
    """Convert a string column to int/float when every value parses."""
    try:
        return [int(v) for v in values]
    except ValueError:
        pass
    try:
        return [float(v) for v in values]
    except ValueError:
        return list(values)


def iter_csv_rows(handle, source: str = "CSV"):
    """Stream validated rows from a header-first CSV handle.

    The first yielded tuple is the header; every subsequent tuple is one
    data row.  Blank physical rows are skipped, and a ragged row raises
    :class:`ValueError` with its physical line number
    (``reader.line_num`` tracks physical lines, so error positions stay
    right across blank lines and quoted fields containing newlines).

    This is the streaming entry point used by
    :class:`~repro.relational.source.CsvSource` — rows are yielded one
    at a time and never accumulated here, so index builds over huge CSV
    files keep memory bounded by the consumer's block size.
    """
    reader = csv.reader(handle)
    try:
        header = tuple(next(reader))
    except StopIteration:
        raise ValueError(f"{source} is empty; expected a header row")
    yield header
    width = len(header)
    for row in reader:
        if not row:
            continue
        if len(row) != width:
            raise ValueError(
                f"{source} line {reader.line_num}: expected {width} "
                f"columns, got {len(row)}"
            )
        yield tuple(row)


def _read_csv_handle(
    handle, name: str, source: str, infer_types: bool
) -> Relation:
    rows = iter_csv_rows(handle, source)
    header = next(rows)
    schema = RelationSchema(name, header)
    raw_rows = list(rows)
    if not infer_types or not raw_rows:
        return Relation(schema, raw_rows)
    columns = [
        _convert_column([row[i] for row in raw_rows])
        for i in range(len(header))
    ]
    typed_rows = list(zip(*columns))
    return Relation(schema, typed_rows)


def read_csv(
    path: str | Path,
    relation_name: str | None = None,
    infer_types: bool = False,
) -> Relation:
    """Read a relation from a header-first CSV file.

    ``relation_name`` defaults to the file stem.
    """
    path = Path(path)
    name = relation_name if relation_name is not None else path.stem
    with path.open(newline="") as handle:
        return _read_csv_handle(handle, name, str(path), infer_types)


def read_csv_text(
    text: str,
    relation_name: str,
    infer_types: bool = False,
) -> Relation:
    """Read a relation from in-memory CSV text (header first).

    Same semantics as :func:`read_csv`; used by the service layer for
    uploaded relations.
    """
    return _read_csv_handle(
        io.StringIO(text, newline=""), relation_name, "CSV text", infer_types
    )
