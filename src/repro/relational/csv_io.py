"""CSV import/export for relations.

CSV has no type information, so values round-trip as strings unless the
caller opts into ``infer_types=True``, which converts columns that are
uniformly integral (or uniformly float-like) to numbers.  The equality
semantics of the inference algorithms are type-sensitive (``"1" != 1``),
hence the explicit opt-in.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Hashable

from .relation import Relation
from .schema import RelationSchema

__all__ = ["write_csv", "read_csv", "read_csv_text"]


def write_csv(relation: Relation, path: str | Path) -> None:
    """Write a relation (header + rows) to ``path``."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([attr.name for attr in relation.schema])
        writer.writerows(relation.rows)


def _convert_column(values: list[str]) -> list[Hashable]:
    """Convert a string column to int/float when every value parses."""
    try:
        return [int(v) for v in values]
    except ValueError:
        pass
    try:
        return [float(v) for v in values]
    except ValueError:
        return list(values)


def _read_csv_handle(
    handle, name: str, source: str, infer_types: bool
) -> Relation:
    reader = csv.reader(handle)
    try:
        header = next(reader)
    except StopIteration:
        raise ValueError(f"{source} is empty; expected a header row")
    # reader.line_num tracks physical lines, so error positions stay
    # right across blank lines and quoted fields containing newlines.
    numbered = [
        (reader.line_num, tuple(row)) for row in reader if row
    ]
    schema = RelationSchema(name, header)
    for line_num, row in numbered:
        if len(row) != len(header):
            raise ValueError(
                f"{source} line {line_num}: expected {len(header)} "
                f"columns, got {len(row)}"
            )
    raw_rows = [row for _, row in numbered]
    if not infer_types or not raw_rows:
        return Relation(schema, raw_rows)
    columns = [
        _convert_column([row[i] for row in raw_rows])
        for i in range(len(header))
    ]
    typed_rows = list(zip(*columns))
    return Relation(schema, typed_rows)


def read_csv(
    path: str | Path,
    relation_name: str | None = None,
    infer_types: bool = False,
) -> Relation:
    """Read a relation from a header-first CSV file.

    ``relation_name`` defaults to the file stem.
    """
    path = Path(path)
    name = relation_name if relation_name is not None else path.stem
    with path.open(newline="") as handle:
        return _read_csv_handle(handle, name, str(path), infer_types)


def read_csv_text(
    text: str,
    relation_name: str,
    infer_types: bool = False,
) -> Relation:
    """Read a relation from in-memory CSV text (header first).

    Same semantics as :func:`read_csv`; used by the service layer for
    uploaded relations.
    """
    return _read_csv_handle(
        io.StringIO(text, newline=""), relation_name, "CSV text", infer_types
    )
