"""Equijoin / semijoin predicates ``θ ⊆ Ω``.

A :class:`JoinPredicate` is an immutable set of attribute pairs
``(A_i, B_j)`` with ``A_i ∈ attrs(R)`` and ``B_j ∈ attrs(P)``.  The paper's
generality order is plain set inclusion: ``θ1`` is *more general* than
``θ2`` iff ``θ1 ⊆ θ2``; the most general predicate is ``∅`` and the most
specific is ``Ω`` itself.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator

from .schema import Attribute, SchemaError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .relation import Instance

__all__ = ["AttributePair", "JoinPredicate"]

AttributePair = tuple[Attribute, Attribute]


class JoinPredicate:
    """An immutable equijoin/semijoin predicate: a set of attribute pairs.

    >>> theta = JoinPredicate.parse("Flight.To = Hotel.City")
    >>> len(theta)
    1
    >>> str(theta)
    'Flight.To = Hotel.City'
    """

    __slots__ = ("_pairs",)

    def __init__(self, pairs: Iterable[AttributePair] = ()):
        frozen = frozenset(pairs)
        for pair in frozen:
            if (
                not isinstance(pair, tuple)
                or len(pair) != 2
                or not all(isinstance(a, Attribute) for a in pair)
            ):
                raise SchemaError(
                    f"join predicate pairs must be (Attribute, Attribute); "
                    f"got {pair!r}"
                )
        self._pairs = frozen

    @classmethod
    def empty(cls) -> "JoinPredicate":
        """The most general predicate ``∅`` (selects everything)."""
        return cls()

    @classmethod
    def parse(cls, text: str) -> "JoinPredicate":
        """Parse ``"R.A = P.B AND R.C = P.D"`` (or ``∧``-separated).

        The empty string parses to the empty predicate.
        """
        text = text.strip()
        if not text:
            return cls.empty()
        pairs = []
        for chunk in text.replace("∧", " AND ").split(" AND "):
            chunk = chunk.strip()
            if not chunk:
                continue
            left, sep, right = chunk.partition("=")
            if not sep:
                raise SchemaError(f"expected 'R.A = P.B' in {chunk!r}")
            pairs.append(
                (Attribute.parse(left), Attribute.parse(right))
            )
        return cls(pairs)

    @property
    def pairs(self) -> frozenset[AttributePair]:
        """The underlying frozen set of attribute pairs."""
        return self._pairs

    def sorted_pairs(self) -> list[AttributePair]:
        """The pairs in a canonical deterministic order."""
        return sorted(
            self._pairs,
            key=lambda p: (p[0].relation, p[0].name, p[1].relation, p[1].name),
        )

    # --- generality order (§2) -------------------------------------------

    def is_more_general_than(self, other: "JoinPredicate") -> bool:
        """``self ⊆ other`` — self selects at least as many tuples."""
        return self._pairs <= other._pairs

    def is_more_specific_than(self, other: "JoinPredicate") -> bool:
        """``other ⊆ self`` — self selects at most as many tuples."""
        return other._pairs <= self._pairs

    # --- set algebra -------------------------------------------------------

    def union(self, other: "JoinPredicate") -> "JoinPredicate":
        """Set union of the two predicates (more specific than both)."""
        return JoinPredicate(self._pairs | other._pairs)

    def intersection(self, other: "JoinPredicate") -> "JoinPredicate":
        """Set intersection (more general than both)."""
        return JoinPredicate(self._pairs & other._pairs)

    def __or__(self, other: "JoinPredicate") -> "JoinPredicate":
        return self.union(other)

    def __and__(self, other: "JoinPredicate") -> "JoinPredicate":
        return self.intersection(other)

    def __le__(self, other: "JoinPredicate") -> bool:
        return self._pairs <= other._pairs

    def __lt__(self, other: "JoinPredicate") -> bool:
        return self._pairs < other._pairs

    def __ge__(self, other: "JoinPredicate") -> bool:
        return self._pairs >= other._pairs

    def __gt__(self, other: "JoinPredicate") -> bool:
        return self._pairs > other._pairs

    # --- validation --------------------------------------------------------

    def validate_for(self, instance: "Instance") -> None:
        """Raise :class:`SchemaError` unless every pair is in Ω of ``instance``."""
        left = set(instance.left.schema.attributes)
        right = set(instance.right.schema.attributes)
        for a, b in self._pairs:
            if a not in left or b not in right:
                raise SchemaError(
                    f"pair ({a}, {b}) is not in Ω = "
                    f"attrs({instance.left.name}) x attrs({instance.right.name})"
                )

    # --- container protocol -------------------------------------------------

    def __contains__(self, pair: object) -> bool:
        return pair in self._pairs

    def __iter__(self) -> Iterator[AttributePair]:
        return iter(self.sorted_pairs())

    def __len__(self) -> int:
        return len(self._pairs)

    def __bool__(self) -> bool:
        return bool(self._pairs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, JoinPredicate):
            return NotImplemented
        return self._pairs == other._pairs

    def __hash__(self) -> int:
        return hash(self._pairs)

    def __str__(self) -> str:
        if not self._pairs:
            return "{}"
        return " AND ".join(f"{a} = {b}" for a, b in self.sorted_pairs())

    def __repr__(self) -> str:
        return f"JoinPredicate({str(self)})"
