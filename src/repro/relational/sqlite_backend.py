"""SQLite execution backend.

The inference algorithms operate on in-memory :class:`Relation` objects,
but a downstream user's data usually lives in a database.  This module
round-trips relations to SQLite tables and evaluates equijoins/semijoins as
SQL, which serves three purposes:

* loading real data into the inference machinery (``load_relation``),
* persisting generated datasets (``store_relation``),
* cross-validating the pure-Python algebra against a real query engine
  (the test suite checks ``algebra.equijoin == sql_equijoin`` on random
  instances).

Values are stored as TEXT/INTEGER/REAL; ``None`` maps to SQL NULL.  SQL
equality over NULL differs from Python ``None == None``, so relations with
``None`` values are rejected at store time — the paper's model has no
nulls.
"""

from __future__ import annotations

import sqlite3
from typing import Iterable

from .predicate import JoinPredicate
from .relation import Instance, Relation, Row
from .schema import RelationSchema

__all__ = [
    "connect_memory",
    "store_relation",
    "load_relation",
    "load_relation_ordered",
    "store_instance",
    "sql_equijoin",
    "sql_semijoin",
    "equijoin_query",
    "semijoin_query",
    "distinct_row_count",
    "make_dedup_table",
    "signature_shard_query",
    "sql_signature_shard",
    "sqlite_quote",
]

#: Ω positions packed per SQL integer column in the signature push-down.
#: SQLite integers are 64-bit *signed*, so stay clear of the sign bit.
SQL_MASK_BITS = 62

#: Quoted name of the generated first-occurrence ordinal column.  The
#: embedded space keeps it outside the schema layer's attribute grammar,
#: so no relation attribute can ever collide with it.
ORD_COLUMN = '"repro ord"'


def connect_memory() -> sqlite3.Connection:
    """A fresh in-memory SQLite database."""
    return sqlite3.connect(":memory:")


def sqlite_quote(identifier: str) -> str:
    """Quote an SQL identifier (relation/attribute names are validated
    against ``[A-Za-z_][A-Za-z0-9_]*`` by the schema layer, so this is
    belt-and-braces).  The one quoting rule of this backend — every
    module touching SQLite identifiers must route through it."""
    return '"' + identifier.replace('"', '""') + '"'


# Internal shorthand; the public name is part of the module contract.
_quote = sqlite_quote


def store_relation(conn: sqlite3.Connection, relation: Relation) -> None:
    """Create a table named after the relation and insert all rows."""
    for row in relation:
        if any(value is None for value in row):
            raise ValueError(
                "relations with NULL values cannot be stored: SQL NULL "
                "equality differs from the paper's equality semantics"
            )
    cols = ", ".join(_quote(a.name) for a in relation.schema)
    conn.execute(f"DROP TABLE IF EXISTS {_quote(relation.name)}")
    conn.execute(f"CREATE TABLE {_quote(relation.name)} ({cols})")
    placeholders = ", ".join("?" for _ in range(relation.arity))
    conn.executemany(
        f"INSERT INTO {_quote(relation.name)} VALUES ({placeholders})",
        relation.rows,
    )
    conn.commit()


def load_relation(
    conn: sqlite3.Connection,
    table: str,
    attributes: Iterable[str] | None = None,
    limit: int | None = None,
) -> Relation:
    """Load a SQLite table (optionally a column subset / row cap)."""
    if attributes is None:
        cursor = conn.execute(f"SELECT * FROM {_quote(table)} LIMIT 0")
        attributes = [description[0] for description in cursor.description]
    attributes = list(attributes)
    cols = ", ".join(_quote(a) for a in attributes)
    sql = f"SELECT {cols} FROM {_quote(table)}"
    if limit is not None:
        sql += f" LIMIT {int(limit)}"
    rows = conn.execute(sql).fetchall()
    return Relation(RelationSchema(table, attributes), rows)


def load_relation_ordered(
    conn: sqlite3.Connection,
    table: str,
    attributes: Iterable[str] | None = None,
) -> Relation:
    """Like :func:`load_relation` but in guaranteed ``rowid`` order.

    Plain ``SELECT *`` order is an SQLite implementation detail;
    ordering by ``rowid`` pins first-occurrence order, which is what
    :class:`~repro.relational.relation.Relation` keeps after
    de-duplication and what the signature push-down's row ordinals are
    defined over.  Falls back to the unordered load for tables without
    a ``rowid`` (``WITHOUT ROWID`` tables, views).
    """
    if attributes is None:
        cursor = conn.execute(f"SELECT * FROM {_quote(table)} LIMIT 0")
        attributes = [description[0] for description in cursor.description]
    attributes = list(attributes)
    cols = ", ".join(_quote(a) for a in attributes)
    try:
        rows = conn.execute(
            f"SELECT {cols} FROM {_quote(table)} ORDER BY rowid"
        ).fetchall()
    except sqlite3.OperationalError:
        return load_relation(conn, table, attributes)
    return Relation(RelationSchema(table, attributes), rows)


def store_instance(conn: sqlite3.Connection, instance: Instance) -> None:
    """Store both relations of an instance."""
    store_relation(conn, instance.left)
    store_relation(conn, instance.right)


def equijoin_query(instance: Instance, predicate: JoinPredicate) -> str:
    """The SQL text of ``R ⋈_θ P`` over the stored tables."""
    left, right = instance.left.name, instance.right.name
    select_cols = ", ".join(
        [f"{_quote(left)}.{_quote(a.name)}" for a in instance.left.schema]
        + [f"{_quote(right)}.{_quote(b.name)}" for b in instance.right.schema]
    )
    conditions = [
        f"{_quote(left)}.{_quote(a.name)} = {_quote(right)}.{_quote(b.name)}"
        for a, b in predicate.sorted_pairs()
    ]
    where = " AND ".join(conditions) if conditions else "1=1"
    return (
        f"SELECT {select_cols} FROM {_quote(left)} "
        f"CROSS JOIN {_quote(right)} WHERE {where}"
    )


def semijoin_query(instance: Instance, predicate: JoinPredicate) -> str:
    """The SQL text of ``R ⋉_θ P`` (EXISTS formulation)."""
    left, right = instance.left.name, instance.right.name
    select_cols = ", ".join(
        f"{_quote(left)}.{_quote(a.name)}" for a in instance.left.schema
    )
    conditions = [
        f"{_quote(left)}.{_quote(a.name)} = {_quote(right)}.{_quote(b.name)}"
        for a, b in predicate.sorted_pairs()
    ]
    where = " AND ".join(conditions) if conditions else "1=1"
    return (
        f"SELECT {select_cols} FROM {_quote(left)} WHERE EXISTS "
        f"(SELECT 1 FROM {_quote(right)} WHERE {where})"
    )


def sql_equijoin(
    conn: sqlite3.Connection,
    instance: Instance,
    predicate: JoinPredicate,
) -> set[tuple[Row, Row]]:
    """Evaluate the equijoin in SQLite; returns ``{(r_row, p_row)}``."""
    predicate.validate_for(instance)
    arity = instance.left.arity
    out = set()
    for joined in conn.execute(equijoin_query(instance, predicate)):
        out.add((tuple(joined[:arity]), tuple(joined[arity:])))
    return out


def sql_semijoin(
    conn: sqlite3.Connection,
    instance: Instance,
    predicate: JoinPredicate,
) -> set[Row]:
    """Evaluate the semijoin in SQLite; returns the set of R-rows."""
    predicate.validate_for(instance)
    return {
        tuple(row)
        for row in conn.execute(semijoin_query(instance, predicate))
    }


# --- signature push-down ------------------------------------------------------
#
# The signature index groups R × P by T(t) = {(A_i, B_j) | t_R[A_i] =
# t_P[B_j]}.  When the data already lives in SQLite, the whole grouping
# can be evaluated *inside* the engine: encode T(t) as packed integer
# words of CASE-WHEN equality bits and GROUP BY those words over the
# cross join.  Only the distinct signatures (usually a tiny set) ever
# cross the SQL boundary, so Python-side memory is O(classes) no matter
# how large |R|·|P| is.
#
# Bit-for-bit parity with the in-memory build relies on two SQLite
# guarantees: affinity-stripped `IS` (`+l.a IS +r.b` — unary `+` drops
# the column's type affinity and collation) agrees with Python `==` on
# stored TEXT/INTEGER/REAL/NULL values (1 = 1.0 in both, '1' ≠ 1 in
# both even when a declared TEXT column would otherwise get NUMERIC
# affinity applied, NULL IS NULL ↔ None == None — pre-existing tables
# may carry NULLs and declared column types even though
# `store_relation` writes neither), and a GROUP BY with a single MIN
# aggregate surfaces the bare columns of the row that attained the
# minimum — so per-distinct-row values follow first occurrence, exactly
# like `Relation`'s de-duplication.  Grouping terms carry an explicit
# COLLATE BINARY so declared collations (e.g. NOCASE) cannot merge rows
# Python keeps distinct; affinity needs no stripping there, because it
# applies at storage time and grouping compares stored values of one
# column with itself.


def _dedup_subquery(table: str, attributes: list[str]) -> str:
    """A subquery numbering the distinct rows of ``table`` by first
    occurrence: ``ord`` is 0-based, dense, in MIN(rowid) order.

    Inlined into ``FROM`` rather than a CTE — two window-function CTEs
    in one ``WITH`` list trip a name-resolution quirk in SQLite (the
    inner ``rowid`` stops resolving), while the identical subqueries
    joined directly work on every version we target.  Grouping uses an
    explicit ``COLLATE BINARY`` so it matches Python tuple equality of
    the stored values regardless of declared collations (affinity is a
    storage-time property and cannot diverge within one column).
    """
    cols = ", ".join(_quote(a) for a in attributes)
    group = ", ".join(
        _quote(a) + " COLLATE BINARY" for a in attributes
    )
    # Generated identifiers contain a space, which the schema layer's
    # [A-Za-z_][A-Za-z0-9_]* attribute grammar can never produce — a
    # relation attribute named ord/first_row/w0 must bind the *data*
    # column, not shadow the internals (silent wrong indexes otherwise).
    return (
        f'(SELECT ROW_NUMBER() OVER (ORDER BY "repro first") - 1 '
        f'AS {ORD_COLUMN}, {cols} '
        f'FROM (SELECT MIN(rowid) AS "repro first", {cols} '
        f"FROM {_quote(table)} GROUP BY {group}))"
    )


def distinct_row_count(
    conn: sqlite3.Connection, table: str, attributes: Iterable[str]
) -> int:
    """The number of distinct rows of ``table`` over ``attributes`` —
    ``|R|`` under the paper's set semantics."""
    group = ", ".join(
        _quote(a) + " COLLATE BINARY" for a in attributes
    )
    (count,) = conn.execute(
        f"SELECT COUNT(*) FROM "
        f"(SELECT 1 FROM {_quote(table)} GROUP BY {group})"
    ).fetchone()
    return int(count)


def make_dedup_table(
    conn: sqlite3.Connection,
    table: str,
    attributes: list[str],
    dedup_name: str,
) -> str:
    """Materialise ``table``'s first-occurrence ordinals once.

    Creates (or replaces) a TEMP table ``dedup_name`` holding ``ord``
    plus the attribute columns — the dedup sort runs once per build
    instead of once per shard query, so sharded push-down builds scale
    with the shard count rather than multiplying the ``ROW_NUMBER``
    work.  Returns the quoted name, ready to pass as a
    ``signature_shard_query`` source.
    """
    conn.execute(f"DROP TABLE IF EXISTS temp.{_quote(dedup_name)}")
    conn.execute(
        f"CREATE TEMP TABLE {_quote(dedup_name)} AS "
        f"SELECT * FROM {_dedup_subquery(table, attributes)}"
    )
    return _quote(dedup_name)


def signature_shard_query(
    left_table: str,
    right_table: str,
    left_attributes: list[str],
    right_attributes: list[str],
    left_source: str | None = None,
    right_source: str | None = None,
) -> str:
    """SQL computing the signature histogram of one shard of ``R × P``.

    Parameters (in order): ``n_right`` (distinct right rows, used to
    flatten ``(l.ord, r.ord)`` into one product ordinal), ``start`` and
    ``stop`` bounding the shard's left-row ordinals.  Each result row is
    ``(word_0, …, word_k, count, first_ordinal)`` — one distinct
    signature, its packed mask split into :data:`SQL_MASK_BITS`-bit
    integer words, its tuple count, and the smallest product ordinal
    carrying it (the representative's position).

    ``left_source``/``right_source`` override the row sources with
    pre-materialised dedup tables (:func:`make_dedup_table`); by
    default each query carries its own inline dedup subquery.
    """
    n, m = len(left_attributes), len(right_attributes)
    omega = n * m
    n_words = max(1, (omega + SQL_MASK_BITS - 1) // SQL_MASK_BITS)
    word_exprs = []
    for word in range(n_words):
        terms = []
        for position in range(
            word * SQL_MASK_BITS, min((word + 1) * SQL_MASK_BITS, omega)
        ):
            i, j = divmod(position, m)
            bit = position - word * SQL_MASK_BITS
            # `+x IS +y COLLATE BINARY`: IS is `=` that also makes NULL
            # IS NULL true (Python's None == None); unary `+` strips
            # declared column affinity so TEXT '1' vs INTEGER 1 stays
            # unequal like '1' == 1 in Python; the explicit BINARY
            # collation stops NOCASE-style columns from merging values
            # Python keeps distinct.
            terms.append(
                f"(CASE WHEN +l.{_quote(left_attributes[i])} IS "
                f"+r.{_quote(right_attributes[j])} COLLATE BINARY "
                f"THEN {1 << bit} ELSE 0 END)"
            )
        # Word aliases carry a space for the same reason as ORD_COLUMN:
        # a data column named w0 must never capture the GROUP BY.
        word_exprs.append(" | ".join(terms) + f' AS "repro w{word}"')
    word_aliases = ", ".join(
        f'"repro w{word}"' for word in range(n_words)
    )
    if left_source is None:
        left_source = _dedup_subquery(left_table, left_attributes)
    if right_source is None:
        right_source = _dedup_subquery(right_table, right_attributes)
    return (
        f"SELECT {', '.join(word_exprs)}, "
        f'COUNT(*) AS "repro n", '
        f"MIN(l.{ORD_COLUMN} * ? + r.{ORD_COLUMN}) AS \"repro min\" "
        f"FROM {left_source} AS l "
        f"CROSS JOIN {right_source} AS r "
        f"WHERE l.{ORD_COLUMN} >= ? AND l.{ORD_COLUMN} < ? "
        f"GROUP BY {word_aliases}"
    )


def sql_signature_shard(
    conn: sqlite3.Connection,
    left_table: str,
    right_table: str,
    left_attributes: list[str],
    right_attributes: list[str],
    start: int,
    stop: int,
    n_right: int,
    left_source: str | None = None,
    right_source: str | None = None,
) -> dict[int, tuple[int, int]]:
    """Evaluate one shard's signature histogram inside SQLite.

    Returns ``{mask: (count, first_ordinal)}`` where ``mask`` is the
    signature over Ω in canonical bit order and ``first_ordinal`` is the
    smallest ``left_ord * n_right + right_ord`` carrying it.
    """
    query = signature_shard_query(
        left_table,
        right_table,
        left_attributes,
        right_attributes,
        left_source=left_source,
        right_source=right_source,
    )
    found: dict[int, tuple[int, int]] = {}
    n_words = max(
        1,
        (len(left_attributes) * len(right_attributes) + SQL_MASK_BITS - 1)
        // SQL_MASK_BITS,
    )
    for row in conn.execute(query, (n_right, start, stop)):
        mask = 0
        for word in range(n_words):
            mask |= int(row[word]) << (word * SQL_MASK_BITS)
        found[mask] = (int(row[n_words]), int(row[n_words + 1]))
    return found
