"""SQLite execution backend.

The inference algorithms operate on in-memory :class:`Relation` objects,
but a downstream user's data usually lives in a database.  This module
round-trips relations to SQLite tables and evaluates equijoins/semijoins as
SQL, which serves three purposes:

* loading real data into the inference machinery (``load_relation``),
* persisting generated datasets (``store_relation``),
* cross-validating the pure-Python algebra against a real query engine
  (the test suite checks ``algebra.equijoin == sql_equijoin`` on random
  instances).

Values are stored as TEXT/INTEGER/REAL; ``None`` maps to SQL NULL.  SQL
equality over NULL differs from Python ``None == None``, so relations with
``None`` values are rejected at store time — the paper's model has no
nulls.
"""

from __future__ import annotations

import sqlite3
from typing import Iterable

from .predicate import JoinPredicate
from .relation import Instance, Relation, Row
from .schema import RelationSchema

__all__ = [
    "connect_memory",
    "store_relation",
    "load_relation",
    "store_instance",
    "sql_equijoin",
    "sql_semijoin",
    "equijoin_query",
    "semijoin_query",
]


def connect_memory() -> sqlite3.Connection:
    """A fresh in-memory SQLite database."""
    return sqlite3.connect(":memory:")


def _quote(identifier: str) -> str:
    """Quote an SQL identifier (relation/attribute names are validated
    against ``[A-Za-z_][A-Za-z0-9_]*`` by the schema layer, so this is
    belt-and-braces)."""
    return '"' + identifier.replace('"', '""') + '"'


def store_relation(conn: sqlite3.Connection, relation: Relation) -> None:
    """Create a table named after the relation and insert all rows."""
    for row in relation:
        if any(value is None for value in row):
            raise ValueError(
                "relations with NULL values cannot be stored: SQL NULL "
                "equality differs from the paper's equality semantics"
            )
    cols = ", ".join(_quote(a.name) for a in relation.schema)
    conn.execute(f"DROP TABLE IF EXISTS {_quote(relation.name)}")
    conn.execute(f"CREATE TABLE {_quote(relation.name)} ({cols})")
    placeholders = ", ".join("?" for _ in range(relation.arity))
    conn.executemany(
        f"INSERT INTO {_quote(relation.name)} VALUES ({placeholders})",
        relation.rows,
    )
    conn.commit()


def load_relation(
    conn: sqlite3.Connection,
    table: str,
    attributes: Iterable[str] | None = None,
    limit: int | None = None,
) -> Relation:
    """Load a SQLite table (optionally a column subset / row cap)."""
    if attributes is None:
        cursor = conn.execute(f"SELECT * FROM {_quote(table)} LIMIT 0")
        attributes = [description[0] for description in cursor.description]
    attributes = list(attributes)
    cols = ", ".join(_quote(a) for a in attributes)
    sql = f"SELECT {cols} FROM {_quote(table)}"
    if limit is not None:
        sql += f" LIMIT {int(limit)}"
    rows = conn.execute(sql).fetchall()
    return Relation(RelationSchema(table, attributes), rows)


def store_instance(conn: sqlite3.Connection, instance: Instance) -> None:
    """Store both relations of an instance."""
    store_relation(conn, instance.left)
    store_relation(conn, instance.right)


def equijoin_query(instance: Instance, predicate: JoinPredicate) -> str:
    """The SQL text of ``R ⋈_θ P`` over the stored tables."""
    left, right = instance.left.name, instance.right.name
    select_cols = ", ".join(
        [f"{_quote(left)}.{_quote(a.name)}" for a in instance.left.schema]
        + [f"{_quote(right)}.{_quote(b.name)}" for b in instance.right.schema]
    )
    conditions = [
        f"{_quote(left)}.{_quote(a.name)} = {_quote(right)}.{_quote(b.name)}"
        for a, b in predicate.sorted_pairs()
    ]
    where = " AND ".join(conditions) if conditions else "1=1"
    return (
        f"SELECT {select_cols} FROM {_quote(left)} "
        f"CROSS JOIN {_quote(right)} WHERE {where}"
    )


def semijoin_query(instance: Instance, predicate: JoinPredicate) -> str:
    """The SQL text of ``R ⋉_θ P`` (EXISTS formulation)."""
    left, right = instance.left.name, instance.right.name
    select_cols = ", ".join(
        f"{_quote(left)}.{_quote(a.name)}" for a in instance.left.schema
    )
    conditions = [
        f"{_quote(left)}.{_quote(a.name)} = {_quote(right)}.{_quote(b.name)}"
        for a, b in predicate.sorted_pairs()
    ]
    where = " AND ".join(conditions) if conditions else "1=1"
    return (
        f"SELECT {select_cols} FROM {_quote(left)} WHERE EXISTS "
        f"(SELECT 1 FROM {_quote(right)} WHERE {where})"
    )


def sql_equijoin(
    conn: sqlite3.Connection,
    instance: Instance,
    predicate: JoinPredicate,
) -> set[tuple[Row, Row]]:
    """Evaluate the equijoin in SQLite; returns ``{(r_row, p_row)}``."""
    predicate.validate_for(instance)
    arity = instance.left.arity
    out = set()
    for joined in conn.execute(equijoin_query(instance, predicate)):
        out.add((tuple(joined[:arity]), tuple(joined[arity:])))
    return out


def sql_semijoin(
    conn: sqlite3.Connection,
    instance: Instance,
    predicate: JoinPredicate,
) -> set[Row]:
    """Evaluate the semijoin in SQLite; returns the set of R-rows."""
    predicate.validate_for(instance)
    return {
        tuple(row)
        for row in conn.execute(semijoin_query(instance, predicate))
    }
