"""Relational substrate: schemas, relations, predicates, algebra, backends.

This package is the paper's §2 made executable — two relations with
disjoint attribute sets, equijoin and semijoin predicates over
``Ω = attrs(R) × attrs(P)``, and the standard set semantics of the
operators.
"""

from .algebra import (
    cartesian_product,
    equijoin,
    is_nullable,
    join_witnesses,
    project,
    select,
    selects,
    semijoin,
    semijoin_selects,
)
from .csv_io import iter_csv_rows, read_csv, read_csv_text, write_csv
from .predicate import AttributePair, JoinPredicate
from .relation import Instance, Relation, Row
from .schema import Attribute, RelationSchema, SchemaError
from .source import (
    CsvSource,
    InstanceSource,
    SignatureSource,
    SqliteSource,
    as_signature_source,
)

__all__ = [
    "Attribute",
    "AttributePair",
    "Instance",
    "JoinPredicate",
    "Relation",
    "RelationSchema",
    "Row",
    "SchemaError",
    "CsvSource",
    "InstanceSource",
    "SignatureSource",
    "SqliteSource",
    "as_signature_source",
    "cartesian_product",
    "equijoin",
    "is_nullable",
    "iter_csv_rows",
    "join_witnesses",
    "project",
    "read_csv",
    "read_csv_text",
    "select",
    "selects",
    "semijoin",
    "semijoin_selects",
    "write_csv",
]
