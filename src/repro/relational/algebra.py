"""Relational algebra with the exact set semantics of §2 of the paper.

Implemented operators:

* ``cartesian_product(I)`` — ``D = R × P`` as a list of row pairs,
* ``equijoin(I, θ)``      — ``R ⋈_θ P = {(t, t') ∈ R×P | ∀(A,B)∈θ. t[A]=t'[B]}``,
* ``semijoin(I, θ)``      — ``R ⋉_θ P = Π_attrs(R)(R ⋈_θ P)``,
* ``selects(I, θ, t)``    — membership of one Cartesian tuple in the join,
* ``project`` / ``select`` on single relations (generic utilities).

Join evaluation uses hash partitioning on the θ-columns rather than
filtering the full product, so it stays usable on the larger generated
instances.  Semantics are validated against a SQLite execution of the same
queries in the test suite.
"""

from __future__ import annotations

from typing import Callable, Hashable, Sequence

from .predicate import JoinPredicate
from .relation import Instance, Relation, Row
from .schema import Attribute, RelationSchema

__all__ = [
    "cartesian_product",
    "equijoin",
    "semijoin",
    "selects",
    "semijoin_selects",
    "join_witnesses",
    "project",
    "select",
    "is_nullable",
]


def cartesian_product(instance: Instance) -> list[tuple[Row, Row]]:
    """Materialise ``D = R × P`` in canonical order."""
    return list(instance.cartesian_product())


def _key_positions(
    instance: Instance, predicate: JoinPredicate
) -> tuple[list[int], list[int]]:
    """Positions of the θ-columns in R and P, in matching order."""
    left_schema = instance.left.schema
    right_schema = instance.right.schema
    left_pos = []
    right_pos = []
    for a, b in predicate.sorted_pairs():
        left_pos.append(left_schema.position(a))
        right_pos.append(right_schema.position(b))
    return left_pos, right_pos


def equijoin(
    instance: Instance, predicate: JoinPredicate
) -> list[tuple[Row, Row]]:
    """``(R ⋈_θ P)^I`` as a list of row pairs in canonical order.

    The empty predicate yields the full Cartesian product, matching the
    universally quantified semantics of §2.
    """
    predicate.validate_for(instance)
    if not predicate:
        return cartesian_product(instance)
    left_pos, right_pos = _key_positions(instance, predicate)
    buckets: dict[tuple[Hashable, ...], list[Row]] = {}
    for p_row in instance.right:
        key = tuple(p_row[j] for j in right_pos)
        buckets.setdefault(key, []).append(p_row)
    result = []
    for r_row in instance.left:
        key = tuple(r_row[i] for i in left_pos)
        for p_row in buckets.get(key, ()):
            result.append((r_row, p_row))
    return result


def semijoin(instance: Instance, predicate: JoinPredicate) -> list[Row]:
    """``(R ⋉_θ P)^I = {t ∈ R | ∃t'∈P. ∀(A,B)∈θ. t[A]=t'[B]}``."""
    predicate.validate_for(instance)
    if not predicate:
        return list(instance.left) if len(instance.right) else []
    left_pos, right_pos = _key_positions(instance, predicate)
    right_keys = {
        tuple(p_row[j] for j in right_pos) for p_row in instance.right
    }
    return [
        r_row
        for r_row in instance.left
        if tuple(r_row[i] for i in left_pos) in right_keys
    ]


def selects(
    instance: Instance,
    predicate: JoinPredicate,
    tuple_pair: tuple[Row, Row],
) -> bool:
    """True iff the Cartesian tuple ``(t_R, t_P)`` is in ``R ⋈_θ P``."""
    r_row, p_row = tuple_pair
    left_schema = instance.left.schema
    right_schema = instance.right.schema
    return all(
        r_row[left_schema.position(a)] == p_row[right_schema.position(b)]
        for a, b in predicate.pairs
    )


def semijoin_selects(
    instance: Instance, predicate: JoinPredicate, r_row: Row
) -> bool:
    """True iff ``t ∈ R ⋉_θ P`` — some P-row witnesses the predicate."""
    left_schema = instance.left.schema
    right_schema = instance.right.schema
    left_vals = [
        (r_row[left_schema.position(a)], right_schema.position(b))
        for a, b in predicate.pairs
    ]
    return any(
        all(value == p_row[pos] for value, pos in left_vals)
        for p_row in instance.right
    )


def join_witnesses(
    instance: Instance, predicate: JoinPredicate, r_row: Row
) -> list[Row]:
    """All P-rows ``t'`` with ``∀(A,B)∈θ. t[A]=t'[B]`` for the given R-row."""
    left_schema = instance.left.schema
    right_schema = instance.right.schema
    left_vals = [
        (r_row[left_schema.position(a)], right_schema.position(b))
        for a, b in predicate.pairs
    ]
    return [
        p_row
        for p_row in instance.right
        if all(value == p_row[pos] for value, pos in left_vals)
    ]


def is_nullable(instance: Instance, predicate: JoinPredicate) -> bool:
    """True iff ``R ⋈_θ P`` is empty on this instance (θ is *nullable*).

    §4.2 restricts the lattice to non-nullable predicates.
    """
    if not predicate:
        return instance.cartesian_size == 0
    left_pos, right_pos = _key_positions(instance, predicate)
    right_keys = {
        tuple(p_row[j] for j in right_pos) for p_row in instance.right
    }
    return not any(
        tuple(r_row[i] for i in left_pos) in right_keys
        for r_row in instance.left
    )


def project(
    relation: Relation, attributes: Sequence[Attribute | str]
) -> Relation:
    """``Π_attributes(relation)`` with set semantics (duplicates collapse)."""
    positions = [relation.schema.position(a) for a in attributes]
    names = [relation.schema.attributes[p].name for p in positions]
    schema = RelationSchema(relation.name, names)
    return Relation(
        schema, (tuple(row[p] for p in positions) for row in relation)
    )


def select(
    relation: Relation, condition: Callable[[Row], bool]
) -> Relation:
    """``σ_condition(relation)`` — keep the rows satisfying ``condition``."""
    return Relation(relation.schema, (row for row in relation if condition(row)))
