"""Relations (sets of tuples) and two-relation database instances.

A :class:`Relation` pairs a :class:`~repro.relational.schema.RelationSchema`
with a sequence of rows.  Rows are plain Python tuples of hashable values;
following the paper's set semantics, duplicate rows are kept only once (we
preserve first-occurrence order so experiments are deterministic).

An :class:`Instance` is the pair ``I = (R^I, P^I)`` of §2 and is the object
on which all inference operates.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Sequence

from .schema import Attribute, RelationSchema, SchemaError

__all__ = ["Relation", "Instance", "Row"]

Row = tuple[Hashable, ...]


class Relation:
    """An instance of one relation: a schema plus a set of rows."""

    __slots__ = ("_schema", "_rows")

    def __init__(
        self,
        schema: RelationSchema,
        rows: Iterable[Sequence[Hashable]] = (),
    ):
        self._schema = schema
        seen: dict[Row, None] = {}
        for row in rows:
            tup = tuple(row)
            if len(tup) != schema.arity:
                raise SchemaError(
                    f"row {tup!r} has {len(tup)} values, "
                    f"schema {schema.name!r} expects {schema.arity}"
                )
            seen.setdefault(tup, None)
        self._rows: tuple[Row, ...] = tuple(seen)

    @classmethod
    def build(
        cls,
        name: str,
        attribute_names: Sequence[str],
        rows: Iterable[Sequence[Hashable]] = (),
    ) -> "Relation":
        """Convenience constructor building the schema in place.

        >>> flights = Relation.build(
        ...     "Flight", ["From_", "To", "Airline"],
        ...     [("Paris", "Lille", "AF")])
        >>> flights.arity
        3
        """
        return cls(RelationSchema(name, attribute_names), rows)

    @property
    def schema(self) -> RelationSchema:
        """The relation's schema."""
        return self._schema

    @property
    def name(self) -> str:
        """The relation's name."""
        return self._schema.name

    @property
    def rows(self) -> tuple[Row, ...]:
        """All rows, duplicates removed, in first-occurrence order."""
        return self._rows

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return self._schema.arity

    def value(self, row: Row, attribute: Attribute | str) -> Hashable:
        """Return ``row[attribute]`` — the value of ``attribute`` in ``row``."""
        return row[self._schema.position(attribute)]

    def column(self, attribute: Attribute | str) -> list[Hashable]:
        """Return the full column of values for ``attribute``."""
        pos = self._schema.position(attribute)
        return [row[pos] for row in self._rows]

    def restrict(self, keep: int) -> "Relation":
        """Return a copy keeping only the first ``keep`` rows.

        Used to cap instance sizes in experiments.
        """
        return Relation(self._schema, self._rows[:keep])

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row: object) -> bool:
        return row in set(self._rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return (
            self._schema == other._schema
            and set(self._rows) == set(other._rows)
        )

    def __hash__(self) -> int:
        return hash((self._schema, frozenset(self._rows)))

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, {len(self)} rows)"

    def pretty(self, limit: int | None = 10) -> str:
        """Render an ASCII table of (up to ``limit``) rows."""
        headers = [attr.name for attr in self._schema]
        shown = list(self._rows if limit is None else self._rows[:limit])
        cells = [[str(v) for v in row] for row in shown]
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in cells), 1)
            if cells
            else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [
            " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        lines.extend(
            " | ".join(c.ljust(w) for c, w in zip(row, widths))
            for row in cells
        )
        if limit is not None and len(self._rows) > limit:
            lines.append(f"... ({len(self._rows) - limit} more rows)")
        return "\n".join(lines)


class Instance:
    """A database instance ``I = (R^I, P^I)`` over two relations.

    The paper requires the two attribute sets to be disjoint; attribute
    qualification makes this automatic unless the two relations share a
    name, which we reject.
    """

    __slots__ = ("_left", "_right", "_content_fingerprint")

    def __init__(self, left: Relation, right: Relation):
        if left.name == right.name:
            raise SchemaError(
                "the two relations of an instance must have distinct names "
                f"(both are {left.name!r})"
            )
        if not left.schema.is_disjoint_from(right.schema):
            raise SchemaError("attribute sets must be disjoint")
        self._left = left
        self._right = right
        # Memo slot for the service's content hash: relations are
        # immutable, so the O(data) fingerprint is computed at most once
        # per Instance object (repro.service.index_cache fills it).
        self._content_fingerprint: str | None = None

    @property
    def left(self) -> Relation:
        """The relation ``R``."""
        return self._left

    @property
    def right(self) -> Relation:
        """The relation ``P``."""
        return self._right

    @property
    def omega(self) -> tuple[tuple[Attribute, Attribute], ...]:
        """``Ω = attrs(R) × attrs(P)`` in canonical (row-major) order."""
        return tuple(
            (a, b)
            for a in self._left.schema.attributes
            for b in self._right.schema.attributes
        )

    @property
    def cartesian_size(self) -> int:
        """``|R| * |P|`` — the number of tuples the user could label."""
        return len(self._left) * len(self._right)

    def cartesian_product(self) -> Iterator[tuple[Row, Row]]:
        """Iterate over ``D = R × P`` in canonical order.

        Yields pairs ``(r_row, p_row)``; materialising the full product is
        left to the caller (it may be huge).
        """
        for r_row in self._left:
            for p_row in self._right:
                yield (r_row, p_row)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        return self._left == other._left and self._right == other._right

    def __hash__(self) -> int:
        return hash((self._left, self._right))

    def __repr__(self) -> str:
        return (
            f"Instance({self._left.name!r} x {self._right.name!r}, "
            f"|D|={self.cartesian_size})"
        )
