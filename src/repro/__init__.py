"""repro — Interactive Inference of Join Queries.

A complete, from-scratch reproduction of

    Angela Bonifati, Radu Ciucanu, Sławek Staworko.
    "Interactive Inference of Join Queries", EDBT 2014.

The library infers an equijoin predicate between two relations purely from
"is this tuple in your result?" answers, with no knowledge of integrity
constraints, while minimising the number of questions.  It also contains
everything the paper's evaluation depends on: the relational substrate, a
SAT solver and the semijoin NP-completeness construction (Theorem 6.1), a
synthetic data generator, a miniature TPC-H dbgen, and the experiment
harness that regenerates every table and figure.

Quickstart
----------

>>> from repro import (
...     Relation, Instance, JoinPredicate,
...     PerfectOracle, TopDownStrategy, run_inference)
>>> flights = Relation.build(
...     "Flight", ["From_", "To", "Airline"],
...     [("Paris", "Lille", "AF"), ("Lille", "NYC", "AA"),
...      ("NYC", "Paris", "AA"), ("Paris", "NYC", "AF")])
>>> hotels = Relation.build(
...     "Hotel", ["City", "Discount"],
...     [("NYC", "AA"), ("Paris", "None_"), ("Lille", "AF")])
>>> instance = Instance(flights, hotels)
>>> goal = JoinPredicate.parse("Flight.To = Hotel.City")
>>> result = run_inference(
...     instance, TopDownStrategy(), PerfectOracle(instance, goal), seed=0)
>>> result.matches_goal(instance, goal)
True
"""

from .core import (
    BottomUpStrategy,
    Example,
    HaltCondition,
    InconsistentSampleError,
    InferenceResult,
    InferenceSession,
    InferenceState,
    Label,
    LookaheadSkylineStrategy,
    MaxInteractions,
    NoInformativeTuples,
    NoisyOracle,
    OptimalStrategy,
    Oracle,
    PerfectOracle,
    RandomStrategy,
    Sample,
    ScriptedOracle,
    SignatureIndex,
    Strategy,
    TopDownStrategy,
    consistent_predicate,
    default_strategies,
    instance_equivalent,
    is_consistent,
    most_specific_for_set,
    most_specific_predicate,
    one_step_lookahead,
    run_inference,
    strategy_by_name,
    two_step_lookahead,
)
from .relational import (
    Attribute,
    Instance,
    JoinPredicate,
    Relation,
    RelationSchema,
    SchemaError,
    cartesian_product,
    equijoin,
    semijoin,
)

__version__ = "1.0.0"

__all__ = [
    "Attribute",
    "BottomUpStrategy",
    "Example",
    "HaltCondition",
    "InconsistentSampleError",
    "InferenceResult",
    "InferenceSession",
    "InferenceState",
    "Instance",
    "JoinPredicate",
    "Label",
    "LookaheadSkylineStrategy",
    "MaxInteractions",
    "NoInformativeTuples",
    "NoisyOracle",
    "OptimalStrategy",
    "Oracle",
    "PerfectOracle",
    "RandomStrategy",
    "Relation",
    "RelationSchema",
    "Sample",
    "SchemaError",
    "ScriptedOracle",
    "SignatureIndex",
    "Strategy",
    "TopDownStrategy",
    "__version__",
    "cartesian_product",
    "consistent_predicate",
    "default_strategies",
    "equijoin",
    "instance_equivalent",
    "is_consistent",
    "most_specific_for_set",
    "most_specific_predicate",
    "one_step_lookahead",
    "run_inference",
    "semijoin",
    "strategy_by_name",
    "two_step_lookahead",
]
