"""A from-scratch SAT substrate.

Supports the semijoin intractability study (§6 / Theorem 6.1): CNF
formulas, a complete DPLL solver, a brute-force reference, WalkSAT local
search, random formula generators, and DIMACS I/O.
"""

from .brute import all_models, count_models, solve_brute
from .cnf import Assignment, Clause, CnfFormula
from .dimacs import from_dimacs, read_dimacs, to_dimacs, write_dimacs
from .dpll import is_satisfiable, solve
from .generate import planted_3cnf, random_3cnf, random_k_cnf
from .walksat import walksat

__all__ = [
    "Assignment",
    "Clause",
    "CnfFormula",
    "all_models",
    "count_models",
    "from_dimacs",
    "is_satisfiable",
    "planted_3cnf",
    "random_3cnf",
    "random_k_cnf",
    "read_dimacs",
    "solve",
    "solve_brute",
    "to_dimacs",
    "walksat",
    "write_dimacs",
]
