"""WalkSAT — incomplete stochastic local search.

Used by the semijoin inference heuristics when a quick "probably
satisfiable" answer is enough; a ``None`` outcome is inconclusive (fall
back to DPLL for a definitive verdict).
"""

from __future__ import annotations

import random

from .cnf import Assignment, Clause, CnfFormula

__all__ = ["walksat"]


def _unsatisfied(formula: CnfFormula, assignment: Assignment) -> list[Clause]:
    return [c for c in formula.clauses if not c.evaluate(assignment)]


def _break_count(
    formula: CnfFormula, assignment: Assignment, variable: int
) -> int:
    """How many currently-satisfied clauses flipping ``variable`` breaks."""
    flipped = dict(assignment)
    flipped[variable] = not flipped[variable]
    return sum(
        clause.evaluate(assignment) and not clause.evaluate(flipped)
        for clause in formula.clauses
        if variable in clause.variables()
    )


def walksat(
    formula: CnfFormula,
    max_flips: int = 10_000,
    noise: float = 0.5,
    seed: int | None = None,
) -> Assignment | None:
    """Stochastic local search for a model.

    Returns a satisfying assignment or ``None`` after ``max_flips`` flips
    (inconclusive — the formula may still be satisfiable).
    """
    if not 0.0 <= noise <= 1.0:
        raise ValueError("noise must be within [0, 1]")
    variables = sorted(formula.variables())
    if any(clause.is_empty for clause in formula.clauses):
        return None
    if not variables:
        return {} if formula.evaluate({}) else None
    rng = random.Random(seed)
    assignment = {v: rng.random() < 0.5 for v in variables}
    for _ in range(max_flips):
        broken = _unsatisfied(formula, assignment)
        if not broken:
            return assignment
        clause = rng.choice(broken)
        candidates = sorted(clause.variables())
        if rng.random() < noise:
            variable = rng.choice(candidates)
        else:
            variable = min(
                candidates,
                key=lambda v: _break_count(formula, assignment, v),
            )
        assignment[variable] = not assignment[variable]
    return None
