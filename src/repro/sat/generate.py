"""Random k-CNF generation (for tests and the Theorem 6.1 experiments)."""

from __future__ import annotations

import random

from .cnf import Clause, CnfFormula

__all__ = ["random_k_cnf", "random_3cnf", "planted_3cnf"]


def random_k_cnf(
    n_variables: int,
    n_clauses: int,
    k: int,
    rng: random.Random,
) -> CnfFormula:
    """Uniform random k-CNF: each clause picks ``k`` distinct variables
    with random polarities."""
    if k > n_variables:
        raise ValueError("clause width exceeds variable count")
    clauses = []
    for _ in range(n_clauses):
        variables = rng.sample(range(1, n_variables + 1), k)
        clauses.append(
            Clause(
                frozenset(
                    v if rng.random() < 0.5 else -v for v in variables
                )
            )
        )
    return CnfFormula(clauses)


def random_3cnf(
    n_variables: int, n_clauses: int, rng: random.Random
) -> CnfFormula:
    """Uniform random 3-CNF (the reduction's input format)."""
    return random_k_cnf(n_variables, n_clauses, 3, rng)


def planted_3cnf(
    n_variables: int, n_clauses: int, rng: random.Random
) -> tuple[CnfFormula, dict[int, bool]]:
    """A satisfiable 3-CNF with a known (planted) model.

    Each clause is resampled until the planted assignment satisfies it,
    guaranteeing satisfiability regardless of density.
    """
    model = {v: rng.random() < 0.5 for v in range(1, n_variables + 1)}
    clauses = []
    while len(clauses) < n_clauses:
        candidate = random_k_cnf(n_variables, 1, min(3, n_variables), rng)
        clause = candidate.clauses[0]
        if clause.evaluate(model):
            clauses.append(clause)
    return CnfFormula(clauses), model
