"""DIMACS CNF serialisation (interchange with external SAT tooling)."""

from __future__ import annotations

from pathlib import Path

from .cnf import Clause, CnfFormula

__all__ = ["to_dimacs", "from_dimacs", "write_dimacs", "read_dimacs"]


def to_dimacs(formula: CnfFormula, comment: str | None = None) -> str:
    """Render the formula in DIMACS CNF format."""
    variables = formula.variables()
    n_variables = max(variables) if variables else 0
    lines = []
    if comment:
        for row in comment.splitlines():
            lines.append(f"c {row}")
    lines.append(f"p cnf {n_variables} {len(formula)}")
    for clause in formula:
        literals = " ".join(str(literal) for literal in clause)
        lines.append(f"{literals} 0".strip())
    return "\n".join(lines) + "\n"


def from_dimacs(text: str) -> CnfFormula:
    """Parse DIMACS CNF text (tolerant of comments and blank lines)."""
    clauses = []
    pending: list[int] = []
    header_seen = False
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise ValueError(f"bad DIMACS header: {line!r}")
            header_seen = True
            continue
        for token in line.split():
            literal = int(token)
            if literal == 0:
                clauses.append(Clause(frozenset(pending)))
                pending = []
            else:
                pending.append(literal)
    if pending:
        clauses.append(Clause(frozenset(pending)))
    if not header_seen and not clauses:
        raise ValueError("no DIMACS content found")
    return CnfFormula(clauses)


def write_dimacs(
    formula: CnfFormula, path: str | Path, comment: str | None = None
) -> None:
    """Write the formula to a ``.cnf`` file."""
    Path(path).write_text(to_dimacs(formula, comment))


def read_dimacs(path: str | Path) -> CnfFormula:
    """Read a formula from a ``.cnf`` file."""
    return from_dimacs(Path(path).read_text())
