"""A DPLL SAT solver.

Classic Davis–Putnam–Logemann–Loveland with:

* unit propagation,
* pure-literal elimination,
* most-frequent-variable branching.

Complete (always terminates with the correct answer); returns a satisfying
assignment when one exists.  Formulas produced by the semijoin encodings
are small (tens to hundreds of variables), so no clause learning is
needed — the emphasis is on a readable, heavily tested reference solver.
"""

from __future__ import annotations

from collections import Counter

from .cnf import Assignment, Clause, CnfFormula

__all__ = ["solve", "is_satisfiable"]


def _propagate_units(
    clauses: list[Clause], assignment: Assignment
) -> list[Clause] | None:
    """Repeatedly assign forced literals; None signals a conflict."""
    while True:
        unit = next((c for c in clauses if c.is_unit), None)
        if unit is None:
            return clauses
        literal = next(iter(unit.literals))
        variable, value = abs(literal), literal > 0
        assignment[variable] = value
        clauses = _assign(clauses, variable, value)
        if clauses is None:
            return None


def _eliminate_pure_literals(
    clauses: list[Clause], assignment: Assignment
) -> list[Clause]:
    """Assign variables occurring with a single polarity."""
    while True:
        polarity: dict[int, set[bool]] = {}
        for clause in clauses:
            for literal in clause.literals:
                polarity.setdefault(abs(literal), set()).add(literal > 0)
        pure = {
            variable: polarities.pop()
            for variable, polarities in polarity.items()
            if len(polarities) == 1
        }
        if not pure:
            return clauses
        for variable, value in pure.items():
            assignment[variable] = value
            result = _assign(clauses, variable, value)
            assert result is not None, "pure literal cannot conflict"
            clauses = result


def _assign(
    clauses: list[Clause], variable: int, value: bool
) -> list[Clause] | None:
    """Simplify all clauses under one assignment; None on empty clause."""
    out = []
    for clause in clauses:
        simplified = clause.simplify(variable, value)
        if simplified is None:
            continue
        if simplified.is_empty:
            return None
        out.append(simplified)
    return out


def _branch_variable(clauses: list[Clause]) -> int:
    """Most frequent variable across remaining clauses."""
    counts = Counter(
        abs(literal) for clause in clauses for literal in clause.literals
    )
    return counts.most_common(1)[0][0]


def _search(clauses: list[Clause], assignment: Assignment) -> Assignment | None:
    clauses = _propagate_units(clauses, assignment)
    if clauses is None:
        return None
    clauses = _eliminate_pure_literals(clauses, assignment)
    if not clauses:
        return assignment
    variable = _branch_variable(clauses)
    for value in (True, False):
        attempt = dict(assignment)
        attempt[variable] = value
        simplified = _assign(clauses, variable, value)
        if simplified is None:
            continue
        solution = _search(simplified, attempt)
        if solution is not None:
            return solution
    return None


def solve(formula: CnfFormula) -> Assignment | None:
    """A satisfying assignment (total over the formula's variables), or
    ``None`` when the formula is unsatisfiable."""
    clauses = [c for c in formula.clauses if not c.is_tautology]
    if any(clause.is_empty for clause in clauses):
        return None
    solution = _search(clauses, {})
    if solution is None:
        return None
    # Complete the assignment: unconstrained variables default to False.
    for variable in formula.variables():
        solution.setdefault(variable, False)
    assert formula.evaluate(solution), "solver returned a bad model"
    return solution


def is_satisfiable(formula: CnfFormula) -> bool:
    """Decision form of :func:`solve`."""
    return solve(formula) is not None
