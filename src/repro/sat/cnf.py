"""Propositional CNF formulas.

Substrate for the semijoin intractability study (Theorem 6.1): the paper
reduces 3SAT to semijoin-consistency, and our solvers go the other way —
encoding consistency questions as CNF and deciding them with DPLL.

Variables are positive integers; a literal is a non-zero integer whose
sign is the polarity (DIMACS convention).  A clause is a frozen set of
literals; a formula a list of clauses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

__all__ = ["Clause", "CnfFormula", "Assignment"]

Assignment = dict[int, bool]


@dataclass(frozen=True, slots=True)
class Clause:
    """A disjunction of literals (non-zero ints, sign = polarity)."""

    literals: frozenset[int] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        for literal in self.literals:
            if not isinstance(literal, int) or literal == 0:
                raise ValueError(f"invalid literal {literal!r}")

    @classmethod
    def of(cls, *literals: int) -> "Clause":
        """Convenience constructor: ``Clause.of(1, -2, 3)``."""
        return cls(frozenset(literals))

    @property
    def is_empty(self) -> bool:
        """The empty clause — unsatisfiable."""
        return not self.literals

    @property
    def is_unit(self) -> bool:
        """Exactly one literal."""
        return len(self.literals) == 1

    @property
    def is_tautology(self) -> bool:
        """Contains both a literal and its negation."""
        return any(-literal in self.literals for literal in self.literals)

    def variables(self) -> set[int]:
        """The variables mentioned by this clause."""
        return {abs(literal) for literal in self.literals}

    def evaluate(self, assignment: Mapping[int, bool]) -> bool:
        """Truth value under a *total* assignment of its variables."""
        return any(
            assignment[abs(literal)] == (literal > 0)
            for literal in self.literals
        )

    def simplify(self, variable: int, value: bool) -> "Clause | None":
        """The residual clause after fixing one variable.

        Returns ``None`` when the clause becomes satisfied.
        """
        satisfied_literal = variable if value else -variable
        if satisfied_literal in self.literals:
            return None
        falsified_literal = -satisfied_literal
        if falsified_literal in self.literals:
            return Clause(self.literals - {falsified_literal})
        return self

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self.literals, key=abs))

    def __len__(self) -> int:
        return len(self.literals)

    def __str__(self) -> str:
        if self.is_empty:
            return "⊥"
        return "(" + " ∨ ".join(
            (f"x{l}" if l > 0 else f"¬x{-l}") for l in self
        ) + ")"


class CnfFormula:
    """A conjunction of clauses."""

    __slots__ = ("_clauses",)

    def __init__(self, clauses: Iterable[Clause] = ()):
        self._clauses = tuple(clauses)

    @classmethod
    def of(cls, *clause_literals: Iterable[int]) -> "CnfFormula":
        """``CnfFormula.of([1, -2], [2, 3])`` builds two clauses."""
        return cls(Clause(frozenset(lits)) for lits in clause_literals)

    @property
    def clauses(self) -> tuple[Clause, ...]:
        """All clauses."""
        return self._clauses

    def variables(self) -> set[int]:
        """All variables mentioned anywhere in the formula."""
        out: set[int] = set()
        for clause in self._clauses:
            out |= clause.variables()
        return out

    def evaluate(self, assignment: Mapping[int, bool]) -> bool:
        """Truth value under a total assignment."""
        return all(clause.evaluate(assignment) for clause in self._clauses)

    def with_clause(self, clause: Clause) -> "CnfFormula":
        """A copy with one extra clause."""
        return CnfFormula(self._clauses + (clause,))

    def __len__(self) -> int:
        return len(self._clauses)

    def __iter__(self) -> Iterator[Clause]:
        return iter(self._clauses)

    def __str__(self) -> str:
        if not self._clauses:
            return "⊤"
        return " ∧ ".join(str(clause) for clause in self._clauses)

    def __repr__(self) -> str:
        return (
            f"CnfFormula({len(self._clauses)} clauses, "
            f"{len(self.variables())} vars)"
        )
