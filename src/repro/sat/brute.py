"""Brute-force SAT by truth-table enumeration.

Exponential reference implementation used to validate :mod:`repro.sat.dpll`
and :mod:`repro.sat.walksat` on small formulas.
"""

from __future__ import annotations

from itertools import product

from .cnf import Assignment, CnfFormula

__all__ = ["solve_brute", "count_models", "all_models"]


def solve_brute(formula: CnfFormula) -> Assignment | None:
    """First satisfying assignment in lexicographic order, or ``None``."""
    variables = sorted(formula.variables())
    if not variables:
        return {} if formula.evaluate({}) else None
    for values in product([False, True], repeat=len(variables)):
        assignment = dict(zip(variables, values))
        if formula.evaluate(assignment):
            return assignment
    return None


def count_models(formula: CnfFormula) -> int:
    """Number of satisfying assignments over the formula's variables."""
    variables = sorted(formula.variables())
    if not variables:
        return 1 if formula.evaluate({}) else 0
    return sum(
        formula.evaluate(dict(zip(variables, values)))
        for values in product([False, True], repeat=len(variables))
    )


def all_models(formula: CnfFormula) -> list[Assignment]:
    """Every satisfying assignment (exponential; testing only)."""
    variables = sorted(formula.variables())
    if not variables:
        return [{}] if formula.evaluate({}) else []
    return [
        dict(zip(variables, values))
        for values in product([False, True], repeat=len(variables))
        if formula.evaluate(dict(zip(variables, values)))
    ]
