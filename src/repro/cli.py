"""Command-line interface.

Subcommands
-----------

* ``infer``      — interactively infer a join between two CSV files: the
  tool picks informative tuple pairs, you answer y/n, it prints the join
  predicate you had in mind (Algorithm 1 with a human oracle).
* ``generate``   — write the mini TPC-H tables or a synthetic instance
  to CSV files.
* ``experiment`` — regenerate the paper's Figure 6 / Figure 7 / Table 1.
* ``demo``       — the flight&hotel walk-through from the paper's
  introduction, with a simulated user.
* ``serve``      — host many concurrent interactive sessions over an
  HTTP/JSON API (see :mod:`repro.service`): remote users are the oracle,
  sessions on the same data share one cached signature index, and
  snapshots let sessions survive restarts.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .core import (
    CallbackOracle,
    InferenceSession,
    Label,
    MaxInteractions,
    PerfectOracle,
    run_inference,
    strategy_by_name,
)
from .data import SyntheticConfig, generate_synthetic, generate_tpch
from .relational import Instance, JoinPredicate, read_csv, write_csv

__all__ = ["main", "build_parser", "manager_from_args"]


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 1:
        raise argparse.ArgumentTypeError("must be a positive integer")
    return value


def _non_negative_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 0:
        raise argparse.ArgumentTypeError("must be a non-negative integer")
    return value


def _non_negative_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if value < 0:
        raise argparse.ArgumentTypeError("must be non-negative")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-join",
        description=(
            "Interactive inference of join queries "
            "(Bonifati, Ciucanu, Staworko — EDBT 2014)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    infer = subparsers.add_parser(
        "infer", help="interactively infer a join between two CSV files"
    )
    infer.add_argument("left_csv", type=Path, help="relation R (CSV)")
    infer.add_argument("right_csv", type=Path, help="relation P (CSV)")
    infer.add_argument(
        "--strategy",
        default="TD",
        help="RND / BU / TD / L1S / L2S / LkS / OPT (default: TD)",
    )
    infer.add_argument(
        "--max-questions",
        type=int,
        default=None,
        help="stop early after this many questions",
    )
    infer.add_argument(
        "--infer-types",
        action="store_true",
        help="convert numeric-looking CSV columns to numbers",
    )
    infer.add_argument(
        "--save-transcript",
        type=Path,
        default=None,
        help="write the full Q&A transcript and result as JSON",
    )

    generate = subparsers.add_parser(
        "generate", help="write benchmark datasets as CSV"
    )
    generate.add_argument("kind", choices=["tpch", "synthetic"])
    generate.add_argument("--out-dir", type=Path, default=Path("."))
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument(
        "--scale", type=float, default=1.0, help="TPC-H scale"
    )
    generate.add_argument(
        "--config",
        default="(3,3,50,100)",
        help="synthetic configuration, e.g. '(3,3,50,100)'",
    )

    experiment = subparsers.add_parser(
        "experiment", help="regenerate the paper's tables"
    )
    experiment.add_argument(
        "what", choices=["fig6", "fig7", "table1", "all"]
    )
    experiment.add_argument("--runs", type=int, default=3)
    experiment.add_argument("--seed", type=int, default=0)

    subparsers.add_parser(
        "demo", help="the paper's flight&hotel walk-through"
    )

    serve = subparsers.add_parser(
        "serve", help="run the multi-session inference HTTP service"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642)
    serve.add_argument(
        "--max-sessions",
        type=int,
        default=256,
        help="concurrent-session capacity (default: 256)",
    )
    serve.add_argument(
        "--session-ttl",
        type=float,
        default=3600.0,
        help="idle seconds before a session is evicted; 0 disables",
    )
    serve.add_argument(
        "--index-cache-size",
        type=int,
        default=16,
        help="distinct instances whose indexes stay cached",
    )
    serve.add_argument(
        "--build-workers",
        type=_positive_int,
        default=1,
        help=(
            "worker threads for off-loop index builds; also the shard "
            "fan-out within one build, so N concurrent cold builds on "
            "distinct data may run up to N*N kernel threads — size to "
            "the machine's cores, not the request rate (default: 1)"
        ),
    )
    serve.add_argument(
        "--shard-rows",
        type=_positive_int,
        default=None,
        help=(
            "rows of R per index-build shard (default: one shard per "
            "build worker; with --build-workers 1 that is a single "
            "shard, the pre-pipeline behaviour)"
        ),
    )
    serve.add_argument(
        "--no-speculate",
        dest="speculate",
        action="store_false",
        help=(
            "disable speculative next-question precompute (by default "
            "both answer branches of a pending question are computed "
            "ahead of time on the build pool during oracle think-time)"
        ),
    )
    serve.add_argument(
        "--speculation-slots",
        type=_non_negative_int,
        default=None,
        help=(
            "concurrent speculative branch jobs allowed on the build "
            "pool; spawn points beyond the cap skip speculation "
            "instead of queueing (default: one full tree per build "
            "worker, (2^(depth+1) - 2) * build workers)"
        ),
    )
    serve.add_argument(
        "--speculation-depth",
        type=_positive_int,
        default=2,
        help=(
            "levels of the speculative answer tree behind each pending "
            "question: 1 precomputes both answer branches, 2 also "
            "precomputes each branch's own answer pair so "
            "answer->question->answer collapses to lookups "
            "(default: 2)"
        ),
    )
    serve.add_argument(
        "--no-kernel-batch",
        dest="kernel_batch",
        action="store_false",
        help=(
            "disable cross-session kernel batching (by default the "
            "L1S/L2S proposal kernels of sessions sharing one index "
            "are coalesced into stacked batch contractions)"
        ),
    )
    serve.add_argument(
        "--batch-window",
        type=_non_negative_float,
        default=0.002,
        help=(
            "seconds the kernel batcher waits after an idle period's "
            "first proposal so concurrent sessions pile into one "
            "batch (default: 0.002)"
        ),
    )
    serve.add_argument(
        "--batch-max",
        type=_positive_int,
        default=64,
        help="largest stacked kernel batch (default: 64)",
    )
    serve.add_argument(
        "--speculation-min-think",
        type=_non_negative_float,
        default=0.02,
        help=(
            "sessions whose observed question->answer gap (EWMA) stays "
            "below this many seconds stop speculating — their oracle "
            "answers too fast for precompute to hide anything "
            "(0 = always speculate; default: 0.02)"
        ),
    )
    serve.add_argument(
        "--store",
        type=Path,
        default=None,
        help=(
            "SQLite file for durable sessions (WAL mode): answers are "
            "journaled off the event loop, idle/capacity eviction "
            "demotes sessions to disk instead of deleting them, and "
            "any session — including one orphaned by a crash — "
            "rehydrates on its next touch (default: no store; "
            "eviction deletes)"
        ),
    )
    serve.add_argument(
        "--checkpoint-every",
        type=_positive_int,
        default=16,
        help=(
            "answers between full snapshot checkpoints in the store; "
            "between checkpoints each answer appends one journal row "
            "(default: 16)"
        ),
    )
    serve.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help=(
            "worker processes behind a front router; 1 serves "
            "in-process (the classic single-server mode), N>1 runs a "
            "fleet — requires --store, sessions are partitioned by id "
            "hash and leased so a killed worker's sessions resume on "
            "survivors (default: 1)"
        ),
    )
    serve.add_argument(
        "--lease-ttl",
        type=_non_negative_float,
        default=10.0,
        help=(
            "fleet-mode session lease TTL in seconds: how long after a "
            "worker's last heartbeat its sessions can be taken over by "
            "a survivor (default: 10)"
        ),
    )
    serve.add_argument(
        "--shared-index",
        action=argparse.BooleanOptionalAction,
        default=None,
        help=(
            "share built signature indexes machine-wide through "
            "/dev/shm segments (requires --store for the registry; "
            "workers attach zero-copy instead of rebuilding; default: "
            "on in fleet mode, off for a single server)"
        ),
    )
    serve.add_argument(
        "--plan-cache",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "memoise planner entropy tables per process and — when a "
            "--store is present and /dev/shm is usable — share them "
            "machine-wide, so sessions at the same state reuse one "
            "kernel run; question sequences are identical either way "
            "(default: on)"
        ),
    )
    serve.add_argument(
        "--plan-cache-entries",
        type=_positive_int,
        default=1024,
        help=(
            "per-process plan-cache LRU capacity in tables "
            "(default: 1024)"
        ),
    )
    return parser


def _parse_config(text: str) -> SyntheticConfig:
    cleaned = text.strip().strip("()")
    try:
        left, right, rows, values = (int(x) for x in cleaned.split(","))
    except ValueError:
        raise SystemExit(
            f"bad configuration {text!r}; expected '(nR,nP,rows,values)'"
        )
    return SyntheticConfig(left, right, rows, values)


def _format_question(instance: Instance, tuple_pair) -> str:
    r_row, p_row = tuple_pair
    left_part = ", ".join(
        f"{attr.name}={value}"
        for attr, value in zip(instance.left.schema, r_row)
    )
    right_part = ", ".join(
        f"{attr.name}={value}"
        for attr, value in zip(instance.right.schema, p_row)
    )
    return (
        f"  {instance.left.name}({left_part})\n"
        f"  {instance.right.name}({right_part})"
    )


def _console_oracle(instance: Instance, stream=None) -> CallbackOracle:
    counter = {"asked": 0}

    def ask(tuple_pair) -> Label:
        counter["asked"] += 1
        print(f"\nQuestion {counter['asked']}: should this pair be joined?")
        print(_format_question(instance, tuple_pair))
        while True:
            answer = (
                input("  [y]es / [n]o > ") if stream is None
                else stream.readline().strip()
            )
            answer = answer.strip().lower()
            if answer in ("y", "yes", "+"):
                return Label.POSITIVE
            if answer in ("n", "no", "-"):
                return Label.NEGATIVE
            print("  please answer y or n")

    return CallbackOracle(ask)


def _cmd_infer(args: argparse.Namespace) -> int:
    left = read_csv(args.left_csv, infer_types=args.infer_types)
    right = read_csv(args.right_csv, infer_types=args.infer_types)
    instance = Instance(left, right)
    strategy = strategy_by_name(args.strategy)
    halt = (
        MaxInteractions(args.max_questions)
        if args.max_questions is not None
        else None
    )
    session = InferenceSession(
        instance,
        strategy,
        _console_oracle(instance),
        halt_condition=halt,
        seed=0,
    )
    print(
        f"Inferring a join between {left.name} ({len(left)} rows) and "
        f"{right.name} ({len(right)} rows) with strategy {strategy.name}."
    )
    result = session.run()
    print("\nInferred join predicate:")
    print(f"  {result.predicate}")
    print(f"({result.interactions} questions asked)")
    if args.save_transcript is not None:
        from .core import dumps

        args.save_transcript.write_text(dumps(result))
        print(f"transcript written to {args.save_transcript}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    args.out_dir.mkdir(parents=True, exist_ok=True)
    if args.kind == "tpch":
        tables = generate_tpch(scale=args.scale, seed=args.seed)
        for relation in tables.all_tables():
            path = args.out_dir / f"{relation.name}.csv"
            write_csv(relation, path)
            print(f"wrote {path} ({len(relation)} rows)")
        return 0
    config = _parse_config(args.config)
    instance = generate_synthetic(config, seed=args.seed)
    for relation in (instance.left, instance.right):
        path = args.out_dir / f"{relation.name}.csv"
        write_csv(relation, path)
        print(f"wrote {path} ({len(relation)} rows)")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from .experiments import (
        figure6,
        figure7,
        render_figure6,
        render_figure7,
        render_table1,
        table1,
    )

    if args.what in ("fig6", "all"):
        print(render_figure6(figure6(seed=args.seed)))
        print()
    if args.what in ("fig7", "all"):
        print(render_figure7(figure7(seed=args.seed, runs=args.runs)))
        print()
    if args.what in ("table1", "all"):
        print(render_table1(table1(seed=args.seed, runs=args.runs)))
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from .relational import Relation

    flights = Relation.build(
        "Flight",
        ["From_", "To", "Airline"],
        [
            ("Paris", "Lille", "AF"),
            ("Lille", "NYC", "AA"),
            ("NYC", "Paris", "AA"),
            ("Paris", "NYC", "AF"),
        ],
    )
    hotels = Relation.build(
        "Hotel",
        ["City", "Discount"],
        [("NYC", "AA"), ("Paris", "NoDiscount"), ("Lille", "AF")],
    )
    instance = Instance(flights, hotels)
    print("Flight table:")
    print(flights.pretty())
    print("\nHotel table:")
    print(hotels.pretty())
    goal = JoinPredicate.parse(
        "Flight.To = Hotel.City AND Flight.Airline = Hotel.Discount"
    )
    print(f"\nSimulated user has in mind:  {goal}")
    for name in ("BU", "TD", "L1S", "L2S"):
        result = run_inference(
            instance,
            strategy_by_name(name),
            PerfectOracle(instance, goal),
            seed=0,
        )
        print(
            f"  {name:>3}: {result.interactions} questions → "
            f"{result.predicate}"
        )
    return 0


def manager_from_args(args: argparse.Namespace):
    """Wire a :class:`~repro.service.manager.SessionManager` from the
    ``serve`` flags (kept separate so tests can check the plumbing)."""
    import os

    from .core import IndexBuilder
    from .service import (
        IndexCache,
        SessionManager,
        SharedIndexPlane,
        SharedPlanTier,
        SqliteSessionStore,
    )

    # --shared-index defaults off for a single server (nobody to share
    # with until a fleet sibling or a second process points at the same
    # store); passing it explicitly joins this server to the machine's
    # shared plane.
    plane = None
    if getattr(args, "shared_index", None) and args.store is not None:
        lease_ttl = getattr(args, "lease_ttl", 10.0)
        plane = SharedIndexPlane.if_available(
            str(args.store),
            f"solo-{os.getpid()}",
            ttl_seconds=lease_ttl if lease_ttl > 0 else 10.0,
        )
        if plane is not None:
            plane.reap()

    # The plan cache's shared tier piggybacks on the store file for its
    # registry, like the index plane; without a store (or /dev/shm) the
    # cache still runs, per-process only.
    plan_cache = getattr(args, "plan_cache", True)
    shared_plan = None
    if plan_cache and args.store is not None:
        lease_ttl = getattr(args, "lease_ttl", 10.0)
        shared_plan = SharedPlanTier.if_available(
            str(args.store),
            f"solo-{os.getpid()}",
            ttl_seconds=lease_ttl if lease_ttl > 0 else 10.0,
        )
        if shared_plan is not None:
            shared_plan.reap()

    # The cache (and its builder, which carries --shard-rows) is built
    # here because --index-cache-size is a cache knob; the manager only
    # needs build_workers to size its off-loop executor — a manager
    # handed an explicit cache never constructs a builder of its own.
    return SessionManager(
        index_cache=IndexCache(
            capacity=args.index_cache_size,
            builder=IndexBuilder(
                shard_rows=args.shard_rows, workers=args.build_workers
            ),
            shared=plane,
        ),
        max_sessions=args.max_sessions,
        ttl_seconds=args.session_ttl if args.session_ttl > 0 else None,
        build_workers=args.build_workers,
        speculate=args.speculate,
        speculation_slots=args.speculation_slots,
        speculation_min_think_seconds=args.speculation_min_think,
        speculation_depth=args.speculation_depth,
        kernel_batch=args.kernel_batch,
        batch_window_seconds=args.batch_window,
        batch_max=args.batch_max,
        plan_cache=plan_cache,
        plan_cache_entries=getattr(args, "plan_cache_entries", 1024),
        shared_plan=shared_plan,
        store=(
            SqliteSessionStore(str(args.store))
            if args.store is not None
            else None
        ),
        checkpoint_every=args.checkpoint_every,
    )


def _cmd_serve_fleet(args: argparse.Namespace) -> int:
    """The ``serve --workers N`` path: front router + worker fleet."""
    import asyncio

    from .service import Fleet, FleetConfig, FleetRouter

    if args.store is None:
        raise SystemExit(
            "serve --workers requires --store: the fleet's workers "
            "share sessions through the durable store's lease protocol"
        )
    if args.lease_ttl <= 0:
        raise SystemExit("--lease-ttl must be positive in fleet mode")
    config = FleetConfig(
        store_path=str(args.store),
        workers=args.workers,
        host=args.host,
        lease_ttl_seconds=args.lease_ttl,
        checkpoint_every=args.checkpoint_every,
        max_sessions=args.max_sessions,
        ttl_seconds=args.session_ttl if args.session_ttl > 0 else None,
        build_workers=args.build_workers,
        speculate=args.speculate,
        kernel_batch=args.kernel_batch,
        shared_index=(
            args.shared_index if args.shared_index is not None else True
        ),
        plan_cache=args.plan_cache,
        plan_cache_entries=args.plan_cache_entries,
    )

    async def run() -> None:
        import signal as signal_module

        fleet = Fleet(config)
        await fleet.start()
        router = FleetRouter(fleet)
        server = await router.start(args.host, args.port)
        sockname = server.sockets[0].getsockname()
        print(
            f"fleet of {args.workers} workers serving on "
            f"http://{sockname[0]}:{sockname[1]}",
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal_module.SIGTERM, signal_module.SIGINT):
            loop.add_signal_handler(signum, stop.set)
        await stop.wait()
        print("draining fleet", flush=True)
        # Graceful shutdown: every worker checkpoints + demotes its
        # sessions and releases its leases before the processes exit.
        await router.shutdown(drain=True)

    asyncio.run(run())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .service import ServiceApp, run_server

    if args.workers > 1:
        return _cmd_serve_fleet(args)
    manager = manager_from_args(args)
    try:
        asyncio.run(run_server(ServiceApp(manager), args.host, args.port))
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        # The CLI created the manager (and through it the store), so it
        # releases both: drain the pools, flush pending journal ops,
        # then close the SQLite connection.
        manager.close(wait=True)
        if manager.store is not None:
            manager.store.close()
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    handlers = {
        "infer": _cmd_infer,
        "generate": _cmd_generate,
        "experiment": _cmd_experiment,
        "demo": _cmd_demo,
        "serve": _cmd_serve,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
