"""The most-specific-predicate operator ``T`` (§3 of the paper).

For a Cartesian tuple ``t = (t_R, t_P)``::

    T(t)  = {(A_i, B_j) | t_R[A_i] = t_P[B_j]}
    T(U)  = ∩_{t ∈ U} T(t)            (T(∅) = Ω)

``T(t)`` is the most specific equijoin predicate selecting ``t``, and the
fundamental fact driving everything else is::

    t ∈ R ⋈_θ P   iff   θ ⊆ T(t)

so a predicate selects a set of tuples ``U`` iff it is contained in
``T(U)``.
"""

from __future__ import annotations

from typing import Iterable

from ..relational.predicate import JoinPredicate
from ..relational.relation import Instance, Row

__all__ = [
    "most_specific_predicate",
    "most_specific_for_set",
    "signature_bits",
    "pairs_from_bits",
    "bits_from_pairs",
]


def most_specific_predicate(
    instance: Instance, tuple_pair: tuple[Row, Row]
) -> JoinPredicate:
    """``T(t)`` — all attribute pairs on which the two rows agree."""
    r_row, p_row = tuple_pair
    left_attrs = instance.left.schema.attributes
    right_attrs = instance.right.schema.attributes
    return JoinPredicate(
        (a, b)
        for i, a in enumerate(left_attrs)
        for j, b in enumerate(right_attrs)
        if r_row[i] == p_row[j]
    )


def most_specific_for_set(
    instance: Instance, tuples: Iterable[tuple[Row, Row]]
) -> JoinPredicate:
    """``T(U) = ∩_{t∈U} T(t)``; the empty set yields ``Ω``.

    This is the predicate returned to the user at the end of inference
    (``T(S+)``), which §3.3 shows is instance-equivalent to the goal.
    """
    result: frozenset | None = None
    for tuple_pair in tuples:
        pairs = most_specific_predicate(instance, tuple_pair).pairs
        result = pairs if result is None else result & pairs
        if not result:
            break
    if result is None:
        return JoinPredicate(instance.omega)
    return JoinPredicate(result)


def signature_bits(instance: Instance, tuple_pair: tuple[Row, Row]) -> int:
    """``T(t)`` encoded as a bitmask over Ω in canonical (row-major) order.

    Bit ``i * m + j`` is set iff ``t_R[A_i] = t_P[B_j]`` where ``m`` is the
    arity of ``P``.  Python integers are unbounded, so any Ω size works.
    """
    r_row, p_row = tuple_pair
    m = instance.right.arity
    bits = 0
    for i, r_val in enumerate(r_row):
        base = i * m
        for j, p_val in enumerate(p_row):
            if r_val == p_val:
                bits |= 1 << (base + j)
    return bits


def pairs_from_bits(instance: Instance, bits: int) -> JoinPredicate:
    """Decode a bitmask back into a :class:`JoinPredicate`."""
    omega = instance.omega
    return JoinPredicate(
        omega[position] for position in range(len(omega)) if bits >> position & 1
    )


def bits_from_pairs(instance: Instance, predicate: JoinPredicate) -> int:
    """Encode a :class:`JoinPredicate` as a bitmask over Ω."""
    omega = instance.omega
    index = {pair: position for position, pair in enumerate(omega)}
    bits = 0
    for pair in predicate.pairs:
        bits |= 1 << index[pair]
    return bits
