"""Incremental cross-step lookahead planner.

:mod:`repro.core.fast_lookahead` computes every step's lookahead from
scratch: the ``(|N|, |N|)`` needle tensor, the subset/certainty matrices
``SUB``/``C1P``, and the distinct-needle factorisation ``U`` are all
rebuilt on each ``propose()``, even though an answer only ever *shrinks*
the knowledge state — ``T(S+)`` intersects, the negative set appends,
and the informative set loses rows.  That recomputation is exactly the
L2S cost the paper reports as dominant (§5.3) and the ROADMAP's open
cross-step-reuse item.

:class:`IncrementalLookaheadPlanner` owns those structures *across*
steps and maintains them under :meth:`advance`:

* a **positive** answer with mask ``π`` intersects every needle
  (``needles &= π`` — the needle of ``(a, q)`` is ``T(S+) ∩ T_a ∩ T_q``)
  and drops the rows/columns of newly-certain classes; for L2S the
  distinct-needle table re-uniques over ``|U|`` rows instead of
  ``|N|²``, and certainty flags — which are monotone — merge by OR with
  only the still-False entries re-tested;
* a **negative** answer leaves needles, ``SUB`` and ``U`` untouched —
  it only adds one mask ``ν``, so re-certification is a *single* masked
  row test (``C1P |= needles ⊆ ν``; for L2S ``cn_u |= U ⊆ ν`` and
  ``certain_u |= (U ∩ T_k) ⊆ ν``) plus the same row/column deletions,
  where the from-scratch path re-tests against *every* accumulated
  negative each step.

Depth 1 (and the first level of depth ≥ 3) needs no needle
factorisation, so those planners skip the ``U`` machinery entirely and
maintain ``C1P`` directly; only the L2S planner carries
``U``/``inverse`` and the per-distinct-needle tables ``SUB_U`` /
``certain_u`` that feed its ``(|N|, |U|) × (|U|, |N|)`` contraction.

All updates are row/column deletions plus one rank-one style refresh —
never a rebuild.  Every quantity is integer-valued (float64 sums stay
exact far below 2⁵³), so the produced entropies are **bit-for-bit
identical** to :func:`~repro.core.fast_lookahead.
entropies_for_informative` (property-tested in
``tests/core/test_planner.py``).

For depth > 2 the planner still routes through the same lifecycle: the
maintained ``SUB``/``C1P`` matrices answer "which classes stay
informative after labeling ``a`` with ``α``" for the outermost level
without any state simulation, and the recursion below that level runs
the reference implementation — so ``LkS(depth ≥ 3)`` no longer bypasses
cross-step state.

Degenerate instances (huge ``|N|²`` or ``|U|·|N|``) put the planner in
*scratch mode*: the lifecycle stays intact but every step delegates to
the from-scratch kernels, exactly like the pre-planner behaviour.
"""

from __future__ import annotations

import numpy as np

from . import bitset
from .entropy import (
    INFINITE_ENTROPY,
    Entropy,
    _entropy_recursive,
    _worse_of,
    best_skyline_entropy,
)
from .fast_lookahead import (
    _best_entropy_rows,
    _subset_of_any_chunked,
    entropies_for_informative,
)
from .sample import Label
from .state import InferenceState, StateDelta

__all__ = ["IncrementalLookaheadPlanner"]

#: Ceiling on the ``|N|² · n_words`` cells of the resident needle tensor.
#: The from-scratch path materialises the same tensor transiently, so the
#: planner keeping it alive is at most a 1× residency increase; beyond
#: the cap the planner degrades to per-step scratch computation.
_NEEDLE_CELL_CAP = 1 << 26

#: Ceiling on the ``|U| · |N|`` cells of the per-distinct-needle tables
#: maintained for depth 2 (two boolean matrices of this shape).
_TABLE_CELL_CAP = 1 << 25

#: Chunk bound for uint64 temporaries during (re)builds, matching
#: :mod:`repro.core.fast_lookahead`.
_CHUNK_CELLS = 1 << 23

#: Below this many ``|N|² · n_words`` cells the per-step bookkeeping of
#: the incremental path costs more than simply recomputing — the planner
#: demotes itself to scratch mode (identical results, the from-scratch
#: kernels are fast at these sizes).  Depth 1's update is so cheap that
#: only the fixed numpy call overhead matters, hence the higher floor;
#: depth 2 keeps winning down to much smaller matrices because scratch
#: re-sorts the |N|² needle rows and re-scans every accumulated negative
#: each step.
_SCRATCH_FLOOR_CELLS = {1: 1 << 14, 2: 1 << 10}
_DEEP_SCRATCH_FLOOR_CELLS = 1 << 10


def _or_reduce_groups(
    matrix: np.ndarray, remap: np.ndarray, n_groups: int
) -> np.ndarray:
    """OR the rows of ``matrix`` that share a ``remap`` value.

    ``remap`` maps each row to its group id in ``0..n_groups-1`` and is
    surjective (every group has at least one row).  Returns the
    ``(n_groups, matrix.shape[1])`` boolean OR per group.
    """
    if n_groups == 0:
        return np.zeros((0, matrix.shape[1]), dtype=bool)
    order = np.argsort(remap, kind="stable")
    sorted_remap = remap[order]
    starts = np.nonzero(np.r_[True, sorted_remap[1:] != sorted_remap[:-1]])[0]
    return np.logical_or.reduceat(matrix[order], starts, axis=0)


class IncrementalLookaheadPlanner:
    """Stateful lookahead engine for one inference session.

    Binds to one :class:`InferenceState` at a specific interaction count;
    :meth:`in_sync` tells whether a given state is the one the planner
    mirrors, :meth:`advance` applies one label's delta, and
    :meth:`entropies` produces the ``entropy^depth`` table for every
    informative class from the maintained structures.
    """

    def __init__(
        self,
        state: InferenceState,
        depth: int,
        scratch_floor_cells: int | None = None,
    ):
        if depth < 1:
            raise ValueError("lookahead depth must be >= 1")
        self.depth = depth
        self._floor = (
            scratch_floor_cells
            if scratch_floor_cells is not None
            else _SCRATCH_FLOOR_CELLS.get(depth, _DEEP_SCRATCH_FLOOR_CELLS)
        )
        self._state = state
        self._interactions = state.interaction_count
        self._built_at = state.interaction_count
        self._scratch = False
        self._rebuild()

    # --- lifecycle -----------------------------------------------------------

    @property
    def state(self) -> InferenceState:
        """The state this planner is bound to (read-only).

        The plan cache derives the canonical state key from it —
        ``state.labeled_classes()`` plus the index content fingerprint
        identify the scoring problem this planner would solve (see
        :mod:`repro.core.plan_cache`).
        """
        return self._state

    @property
    def mode(self) -> str:
        """``"incremental"`` while the maintained matrices serve each
        step, ``"scratch"`` once the planner demoted itself to the
        from-scratch kernels — the planner-mode component of the
        service's per-session progress feed."""
        return "scratch" if self._scratch else "incremental"

    def in_sync(self, state: InferenceState) -> bool:
        """True iff the planner mirrors exactly this state, right now."""
        return (
            self._state is state
            and self._interactions == state.interaction_count
        )

    def tracks(self, state: InferenceState) -> bool:
        """True iff the planner mirrors this state as of one label ago —
        the precondition for :meth:`advance` after a ``record()``."""
        return (
            self._state is state
            and self._interactions == state.interaction_count - 1
        )

    def advance(self, delta: StateDelta, state: InferenceState) -> bool:
        """Apply one label's delta; False when a resync is required.

        Must be called once per :meth:`InferenceState.record` on the
        tracked state (the session does this through
        :meth:`Strategy.observe`).  A ``False`` return means the caller
        should discard the planner and rebuild lazily.
        """
        if not self.tracks(state):
            return False
        if self._scratch:
            self._interactions = state.interaction_count
            return True
        if delta.removed is None:
            # Only possible when the state's informative set was never
            # materialised — but building this planner materialised it,
            # so a delta without removal info cannot belong to the
            # tracked state; resync.
            return False
        new_ids = state.informative_ids_array()
        # removed ⊆ ids and both are sorted unique — searchsorted beats
        # np.isin; the array_equal check below still catches a delta
        # that does not belong to the maintained set.
        keep = np.ones(self.ids.size, dtype=bool)
        positions = np.searchsorted(self.ids, delta.removed)
        keep[positions[positions < self.ids.size]] = False
        if keep.sum() != new_ids.size or not np.array_equal(
            self.ids[keep], new_ids
        ):
            return False  # informative set diverged from the maintained one
        if self._below_floor(new_ids.size):
            # The survivors fit under the scratch floor: don't bother
            # shrinking the matrices we are about to drop.
            self._demote_to_scratch()
            self._interactions = state.interaction_count
            return True
        row = state.index.packed_masks[delta.class_id]
        if delta.label is Label.POSITIVE:
            self._apply_positive(keep, row, new_ids)
        else:
            self._apply_negative(keep, row, new_ids)
        self._interactions = state.interaction_count
        return True

    def _below_floor(self, n: int) -> bool:
        return n * n * self._state.index.n_words < self._floor

    def _demote_to_scratch(self) -> None:
        self._scratch = True
        self.t2 = self.needles = self.sub = self.c1p = None
        self.uniq = self.inverse = self.cn_u = None
        self.sub_u = self.certain_u = None

    def copy(self, state: InferenceState) -> "IncrementalLookaheadPlanner":
        """An independent planner bound to ``state`` — a copy of the
        tracked state at the same interaction count (session forks use
        this so speculative branches advance without touching the
        original).

        The copy is O(1): the maintained arrays are *shared*, which is
        safe because every update in :meth:`advance` is persistent-style
        — shrink/refresh operations produce new arrays (fancy indexing,
        out-of-place boolean algebra) and only ever mutate arrays
        created within the same call.  Keep it that way: an in-place
        update of a pre-existing array here would corrupt live forks on
        other threads.
        """
        twin = object.__new__(IncrementalLookaheadPlanner)
        twin.depth = self.depth
        twin._floor = self._floor
        twin._state = state
        twin._interactions = self._interactions
        twin._built_at = self._built_at
        twin._scratch = self._scratch
        if not self._scratch:
            twin.ids = self.ids
            twin.masks = self.masks
            twin.counts = self.counts
            twin.t2 = self.t2
            twin.needles = self.needles
            twin.sub = self.sub
            twin.c1p = self.c1p
            twin.uniq = self.uniq
            twin.inverse = self.inverse
            twin.cn_u = self.cn_u
            twin.sub_u = self.sub_u
            twin.certain_u = self.certain_u
        return twin

    # --- construction --------------------------------------------------------

    def _rebuild(self) -> None:
        """Build every maintained structure from the current state."""
        state = self._state
        index = state.index
        self.ids = state.informative_ids_array().copy()
        n = self.ids.size
        n_words = index.n_words
        self.masks = index.packed_masks[self.ids]
        self.counts = index.count_array[self.ids].astype(np.float64)
        if n * n * n_words > _NEEDLE_CELL_CAP or self._below_floor(n):
            self._scratch = True
            return
        self.t2 = self.masks & state.t_plus_row[None, :]
        needles = self.t2[:, None, :] & self.masks[None, :, :]
        self.needles = needles
        self.sub = (needles == self.t2[:, None, :]).all(axis=-1)
        negatives = state.negative_rows
        self.c1p: np.ndarray | None = None
        self.uniq: np.ndarray | None = None
        self.inverse: np.ndarray | None = None
        self.cn_u: np.ndarray | None = None
        self.sub_u: np.ndarray | None = None
        self.certain_u: np.ndarray | None = None
        if self.depth != 2:
            # No needle factorisation needed: C1P is maintained directly.
            if len(negatives):
                self.c1p = self.sub | _subset_of_any_chunked(
                    needles.reshape(n * n, n_words), negatives
                ).reshape(n, n)
            else:
                self.c1p = self.sub.copy()
            return
        uniq, _, inverse, _ = bitset.unique_rows(
            needles.reshape(n * n, n_words)
        )
        if len(uniq) * n > _TABLE_CELL_CAP:
            # Degenerate |U|: stay on the from-scratch chunked path per
            # step and release the resident structures.
            self._scratch = True
            self.t2 = self.needles = self.sub = None
            return
        self.uniq = uniq
        self.inverse = inverse.reshape(n, n).astype(np.int64)
        if len(negatives):
            self.cn_u = _subset_of_any_chunked(uniq, negatives)
        else:
            self.cn_u = np.zeros(len(uniq), dtype=bool)
        # SUB_U / certain_u are built on the first advance() — after the
        # informative set has already shrunk — so a session that
        # collapses quickly never pays for full-size tables; the first
        # propose uses the transient chunked path instead.

    def _scan_needle_tables(
        self, negatives: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """The chunked per-distinct-needle scan: ``SUB_U[x, k] =
        U[x] ⊆ T_k`` and ``certain[x, k] = SUB_U[x, k] ∨ ((U[x] ∩ T_k) ⊆
        some ν)`` — the one kernel behind both the resident tables and
        the transient first-propose path."""
        uniq, masks = self.uniq, self.masks
        n = len(masks)
        n_unique = len(uniq)
        sub_u = np.empty((n_unique, n), dtype=bool)
        certain = np.empty((n_unique, n), dtype=bool)
        step = max(1, _CHUNK_CELLS // max(1, n * masks.shape[1]))
        for start in range(0, n_unique, step):
            stop = min(start + step, n_unique)
            block = uniq[start:stop]
            pure = bitset.pairwise_subset(block, masks)
            sub_u[start:stop] = pure
            if len(negatives):
                inter = block[:, None, :] & masks[None, :, :]
                for negative in negatives:
                    pure = pure | ((inter & ~negative) == 0).all(axis=-1)
            certain[start:stop] = pure
        return sub_u, certain

    def _build_tables(self, negatives: np.ndarray) -> None:
        """The depth-2 per-distinct-needle tables ``SUB_U``/``certain_u``."""
        self.sub_u, self.certain_u = self._scan_needle_tables(negatives)

    # --- incremental updates -------------------------------------------------

    def _shrink_common(self, keep: np.ndarray, new_ids: np.ndarray) -> None:
        """Row/column deletions shared by both answer polarities."""
        grid = np.ix_(keep, keep)
        self.ids = new_ids.copy()
        self.masks = self.masks[keep]
        self.counts = self.counts[keep]
        self.t2 = self.t2[keep]
        self.needles = self.needles[grid]
        self.sub = self.sub[grid]
        if self.inverse is not None:
            self.inverse = self.inverse[grid]
        if self.c1p is not None:
            self.c1p = self.c1p[grid]
        if self.certain_u is not None:
            self.certain_u = self.certain_u[:, keep]
        if self.sub_u is not None:
            self.sub_u = self.sub_u[:, keep]

    def _compact_uniques(self) -> None:
        """Drop distinct-needle rows no longer referenced by ``inverse``."""
        used_counts = np.bincount(
            self.inverse.ravel(), minlength=len(self.uniq)
        )
        used = used_counts > 0
        if used.all():
            return
        remap = np.cumsum(used, dtype=np.int64) - 1
        self.inverse = remap[self.inverse]
        self.uniq = self.uniq[used]
        self.cn_u = self.cn_u[used]
        if self.sub_u is not None:
            self.sub_u = self.sub_u[used]
            self.certain_u = self.certain_u[used]

    def _apply_negative(
        self, keep: np.ndarray, nu: np.ndarray, new_ids: np.ndarray
    ) -> None:
        """One negative mask ``ν``: needles/SUB/U untouched, one masked
        row test re-certifies, rows/columns of certain classes drop."""
        self._shrink_common(keep, new_ids)
        if self.uniq is None:
            self.c1p |= ((self.needles & ~nu) == 0).all(axis=-1)
            return
        self._compact_uniques()
        # Out-of-place: cn_u may still be shared with a fork (see copy()).
        self.cn_u = self.cn_u | ((self.uniq & ~nu) == 0).all(axis=-1)
        if self.certain_u is not None and len(self.uniq):
            n = len(self.masks)
            step = max(1, _CHUNK_CELLS // max(1, n * self.masks.shape[1]))
            for start in range(0, len(self.uniq), step):
                stop = min(start + step, len(self.uniq))
                inter = (
                    self.uniq[start:stop, None, :] & self.masks[None, :, :]
                )
                self.certain_u[start:stop] |= ((inter & ~nu) == 0).all(
                    axis=-1
                )

    def _apply_positive(
        self, keep: np.ndarray, pi: np.ndarray, new_ids: np.ndarray
    ) -> None:
        """One positive mask ``π``: intersect needles, refresh ``SUB``;
        for L2S additionally re-unique ``U`` over ``|U|`` rows, OR-merge
        the monotone flags, and re-test only the entries still False."""
        negatives = self._state.negative_rows
        self._shrink_common(keep, new_ids)
        self.t2 = self.t2 & pi
        self.needles = self.needles & pi
        sub = (self.needles == self.t2[:, None, :]).all(axis=-1)
        if self.uniq is None:
            # Shrunken needles only gain certainty: keep the old True
            # entries, add the new SUB, re-test just what is still False.
            c1p = self.c1p | sub
            if len(negatives) and not c1p.all():
                flat = c1p.reshape(-1)
                pending = np.nonzero(~flat)[0]
                rows = self.needles.reshape(flat.size, -1)[pending]
                flat[pending] = _subset_of_any_chunked(rows, negatives)
            self.sub = sub
            self.c1p = c1p
            return
        self.sub = sub
        self._compact_uniques()

        uniq2, _, remap, _ = bitset.unique_rows(self.uniq & pi)
        n_groups = len(uniq2)
        self.inverse = remap[self.inverse]
        cn2 = np.zeros(n_groups, dtype=bool)
        cn2[remap[self.cn_u]] = True
        if len(negatives) and not cn2.all():
            pending = np.nonzero(~cn2)[0]
            cn2[pending] = _subset_of_any_chunked(uniq2[pending], negatives)
        self.uniq = uniq2
        self.cn_u = cn2
        if self.sub_u is None:
            return  # tables not built yet (deferred past the first shrink)

        n = len(self.masks)
        merged = _or_reduce_groups(self.certain_u, remap, n_groups)
        sub_u = np.empty((n_groups, n), dtype=bool)
        step = max(1, _CHUNK_CELLS // max(1, n * self.masks.shape[1]))
        for start in range(0, n_groups, step):
            stop = min(start + step, n_groups)
            sub_u[start:stop] = bitset.pairwise_subset(
                uniq2[start:stop], self.masks
            )
        certain = merged | sub_u
        if len(negatives) and not certain.all():
            rows = np.nonzero(~certain.all(axis=1))[0]
            for start in range(0, len(rows), step):
                chunk = rows[start : start + step]
                inter = uniq2[chunk][:, None, :] & self.masks[None, :, :]
                acc = np.zeros((len(chunk), n), dtype=bool)
                for negative in negatives:
                    acc |= ((inter & ~negative) == 0).all(axis=-1)
                certain[chunk] |= acc
        self.sub_u = sub_u
        self.certain_u = certain

    # --- entropy production --------------------------------------------------

    def export_batch_job(self):
        """The maintained matrices as a cross-session batch job, or
        ``None`` when this planner must run its own path.

        ``None`` means: scratch mode (the from-scratch kernels serve),
        depth > 2 (no batched kernel), an empty informative set, or a
        depth-2 planner still on the transient first propose (same step
        it was built on — batching would force the resident tables a
        collapsing session never needs).  A first propose *after* a
        shrink materialises the tables here, exactly like
        :meth:`_entropies_depth2` would.  The exported arrays are the
        live structures — shared read-only, like a fork (see
        :meth:`copy`).
        """
        from .kernel_batch import BatchableEntropyJob

        if self._scratch or self.depth > 2 or self.ids.size == 0:
            return None
        if self.depth == 1:
            return BatchableEntropyJob(
                depth=1,
                ids=self.ids,
                counts=self.counts,
                sub=self.sub,
                c1p=self._c1p(),
            )
        if self.sub_u is None and self._interactions != self._built_at:
            self._build_tables(self._state.negative_rows)
        if self.sub_u is None:
            return None  # transient first propose: stay per-session
        return BatchableEntropyJob(
            depth=2,
            ids=self.ids,
            counts=self.counts,
            sub=self.sub,
            c1p=self._c1p(),
            inverse=self.inverse,
            sub_u=self.sub_u,
            certain_u=self.certain_u,
        )

    def _c1p(self) -> np.ndarray:
        """``C1P[a, k]``: classes certain after labeling ``a`` positive."""
        if self.c1p is not None:
            return self.c1p
        return self.sub | self.cn_u[self.inverse]

    def entropies(self) -> dict[int, Entropy]:
        """``entropy^depth`` for every informative class, from the
        maintained matrices — bit-for-bit what the from-scratch path in
        :mod:`repro.core.fast_lookahead` produces."""
        state = self._state
        if self._scratch:
            return entropies_for_informative(state, self.depth)
        if self.ids.size == 0:
            return {}
        if self.depth == 1:
            return self._entropies_depth1()
        if self.depth == 2:
            return self._entropies_depth2()
        return self._entropies_deep()

    def _entropies_depth1(self) -> dict[int, Entropy]:
        informative = [int(class_id) for class_id in self.ids]
        c1p = self._c1p()
        u_pos = c1p @ self.counts - 1
        u_neg = self.counts @ self.sub - 1
        return {
            class_id: (int(min(p, m)), int(max(p, m)))
            for class_id, p, m in zip(informative, u_pos, u_neg)
        }

    def _transient_tables(self) -> tuple[np.ndarray, np.ndarray]:
        """One-shot ``(SUB_U as float64, per-needle certain weights)``
        for a propose that runs before the resident tables exist —
        the same chunked scan, nothing kept."""
        sub_u, certain = self._scan_needle_tables(
            self._state.negative_rows
        )
        return sub_u.astype(np.float64), certain @ self.counts

    def _entropies_depth2(self) -> dict[int, Entropy]:
        informative = [int(class_id) for class_id in self.ids]
        counts, sub, inverse = self.counts, self.sub, self.inverse
        n = len(informative)
        n_unique = len(self.uniq)
        c1p = self._c1p()

        if self.sub_u is None and self._interactions != self._built_at:
            # First propose *after* a shrink: materialise the resident
            # tables now, at the reduced size, and maintain them from
            # here on.  The very first propose (same step the planner
            # was built on) uses the transient path instead, so sessions
            # that end — or collapse — early never pay for full tables.
            self._build_tables(self._state.negative_rows)
        if self.sub_u is None:
            sub_u_f, needle_weights = self._transient_tables()
        else:
            sub_u_f = self.sub_u.astype(np.float64)
            needle_weights = self.certain_u @ counts
        u_pp = needle_weights[inverse] - 2

        base_p = c1p @ counts
        fresh_weights = np.where(c1p, 0.0, counts[None, :])
        flat = (np.arange(n)[:, None] * n_unique + inverse).ravel()
        grouped = np.bincount(
            flat, weights=fresh_weights.ravel(), minlength=n * n_unique
        )
        z = grouped.reshape(n, n_unique) @ sub_u_f
        u_pn = base_p[:, None] + z - 2
        u_np = u_pn.T
        tot_neg = counts @ sub
        sub_f = sub.astype(np.float64)
        overlap = (sub_f * counts[:, None]).T @ sub_f
        u_nn = tot_neg[:, None] + tot_neg[None, :] - overlap - 2

        valid_pos = ~c1p
        valid_neg = ~sub.T
        u_pp_i = u_pp.astype(np.int64)
        u_pn_i = u_pn.astype(np.int64)
        u_np_i = u_np.astype(np.int64)
        u_nn_i = u_nn.astype(np.int64)
        pos_branch = _best_entropy_rows(
            np.minimum(u_pp_i, u_pn_i),
            np.maximum(u_pp_i, u_pn_i),
            valid_pos,
        )
        neg_branch = _best_entropy_rows(
            np.minimum(u_np_i, u_nn_i),
            np.maximum(u_np_i, u_nn_i),
            valid_neg,
        )
        return {
            class_id: min(pos, neg)
            for class_id, pos, neg in zip(
                informative, pos_branch, neg_branch
            )
        }

    def _entropies_deep(self) -> dict[int, Entropy]:
        """Depth ≥ 3: the outermost branch structure comes from the
        maintained ``SUB``/``C1P`` (no per-class state simulation); the
        levels below run the reference recursion."""
        state = self._state
        c1p = self._c1p()
        result: dict[int, Entropy] = {}
        for position, class_id in enumerate(self.ids):
            class_id = int(class_id)
            per_label: list[Entropy] = []
            for label, still_informative in (
                (Label.POSITIVE, ~c1p[position]),
                (Label.NEGATIVE, ~self.sub[:, position]),
            ):
                inner = self.ids[still_informative]
                if inner.size == 0:
                    per_label.append(INFINITE_ENTROPY)
                    continue
                committed = ((class_id, label),)
                candidates = {
                    _entropy_recursive(
                        state, committed, int(other), self.depth - 1
                    )
                    for other in inner
                }
                per_label.append(best_skyline_entropy(candidates))
            result[class_id] = _worse_of(per_label[0], per_label[1])
        return result
