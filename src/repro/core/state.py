"""Incremental inference state over a signature index.

This is the bitmask twin of :mod:`repro.core.certain`: the same Lemma
3.3/3.4 tests, evaluated per signature class, plus the bookkeeping needed
by the strategies (which classes are labeled, which are informative, how
much "certain weight" a hypothetical label would add).

The state is array-native: masks live both as Python ints (the public
API) and as packed ``uint64`` rows (:mod:`repro.core.bitset`), so the
certainty tests vectorise over whole class sets regardless of Ω width.
The informative set is maintained **incrementally**: certainty is
monotone in the sample, so each :meth:`record` only filters the previous
informative array instead of rescanning every class.

State invariants maintained throughout a session:

* ``t_plus_mask`` is the intersection of the masks of all positively
  labeled classes (``Ω`` when ``S+ = ∅``) — i.e. ``T(S+)``;
* ``negative_masks`` holds the masks of all negatively labeled classes;
* a labeled class is always certain (for its own label), so informative
  classes never contain labeled tuples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import bitset
from .sample import Label
from .signatures import SignatureIndex

__all__ = ["InferenceState", "StateDelta"]


@dataclass(frozen=True, slots=True)
class StateDelta:
    """What one :meth:`InferenceState.record` call changed.

    Consumers that maintain per-step caches (the planner subsystem in
    :mod:`repro.core.planner`) apply these deltas instead of re-deriving
    the knowledge state from scratch: certainty is monotone, so a label
    only ever *removes* classes from the informative set.

    ``removed`` lists the informative class ids dropped by this label
    (the labeled class itself plus every newly-certain class), in
    ascending order.  It is ``None`` when the informative set had not
    been materialised yet — a consumer must then resynchronise from the
    state directly.
    """

    class_id: int
    label: Label
    removed: np.ndarray | None


class InferenceState:
    """Mutable view of "what the sample tells us" over signature classes."""

    __slots__ = (
        "_index",
        "_t_plus",
        "_t_plus_row",
        "_negative_masks",
        "_negative_rows",
        "_labels",
        "_informative",
    )

    def __init__(self, index: SignatureIndex):
        self._index = index
        self._t_plus = index.omega_mask
        self._t_plus_row = bitset.pack_mask(index.omega_mask, index.n_words)
        self._negative_masks: list[int] = []
        #: ``(len(negatives), n_words)`` packed twin of ``_negative_masks``.
        self._negative_rows = np.empty((0, index.n_words), dtype=np.uint64)
        self._labels: dict[int, Label] = {}
        #: int64 array of informative class ids (canonical order), or
        #: ``None`` before the first query computes it.
        self._informative: np.ndarray | None = None

    def copy(self) -> "InferenceState":
        """An independent copy (used by lookahead simulations)."""
        twin = InferenceState.__new__(InferenceState)
        twin._index = self._index
        twin._t_plus = self._t_plus
        twin._t_plus_row = self._t_plus_row.copy()
        twin._negative_masks = list(self._negative_masks)
        twin._negative_rows = self._negative_rows.copy()
        twin._labels = dict(self._labels)
        twin._informative = (
            None if self._informative is None else self._informative.copy()
        )
        return twin

    # --- accessors ---------------------------------------------------------

    @property
    def index(self) -> SignatureIndex:
        """The underlying signature index."""
        return self._index

    @property
    def t_plus_mask(self) -> int:
        """``T(S+)`` as a bitmask (``Ω`` while no positive example exists)."""
        return self._t_plus

    @property
    def t_plus_row(self) -> np.ndarray:
        """``T(S+)`` as a packed ``(n_words,)`` row (treat as read-only)."""
        return self._t_plus_row

    @property
    def negative_masks(self) -> tuple[int, ...]:
        """Masks of the negatively labeled classes."""
        return tuple(self._negative_masks)

    @property
    def negative_rows(self) -> np.ndarray:
        """Packed ``(len(negatives), n_words)`` negative masks
        (treat as read-only)."""
        return self._negative_rows

    @property
    def has_positive(self) -> bool:
        """True iff at least one positive example has been recorded."""
        return any(
            label is Label.POSITIVE for label in self._labels.values()
        )

    def label_of_class(self, class_id: int) -> Label | None:
        """The label recorded for ``class_id`` (None when unlabeled)."""
        return self._labels.get(class_id)

    def labeled_classes(self) -> tuple[tuple[int, Label], ...]:
        """All ``(class_id, label)`` pairs in recording order.

        This is the complete mutable state of a session relative to its
        index: replaying the pairs through :meth:`record` reconstructs
        ``T(S+)``, the negative masks, and the informative set — the basis
        of the snapshot/resume machinery in :mod:`repro.core.serialize`.
        """
        return tuple(self._labels.items())

    @property
    def interaction_count(self) -> int:
        """Number of labels recorded so far."""
        return len(self._labels)

    # --- mutation ------------------------------------------------------------

    def record(self, class_id: int, label: Label) -> StateDelta:
        """Record the user's label for (a representative of) a class.

        Returns a :class:`StateDelta` describing exactly what shrank, so
        stateful consumers (strategy planners) can update their caches
        incrementally instead of recomputing from the full state.
        """
        existing = self._labels.get(class_id)
        if existing is not None and existing is not label:
            raise ValueError(
                f"class {class_id} already labeled {existing}; "
                f"conflicting label {label}"
            )
        self._labels[class_id] = label
        mask = self._index[class_id].mask
        if label is Label.POSITIVE:
            self._t_plus &= mask
            self._t_plus_row &= self._index.packed_masks[class_id]
        else:
            self._negative_masks.append(mask)
            self._negative_rows = np.concatenate(
                [
                    self._negative_rows,
                    self._index.packed_masks[class_id : class_id + 1],
                ]
            )
        removed = self._refresh_informative(class_id)
        return StateDelta(class_id=class_id, label=label, removed=removed)

    def _refresh_informative(self, labeled_id: int) -> np.ndarray | None:
        """Shrink the informative set after one more label.

        Certainty is monotone — a class certain before the new label stays
        certain — so the previous informative array is the only candidate
        pool; no full rescan of the index is needed.  Returns the dropped
        ids (ascending), or ``None`` when the informative set was never
        materialised.
        """
        if self._informative is None:
            return None  # never queried yet; computed lazily on first use
        previous = self._informative
        candidates = previous[previous != labeled_id]
        if candidates.size:
            packed = self._index.packed_masks[candidates]
            certain = bitset.certain_rows(
                packed, self._t_plus_row, self._negative_rows
            )
            newly_certain = candidates[certain]
            candidates = candidates[~certain]
        else:
            newly_certain = candidates
        self._informative = candidates
        if candidates.size < previous.size - newly_certain.size:
            # labeled_id was informative and got filtered out above
            removed = np.sort(
                np.concatenate(
                    [newly_certain, np.array([labeled_id], dtype=np.int64)]
                )
            )
        else:
            removed = newly_certain
        return removed

    # --- certainty tests (Lemmas 3.3 / 3.4 on masks) -------------------------

    def is_certain_positive(self, class_id: int) -> bool:
        """``T(S+) ⊆ T(t)`` for tuples of this class."""
        mask = self._index[class_id].mask
        return self._t_plus & ~mask == 0

    def is_certain_negative(self, class_id: int) -> bool:
        """``∃t′∈S−. T(S+) ∩ T(t) ⊆ T(t′)`` for tuples of this class."""
        needle = self._t_plus & self._index[class_id].mask
        return any(needle & ~neg == 0 for neg in self._negative_masks)

    def is_certain(self, class_id: int) -> bool:
        """True iff every tuple of the class is already uninformative."""
        return self.is_certain_positive(class_id) or self.is_certain_negative(
            class_id
        )

    def forced_label(self, class_id: int) -> Label | None:
        """The label certainty forces on the class, if any."""
        if self.is_certain_positive(class_id):
            return Label.POSITIVE
        if self.is_certain_negative(class_id):
            return Label.NEGATIVE
        return None

    def is_consistent_with(self, class_id: int, label: Label) -> bool:
        """Would labeling this class with ``label`` keep the sample
        consistent?  (For informative classes both answers always do;
        this test matters when an oracle may err.)"""
        if label is Label.POSITIVE:
            return not self.is_certain_negative(class_id)
        return not self.is_certain_positive(class_id)

    # --- informative classes ------------------------------------------------

    def informative_ids_array(self) -> np.ndarray:
        """Informative class ids as an int64 array (canonical order).

        The array is the state's working copy — treat as read-only.
        """
        if self._informative is None:
            index = self._index
            certain = bitset.certain_rows(
                index.packed_masks, self._t_plus_row, self._negative_rows
            )
            if self._labels:
                for class_id in self._labels:
                    certain[class_id] = True
            self._informative = np.nonzero(~certain)[0].astype(np.int64)
        return self._informative

    def informative_class_ids(self) -> list[int]:
        """Ids of classes still informative, in canonical order."""
        return [int(class_id) for class_id in self.informative_ids_array()]

    def has_informative(self) -> bool:
        """True iff at least one informative class remains (¬Γ)."""
        return self.informative_ids_array().size > 0

    # --- hypothetical gains (entropy support) ---------------------------------

    def newly_certain_weight(
        self, extra: list[tuple[int, Label]]
    ) -> int:
        """Tuple count of currently-informative classes that become certain
        after additionally labeling ``extra`` (class-id, label) pairs,
        **minus** the newly labeled tuples themselves.

        This is exactly ``|Uninf(S ∪ extra) \\ Uninf(S)|`` for the paper's
        counting convention (validated against Figure 5 and the §4.4
        walk-through in the tests): previously-certain classes never
        revert, and each extra label accounts for one tuple that is asked
        rather than deduced.
        """
        index = self._index
        t_plus_row = self._t_plus_row.copy()
        extra_rows: list[np.ndarray] = []
        for class_id, label in extra:
            if label is Label.POSITIVE:
                t_plus_row &= index.packed_masks[class_id]
            else:
                extra_rows.append(index.packed_masks[class_id])
        if extra_rows:
            negatives = np.concatenate(
                [self._negative_rows, np.array(extra_rows, dtype=np.uint64)]
            )
        else:
            negatives = self._negative_rows
        # Only currently-informative classes can become newly certain
        # (certainty is monotone), so the maintained array suffices.
        informative = self.informative_ids_array()
        certain = bitset.certain_rows(
            index.packed_masks[informative], t_plus_row, negatives
        )
        weight = int(index.count_array[informative][certain].sum())
        return weight - len(extra)

    # --- result ---------------------------------------------------------------

    def result_mask(self) -> int:
        """``T(S+)`` — the mask of the predicate returned at the end."""
        return self._t_plus
