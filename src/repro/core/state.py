"""Incremental inference state over a signature index.

This is the bitmask twin of :mod:`repro.core.certain`: the same Lemma
3.3/3.4 tests, evaluated per signature class with integer masks, plus the
bookkeeping needed by the strategies (which classes are labeled, which are
informative, how much "certain weight" a hypothetical label would add).

State invariants maintained throughout a session:

* ``t_plus_mask`` is the intersection of the masks of all positively
  labeled classes (``Ω`` when ``S+ = ∅``) — i.e. ``T(S+)``;
* ``negative_masks`` holds the masks of all negatively labeled classes;
* a labeled class is always certain (for its own label), so informative
  classes never contain labeled tuples.
"""

from __future__ import annotations

from .sample import Label
from .signatures import SignatureIndex

__all__ = ["InferenceState"]


class InferenceState:
    """Mutable view of "what the sample tells us" over signature classes."""

    __slots__ = (
        "_index",
        "_t_plus",
        "_negative_masks",
        "_labels",
        "_informative_cache",
    )

    def __init__(self, index: SignatureIndex):
        self._index = index
        self._t_plus = index.omega_mask
        self._negative_masks: list[int] = []
        self._labels: dict[int, Label] = {}
        self._informative_cache: list[int] | None = None

    def copy(self) -> "InferenceState":
        """An independent copy (used by lookahead simulations)."""
        twin = InferenceState(self._index)
        twin._t_plus = self._t_plus
        twin._negative_masks = list(self._negative_masks)
        twin._labels = dict(self._labels)
        twin._informative_cache = (
            None
            if self._informative_cache is None
            else list(self._informative_cache)
        )
        return twin

    # --- accessors ---------------------------------------------------------

    @property
    def index(self) -> SignatureIndex:
        """The underlying signature index."""
        return self._index

    @property
    def t_plus_mask(self) -> int:
        """``T(S+)`` as a bitmask (``Ω`` while no positive example exists)."""
        return self._t_plus

    @property
    def negative_masks(self) -> tuple[int, ...]:
        """Masks of the negatively labeled classes."""
        return tuple(self._negative_masks)

    @property
    def has_positive(self) -> bool:
        """True iff at least one positive example has been recorded."""
        return any(
            label is Label.POSITIVE for label in self._labels.values()
        )

    def label_of_class(self, class_id: int) -> Label | None:
        """The label recorded for ``class_id`` (None when unlabeled)."""
        return self._labels.get(class_id)

    @property
    def interaction_count(self) -> int:
        """Number of labels recorded so far."""
        return len(self._labels)

    # --- mutation ------------------------------------------------------------

    def record(self, class_id: int, label: Label) -> None:
        """Record the user's label for (a representative of) a class."""
        existing = self._labels.get(class_id)
        if existing is not None and existing is not label:
            raise ValueError(
                f"class {class_id} already labeled {existing}; "
                f"conflicting label {label}"
            )
        self._labels[class_id] = label
        mask = self._index[class_id].mask
        if label is Label.POSITIVE:
            self._t_plus &= mask
        else:
            self._negative_masks.append(mask)
        self._informative_cache = None

    # --- certainty tests (Lemmas 3.3 / 3.4 on masks) -------------------------

    def is_certain_positive(self, class_id: int) -> bool:
        """``T(S+) ⊆ T(t)`` for tuples of this class."""
        mask = self._index[class_id].mask
        return self._t_plus & ~mask == 0

    def is_certain_negative(self, class_id: int) -> bool:
        """``∃t′∈S−. T(S+) ∩ T(t) ⊆ T(t′)`` for tuples of this class."""
        needle = self._t_plus & self._index[class_id].mask
        return any(needle & ~neg == 0 for neg in self._negative_masks)

    def is_certain(self, class_id: int) -> bool:
        """True iff every tuple of the class is already uninformative."""
        return self.is_certain_positive(class_id) or self.is_certain_negative(
            class_id
        )

    def forced_label(self, class_id: int) -> Label | None:
        """The label certainty forces on the class, if any."""
        if self.is_certain_positive(class_id):
            return Label.POSITIVE
        if self.is_certain_negative(class_id):
            return Label.NEGATIVE
        return None

    def is_consistent_with(self, class_id: int, label: Label) -> bool:
        """Would labeling this class with ``label`` keep the sample
        consistent?  (For informative classes both answers always do;
        this test matters when an oracle may err.)"""
        if label is Label.POSITIVE:
            return not self.is_certain_negative(class_id)
        return not self.is_certain_positive(class_id)

    # --- informative classes ------------------------------------------------

    def informative_class_ids(self) -> list[int]:
        """Ids of classes still informative, in canonical order.

        Cached between labels: certainty only ever grows, so the list is
        recomputed from scratch after each :meth:`record`.
        """
        if self._informative_cache is None:
            self._informative_cache = [
                cls.class_id
                for cls in self._index
                if cls.class_id not in self._labels
                and not self.is_certain(cls.class_id)
            ]
        return list(self._informative_cache)

    def has_informative(self) -> bool:
        """True iff at least one informative class remains (¬Γ)."""
        return bool(self.informative_class_ids())

    # --- hypothetical gains (entropy support) ---------------------------------

    def newly_certain_weight(
        self, extra: list[tuple[int, Label]]
    ) -> int:
        """Tuple count of currently-informative classes that become certain
        after additionally labeling ``extra`` (class-id, label) pairs,
        **minus** the newly labeled tuples themselves.

        This is exactly ``|Uninf(S ∪ extra) \\ Uninf(S)|`` for the paper's
        counting convention (validated against Figure 5 and the §4.4
        walk-through in the tests): previously-certain classes never
        revert, and each extra label accounts for one tuple that is asked
        rather than deduced.
        """
        t_plus = self._t_plus
        extra_negatives: list[int] = []
        for class_id, label in extra:
            mask = self._index[class_id].mask
            if label is Label.POSITIVE:
                t_plus &= mask
            else:
                extra_negatives.append(mask)
        negatives = self._negative_masks + extra_negatives
        index = self._index
        weight = 0
        # Only currently-informative classes can become newly certain
        # (certainty is monotone), so the cached list suffices.
        for class_id in self.informative_class_ids():
            cls = index[class_id]
            # Certain-positive under the extended sample?
            if t_plus & ~cls.mask == 0:
                weight += cls.count
                continue
            needle = t_plus & cls.mask
            if any(needle & ~neg == 0 for neg in negatives):
                weight += cls.count
        return weight - len(extra)

    # --- result ---------------------------------------------------------------

    def result_mask(self) -> int:
        """``T(S+)`` — the mask of the predicate returned at the end."""
        return self._t_plus
