"""The random baseline strategy (RND, §4.1).

Chooses an informative tuple uniformly at random from the Cartesian
product.  Classes are therefore weighted by their tuple count — a class
holding 90% of the remaining informative tuples is proposed 90% of the
time, exactly as if the tuple were drawn from ``D`` directly.
"""

from __future__ import annotations

import random

from ..state import InferenceState
from .base import StatelessStrategy

__all__ = ["RandomStrategy"]


class RandomStrategy(StatelessStrategy):
    """Uniformly random informative tuple."""

    name = "RND"
    speculative = False  # proposal is O(|informative|): cheaper than a fork

    def choose(self, state: InferenceState, rng: random.Random) -> int:
        informative = self._informative_or_raise(state)
        weights = [state.index[class_id].count for class_id in informative]
        return rng.choices(informative, weights=weights, k=1)[0]
