"""Top-down local strategy (TD, Algorithm 3).

While no positive example exists, proposes tuples whose signature is
⊆-maximal among all signatures of the product (the topmost populated
lattice nodes).  If the user rejects *all* maximal signatures, every other
signature is certain-negative by Lemma 3.4 and the goal Ω is inferred
without exhausting the Cartesian product — this fixes BU's worst case.
As soon as one positive example arrives the strategy switches to the
bottom-up behaviour (Algorithm 3 lines 3–5).
"""

from __future__ import annotations

import random

from ..state import InferenceState
from .base import StatelessStrategy
from .bottom_up import BottomUpStrategy

__all__ = ["TopDownStrategy"]


class TopDownStrategy(StatelessStrategy):
    """⊆-maximal signatures first; bottom-up after the first positive."""

    name = "TD"
    speculative = False  # proposal is O(|informative|): cheaper than a fork

    def __init__(self) -> None:
        self._bottom_up = BottomUpStrategy()

    def choose(self, state: InferenceState, rng: random.Random) -> int:
        if state.has_positive:
            return self._bottom_up.choose(state, rng)
        informative = self._informative_or_raise(state)
        maximal = state.index.maximal_class_ids
        for class_id in informative:
            if class_id in maximal:
                return class_id
        # Unreachable for honest samples: while S+ is empty every unlabeled
        # maximal class stays informative.  Kept as a safe fallback for
        # adversarial oracles.
        return self._bottom_up.choose(state, rng)
