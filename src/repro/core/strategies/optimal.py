"""The minimax-optimal strategy (§4.1).

§4.1 notes an optimal strategy exists via the standard minimax
construction but needs exponential time, rendering it unusable in
practice.  We implement it anyway (with memoisation on the canonical
knowledge state) as a yardstick: on tiny instances the ablation
benchmarks compare every practical strategy's worst case against the true
optimum.

The value of a knowledge state is the number of further interactions
needed against the worst-case honest user::

    value(K) = 0                                    if no informative class
    value(K) = 1 + min_t max_α value(K + (t, α))    otherwise

Both labels of an informative tuple keep the sample consistent, so the
max ranges over both answers.

The knowledge state is fully captured by ``(T(S+), S− signatures)``; we
canonicalise negatives by intersecting with ``T(S+)`` and keeping only
⊆-maximal masks, which makes the memo cache effective.
"""

from __future__ import annotations

import random
from functools import lru_cache

from ..sample import Label
from ..signatures import SignatureIndex
from ..state import InferenceState
from .base import StatelessStrategy

__all__ = ["OptimalStrategy"]


def _canonical_negatives(
    t_plus: int, negative_masks: tuple[int, ...]
) -> frozenset[int]:
    """Intersect with ``T(S+)`` and keep ⊆-maximal masks only.

    The certain-negative test for a class with mask σ is
    ``(T(S+) ∩ σ) ⊆ ν`` for some negative ν, which only depends on
    ``ν ∩ T(S+)``; and a negative contained in another is redundant.
    """
    reduced = {mask & t_plus for mask in negative_masks}
    return frozenset(
        mask
        for mask in reduced
        if not any(other != mask and mask & ~other == 0 for other in reduced)
    )


class OptimalStrategy(StatelessStrategy):
    """Exponential minimax strategy — only for small instances."""

    name = "OPT"

    def __init__(self, max_classes: int = 24):
        self.max_classes = max_classes
        self._cached_solver = None
        self._cached_index: SignatureIndex | None = None

    def _solver(self, index: SignatureIndex):
        if self._cached_index is index:
            return self._cached_solver
        if len(index) > self.max_classes:
            raise ValueError(
                f"OptimalStrategy is exponential; instance has "
                f"{len(index)} signature classes > max_classes="
                f"{self.max_classes}"
            )
        masks = tuple((cls.class_id, cls.mask) for cls in index)

        @lru_cache(maxsize=None)
        def value(t_plus: int, negatives: frozenset[int]) -> int:
            informative = _informative(t_plus, negatives)
            if not informative:
                return 0
            return 1 + min(
                max(
                    value(*_after(t_plus, negatives, mask, Label.POSITIVE)),
                    value(*_after(t_plus, negatives, mask, Label.NEGATIVE)),
                )
                for _, mask in informative
            )

        def _informative(
            t_plus: int, negatives: frozenset[int]
        ) -> list[tuple[int, int]]:
            out = []
            for class_id, mask in masks:
                if t_plus & ~mask == 0:
                    continue  # certain positive
                needle = t_plus & mask
                if any(needle & ~neg == 0 for neg in negatives):
                    continue  # certain negative
                out.append((class_id, mask))
            return out

        def _after(
            t_plus: int, negatives: frozenset[int], mask: int, label: Label
        ) -> tuple[int, frozenset[int]]:
            if label is Label.POSITIVE:
                new_t_plus = t_plus & mask
                return new_t_plus, _canonical_negatives(
                    new_t_plus, tuple(negatives)
                )
            return t_plus, _canonical_negatives(
                t_plus, tuple(negatives) + (mask,)
            )

        def choose(t_plus: int, negatives: frozenset[int]) -> int:
            informative = _informative(t_plus, negatives)
            best_id, best_value = None, None
            for class_id, mask in informative:
                worst = max(
                    value(*_after(t_plus, negatives, mask, Label.POSITIVE)),
                    value(*_after(t_plus, negatives, mask, Label.NEGATIVE)),
                )
                if best_value is None or worst < best_value:
                    best_id, best_value = class_id, worst
            assert best_id is not None
            return best_id

        solver = (value, choose)
        self._cached_index = index
        self._cached_solver = solver
        return solver

    def worst_case_interactions(self, index: SignatureIndex) -> int:
        """The optimal worst-case number of interactions from scratch."""
        value, _ = self._solver(index)
        return value(
            index.omega_mask, _canonical_negatives(index.omega_mask, ())
        )

    def choose(self, state: InferenceState, rng: random.Random) -> int:
        self._informative_or_raise(state)
        _, choose = self._solver(state.index)
        negatives = _canonical_negatives(
            state.t_plus_mask, state.negative_masks
        )
        return choose(state.t_plus_mask, negatives)
