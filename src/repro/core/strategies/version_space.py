"""Version-space information-gain strategy (§7 future work).

The paper's conclusions propose "lookahead strategies using probabilistic
graphical models" as the next step.  This strategy is the natural first
instance: place a **uniform prior over the candidate goal predicates**
(the non-nullable lattice nodes plus Ω — every goal is instance-
equivalent to one of them), maintain the *version space* of candidates
consistent with the sample, and ask the tuple whose answer splits the
space most evenly — i.e. maximise the Shannon information gain of the
question.

A candidate mask ``m`` is alive iff

* ``m ⊆ T(S+)``                       (selects every positive example), and
* ``m ⊄ T(t′)`` for every ``t′ ∈ S−`` (selects no negative example),

and for an informative class ``c`` the probability that the user answers
"+" under the uniform prior is ``p = |{alive m : m ⊆ T(c)}| / |alive|``.
The two degenerate values reprove the lemmas: ``p = 1`` iff ``c`` is
certain-positive and ``p = 0`` iff certain-negative (cross-validated in
the tests).

The version space can be exponential (§4.2); construction is capped and
the strategy falls back to L1S when the cap is hit.
"""

from __future__ import annotations

import math
import random

from ..lattice import LatticeTooLargeError, non_nullable_masks
from ..state import InferenceState
from .base import StatelessStrategy
from .lookahead import LookaheadSkylineStrategy

__all__ = ["VersionSpaceStrategy"]


def _binary_entropy(p: float) -> float:
    if p <= 0.0 or p >= 1.0:
        return 0.0
    return -(p * math.log2(p) + (1.0 - p) * math.log2(1.0 - p))


class VersionSpaceStrategy(StatelessStrategy):
    """Maximise the Shannon information gain per question."""

    name = "IG"

    def __init__(self, max_candidates: int = 200_000):
        self.max_candidates = max_candidates
        self._candidates: list[int] | None = None
        self._candidates_index = None
        # incremental=False: the fallback is consulted statelessly (no
        # observe lifecycle), so a cross-step planner could never stay
        # in sync — from-scratch per call is the right mode here.
        self._fallback = LookaheadSkylineStrategy(depth=1, incremental=False)

    def _candidate_masks(self, state: InferenceState) -> list[int] | None:
        """All candidate goal masks (cached per index); None when capped."""
        if self._candidates_index is state.index:
            return self._candidates
        try:
            masks = non_nullable_masks(
                state.index, cap=self.max_candidates
            )
        except LatticeTooLargeError:
            self._candidates = None
        else:
            masks.add(state.index.omega_mask)  # the all-negative goal
            self._candidates = sorted(masks)
        self._candidates_index = state.index
        return self._candidates

    def alive_candidates(self, state: InferenceState) -> list[int]:
        """The version space: candidates consistent with the sample."""
        masks = self._candidate_masks(state)
        if masks is None:
            raise LatticeTooLargeError(
                "candidate space exceeds the configured cap"
            )
        t_plus = state.t_plus_mask
        negatives = state.negative_masks
        return [
            m
            for m in masks
            if m & ~t_plus == 0
            and not any(m & ~negative == 0 for negative in negatives)
        ]

    def positive_probability(
        self, state: InferenceState, class_id: int
    ) -> float:
        """``P[user answers "+"]`` for the class under the uniform prior."""
        alive = self.alive_candidates(state)
        if not alive:
            raise ValueError("empty version space: inconsistent sample")
        mask = state.index[class_id].mask
        selecting = sum(1 for m in alive if m & ~mask == 0)
        return selecting / len(alive)

    def choose(self, state: InferenceState, rng: random.Random) -> int:
        informative = self._informative_or_raise(state)
        masks = self._candidate_masks(state)
        if masks is None:
            return self._fallback.choose(state, rng)
        alive = self.alive_candidates(state)
        total = len(alive)
        best_id = informative[0]
        best_gain = -1.0
        for class_id in informative:
            mask = state.index[class_id].mask
            selecting = sum(1 for m in alive if m & ~mask == 0)
            gain = _binary_entropy(selecting / total)
            if gain > best_gain:
                best_gain, best_id = gain, class_id
        return best_id
