"""Bottom-up local strategy (BU, Algorithm 2).

Navigates the lattice from the most general predicate (∅) towards the most
specific (Ω): always proposes an informative tuple whose signature
``T(t)`` has minimal size.  Discovers small goal predicates (especially
``∅``) almost immediately, but may need an interaction per signature class
when the user keeps answering negatively.
"""

from __future__ import annotations

import random

from ..state import InferenceState
from .base import StatelessStrategy

__all__ = ["BottomUpStrategy"]


class BottomUpStrategy(StatelessStrategy):
    """Minimal-|T(t)| informative tuple first."""

    name = "BU"
    speculative = False  # proposal is O(|informative|): cheaper than a fork

    def choose(self, state: InferenceState, rng: random.Random) -> int:
        informative = self._informative_or_raise(state)
        # Classes are canonically ordered by (signature size, mask), so the
        # first informative class already has minimal |T(t)|.
        return informative[0]
