"""Tuple-presentation strategies (§4).

* ``RND`` — random informative tuple (baseline),
* ``BU`` — bottom-up local strategy (Algorithm 2),
* ``TD`` — top-down local strategy (Algorithm 3),
* ``L1S`` / ``L2S`` / ``LkS`` — lookahead skyline strategies
  (Algorithms 4 and 6),
* ``OPT`` — exponential minimax-optimal yardstick (§4.1).
"""

from .base import NoInformativeTupleError, StatelessStrategy, Strategy
from .bottom_up import BottomUpStrategy
from .lookahead import (
    LookaheadSkylineStrategy,
    one_step_lookahead,
    two_step_lookahead,
)
from .optimal import OptimalStrategy
from .random_strategy import RandomStrategy
from .top_down import TopDownStrategy
from .version_space import VersionSpaceStrategy

__all__ = [
    "BottomUpStrategy",
    "LookaheadSkylineStrategy",
    "NoInformativeTupleError",
    "OptimalStrategy",
    "RandomStrategy",
    "StatelessStrategy",
    "Strategy",
    "TopDownStrategy",
    "VersionSpaceStrategy",
    "one_step_lookahead",
    "two_step_lookahead",
    "default_strategies",
    "strategy_by_name",
]


def default_strategies() -> list[Strategy]:
    """The five strategies compared throughout the paper's §5."""
    return [
        RandomStrategy(),
        BottomUpStrategy(),
        TopDownStrategy(),
        one_step_lookahead(),
        two_step_lookahead(),
    ]


def strategy_by_name(name: str) -> Strategy:
    """Build a strategy from its table name ("BU", "TD", "L1S", "L2S",
    "L3S", ..., "RND", "OPT")."""
    upper = name.strip().upper()
    if upper == "RND":
        return RandomStrategy()
    if upper == "BU":
        return BottomUpStrategy()
    if upper == "TD":
        return TopDownStrategy()
    if upper == "OPT":
        return OptimalStrategy()
    if upper == "IG":
        return VersionSpaceStrategy()
    if upper.startswith("L") and upper.endswith("S"):
        try:
            depth = int(upper[1:-1])
        except ValueError:
            raise ValueError(f"unknown strategy {name!r}") from None
        return LookaheadSkylineStrategy(depth=depth)
    raise ValueError(f"unknown strategy {name!r}")
