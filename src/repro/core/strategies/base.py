"""Strategy interface (§4.1).

A *strategy* Υ maps the current knowledge (signature classes + sample
state) to the next tuple to show the user.  Our strategies choose a
signature *class*; the session shows its representative tuple.  All
strategies must only ever propose informative classes — that is what
keeps the incrementally built sample consistent (§4.1).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from ..state import InferenceState

__all__ = ["Strategy", "NoInformativeTupleError"]


class NoInformativeTupleError(RuntimeError):
    """A strategy was invoked although the halt condition Γ holds."""


class Strategy(ABC):
    """Base class for tuple-presentation strategies."""

    #: Short name used in experiment tables ("BU", "TD", "L1S", ...).
    name: str = "?"

    @abstractmethod
    def choose(self, state: InferenceState, rng: random.Random) -> int:
        """Return the class id of the next tuple to present.

        ``rng`` is supplied by the session so runs are reproducible; only
        randomised strategies use it.  Must raise
        :class:`NoInformativeTupleError` when no informative class exists.
        """

    def _informative_or_raise(self, state: InferenceState) -> list[int]:
        informative = state.informative_class_ids()
        if not informative:
            raise NoInformativeTupleError(
                f"strategy {self.name} called with no informative tuples left"
            )
        return informative

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
