"""Strategy interface (§4.1) — the observe/propose lifecycle.

A *strategy* Υ maps the current knowledge (signature classes + sample
state) to the next tuple to show the user.  Our strategies choose a
signature *class*; the session shows its representative tuple.  All
strategies must only ever propose informative classes — that is what
keeps the incrementally built sample consistent (§4.1).

Strategies are **stateful across a session**: the session calls
:meth:`Strategy.observe` after every recorded label (passing the
:class:`~repro.core.state.StateDelta` the state emitted) and
:meth:`Strategy.propose` for every question.  Lookahead strategies use
the lifecycle to maintain their planner caches incrementally
(:mod:`repro.core.planner`); the local strategies are pure functions of
the state, so they derive from :class:`StatelessStrategy`, whose
``observe`` is a no-op and whose ``propose`` delegates to the classic
``choose`` signature — a ``choose``-style strategy keeps its code
unchanged by inheriting from :class:`StatelessStrategy` instead of
:class:`Strategy` (which now requires ``propose``).

``propose``/``choose`` must stay *consistent under resync*: calling them
on a state the strategy never observed (tests and embedders do this)
must return the same class as a fresh strategy would — stateful
implementations detect the mismatch and rebuild, which is what makes
snapshot replay and session forking safe.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from ..state import InferenceState, StateDelta

__all__ = ["Strategy", "StatelessStrategy", "NoInformativeTupleError"]


class NoInformativeTupleError(RuntimeError):
    """A strategy was invoked although the halt condition Γ holds."""


class Strategy(ABC):
    """Base class for tuple-presentation strategies."""

    #: Short name used in experiment tables ("BU", "TD", "L1S", ...).
    name: str = "?"

    #: Whether the serving layer should precompute this strategy's next
    #: proposal during oracle think-time.  Worth it when ``propose`` is
    #: expensive (lookahead, minimax); the trivial local strategies set
    #: this False — forking a session costs more than their proposal.
    speculative: bool = True

    @abstractmethod
    def propose(self, state: InferenceState, rng: random.Random) -> int:
        """Return the class id of the next tuple to present.

        ``rng`` is supplied by the session so runs are reproducible; only
        randomised strategies use it.  Must raise
        :class:`NoInformativeTupleError` when no informative class exists.
        """

    def observe(self, delta: StateDelta, state: InferenceState) -> None:
        """One label was recorded on ``state``.

        Called by the session after every :meth:`InferenceState.record`.
        Stateful strategies fold the delta into their caches here; the
        default is a no-op.
        """

    def fork(
        self, state: InferenceState, twin_state: InferenceState
    ) -> "Strategy":
        """The strategy for a forked session over ``twin_state`` (a copy
        of ``state`` at the same interaction count).

        Stateless strategies are shareable and return ``self``; stateful
        ones return an independent clone so a speculative branch can
        advance without touching the original.
        """
        del state, twin_state
        return self

    def choose(self, state: InferenceState, rng: random.Random) -> int:
        """Single-shot form of :meth:`propose` (kept for embedders and
        tests that drive a bare state without a session)."""
        return self.propose(state, rng)

    def progress(self) -> dict[str, object] | None:
        """Structured planner progress for observability feeds, or
        ``None`` when the strategy keeps no cross-step state.  Stateful
        strategies report their planner mode and the last chosen
        entropy; the payload must be JSON-serialisable."""
        return None

    def _informative_or_raise(self, state: InferenceState) -> list[int]:
        informative = state.informative_class_ids()
        if not informative:
            raise NoInformativeTupleError(
                f"strategy {self.name} called with no informative tuples left"
            )
        return informative

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class StatelessStrategy(Strategy):
    """Adapter for strategies that are pure functions of the state.

    Subclasses implement the classic :meth:`choose`; ``propose``
    delegates to it and ``observe`` stays a no-op, so a stateless
    strategy may be shared between a session and its speculative forks.
    """

    @abstractmethod
    def choose(self, state: InferenceState, rng: random.Random) -> int:
        """Return the class id of the next tuple to present."""

    def propose(self, state: InferenceState, rng: random.Random) -> int:
        return self.choose(state, rng)
