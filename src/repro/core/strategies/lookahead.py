"""Lookahead skyline strategies (L1S / L2S / LkS — Algorithms 4 and 6).

These strategies quantify how much of the lattice each candidate label
would prune.  For every informative class they compute ``entropy^k`` and
pick the class whose entropy is the skyline element with the largest
``min`` component — i.e. the best guaranteed pruning under the user's
worst answer, with the best optimistic pruning as tie-breaker.

The strategy is **stateful**: it owns an
:class:`~repro.core.planner.IncrementalLookaheadPlanner` that keeps the
lookahead matrices alive across steps and folds each observed label in
incrementally (the informative set only shrinks), instead of rebuilding
them from scratch on every ``propose``.  The planner covers *every*
depth — depth ≤ 2 fully incrementally, deeper lookaheads reusing the
maintained first-level matrices for their outermost branch — so no
depth silently bypasses cross-step state.  Proposals are bit-for-bit
identical to the from-scratch path (property-tested); three knobs force
the slower paths when reproducing absolute timings:

* ``incremental=False`` — from-scratch vectorised computation per step
  (:mod:`repro.core.fast_lookahead`), no cross-step reuse;
* ``vectorised=False`` — the recursive pure-Python reference
  (:mod:`repro.core.entropy`);
* the planner itself degrades to the from-scratch path on degenerate
  instances (see :mod:`repro.core.planner`).
"""

from __future__ import annotations

import math
import random
from typing import Callable

from ..entropy import Entropy, best_skyline_entropy, entropy_k_of_class
from ..fast_lookahead import entropies_for_informative
from ..planner import IncrementalLookaheadPlanner
from ..state import InferenceState, StateDelta
from .base import Strategy

__all__ = ["LookaheadSkylineStrategy", "one_step_lookahead", "two_step_lookahead"]


class LookaheadSkylineStrategy(Strategy):
    """k-step lookahead skyline strategy (LkS).

    ``incremental=False`` disables the cross-step planner (every step
    recomputes from scratch); ``vectorised=False`` additionally forces
    the straightforward reference implementation.  Results are identical
    under every combination.
    """

    def __init__(
        self,
        depth: int = 1,
        vectorised: bool = True,
        incremental: bool = True,
    ):
        if depth < 1:
            raise ValueError("lookahead depth must be >= 1")
        self.depth = depth
        self.vectorised = vectorised
        self.incremental = incremental
        self.name = f"L{depth}S"
        self._planner: IncrementalLookaheadPlanner | None = None
        #: Optional cross-session batching hook: given the in-sync
        #: planner, return its entropy table (produced by a shared
        #: :class:`~repro.core.kernel_batch.KernelBatchScheduler`) or
        #: ``None`` to decline — the per-session path then runs.  The
        #: server installs this; forks inherit it so speculative
        #: branches ride the same batches.
        self.entropy_router: (
            Callable[
                [IncrementalLookaheadPlanner], dict[int, Entropy] | None
            ]
            | None
        ) = None
        self._primed: (
            tuple[InferenceState, int, dict[int, Entropy]] | None
        ) = None
        #: The skyline entropy of the last proposal — the per-session
        #: event feed reports it as the session's entropy trajectory.
        self._last_entropy: Entropy | None = None

    # --- lifecycle -----------------------------------------------------------

    def observe(self, delta: StateDelta, state: InferenceState) -> None:
        """Fold one recorded label into the planner's caches."""
        planner = self._planner
        if planner is None:
            return
        if not planner.tracks(state) or not planner.advance(delta, state):
            # The state moved in a way the planner did not witness (a
            # resync, a different session, a replayed snapshot) — drop
            # the caches; the next propose rebuilds them.
            self._planner = None

    def fork(
        self, state: InferenceState, twin_state: InferenceState
    ) -> "LookaheadSkylineStrategy":
        twin = LookaheadSkylineStrategy(
            depth=self.depth,
            vectorised=self.vectorised,
            incremental=self.incremental,
        )
        planner = self._planner
        if planner is not None and planner.in_sync(state):
            twin._planner = planner.copy(twin_state)
        twin.entropy_router = self.entropy_router
        twin._last_entropy = self._last_entropy
        return twin

    def progress(self) -> dict[str, object] | None:
        """Planner mode plus the last chosen skyline entropy (the
        structured progress delta streamed per session).  Infinite
        entropy components serialise as ``None``."""
        planner = self._planner
        entropy = self._last_entropy
        return {
            "depth": self.depth,
            "mode": planner.mode if planner is not None else None,
            "entropy": (
                [v if math.isfinite(v) else None for v in entropy]
                if entropy is not None
                else None
            ),
        }

    def planner_for(
        self, state: InferenceState
    ) -> IncrementalLookaheadPlanner:
        """The in-sync planner for ``state``, (re)built when stale —
        public so a batching layer can export its matrices."""
        planner = self._planner
        if planner is None or not planner.in_sync(state):
            planner = IncrementalLookaheadPlanner(state, self.depth)
            self._planner = planner
        return planner

    # Internal callers predate the public name.
    _planner_for = planner_for

    # --- proposal ------------------------------------------------------------

    def prime_entropies(
        self, state: InferenceState, entropies: dict[int, Entropy]
    ) -> None:
        """Install a one-shot entropy table for the next ``propose`` on
        exactly this state at its current interaction count — how the
        server hands a batch-produced result to the ordinary proposal
        path.  Consumed (or invalidated) by the next ``_entropies``."""
        self._primed = (state, state.interaction_count, entropies)

    def _entropies(self, state: InferenceState) -> dict[int, Entropy]:
        primed = self._primed
        if primed is not None:
            self._primed = None
            primed_state, primed_count, table = primed
            if (
                primed_state is state
                and primed_count == state.interaction_count
            ):
                return table
        if not self.vectorised:
            return {
                class_id: entropy_k_of_class(state, class_id, self.depth)
                for class_id in state.informative_class_ids()
            }
        if not self.incremental:
            return entropies_for_informative(state, self.depth)
        planner = self.planner_for(state)
        router = self.entropy_router
        if router is not None:
            table = router(planner)
            if table is not None:
                return table
        return planner.entropies()

    def propose(self, state: InferenceState, rng: random.Random) -> int:
        informative = self._informative_or_raise(state)
        entropies: dict[int, Entropy] = self._entropies(state)
        best = best_skyline_entropy(entropies.values())
        self._last_entropy = best
        # Deterministic tie-break: first class (canonical order) achieving
        # the chosen entropy.
        for class_id in informative:
            if entropies[class_id] == best:
                return class_id
        raise AssertionError("best entropy must belong to some class")


def one_step_lookahead() -> LookaheadSkylineStrategy:
    """The paper's L1S (Algorithm 4)."""
    return LookaheadSkylineStrategy(depth=1)


def two_step_lookahead() -> LookaheadSkylineStrategy:
    """The paper's L2S (Algorithm 6)."""
    return LookaheadSkylineStrategy(depth=2)
