"""Lookahead skyline strategies (L1S / L2S / LkS — Algorithms 4 and 6).

These strategies quantify how much of the lattice each candidate label
would prune.  For every informative class they compute ``entropy^k`` and
pick the class whose entropy is the skyline element with the largest
``min`` component — i.e. the best guaranteed pruning under the user's
worst answer, with the best optimistic pruning as tie-breaker.

With ``vectorised=True`` (the default) depths 1–2 run on the array-native
engine of :mod:`repro.core.fast_lookahead` — whole-matrix computations
over packed masks, any Ω width; ``vectorised=False`` forces the recursive
reference in :mod:`repro.core.entropy`.  Both produce identical choices
(property-tested), so the flag only trades speed for simplicity when
reproducing the paper's absolute timings.
"""

from __future__ import annotations

import random

from ..entropy import Entropy, best_skyline_entropy
from ..fast_lookahead import entropies_for_informative
from ..state import InferenceState
from .base import Strategy

__all__ = ["LookaheadSkylineStrategy", "one_step_lookahead", "two_step_lookahead"]


class LookaheadSkylineStrategy(Strategy):
    """k-step lookahead skyline strategy (LkS).

    ``vectorised=False`` forces the straightforward reference
    implementation (useful to reproduce the paper's absolute timing
    behaviour; results are identical either way).
    """

    def __init__(self, depth: int = 1, vectorised: bool = True):
        if depth < 1:
            raise ValueError("lookahead depth must be >= 1")
        self.depth = depth
        self.vectorised = vectorised
        self.name = f"L{depth}S"

    def _entropies(self, state: InferenceState) -> dict[int, Entropy]:
        if self.vectorised:
            return entropies_for_informative(state, self.depth)
        from ..entropy import entropy_k_of_class

        return {
            class_id: entropy_k_of_class(state, class_id, self.depth)
            for class_id in state.informative_class_ids()
        }

    def choose(self, state: InferenceState, rng: random.Random) -> int:
        informative = self._informative_or_raise(state)
        entropies: dict[int, Entropy] = self._entropies(state)
        best = best_skyline_entropy(entropies.values())
        # Deterministic tie-break: first class (canonical order) achieving
        # the chosen entropy.
        for class_id in informative:
            if entropies[class_id] == best:
                return class_id
        raise AssertionError("best entropy must belong to some class")


def one_step_lookahead() -> LookaheadSkylineStrategy:
    """The paper's L1S (Algorithm 4)."""
    return LookaheadSkylineStrategy(depth=1)


def two_step_lookahead() -> LookaheadSkylineStrategy:
    """The paper's L2S (Algorithm 6)."""
    return LookaheadSkylineStrategy(depth=2)
