"""Approximate signature indexes by sampling the Cartesian product.

The paper's motivation includes instances "too big to be skimmed" (§1).
The exact :class:`~repro.core.signatures.SignatureIndex` touches every
pair of ``R × P`` once (vectorised), which is fine up to millions of
pairs but not beyond.  For larger products this module builds the index
from a uniform sample of row pairs.

Guarantees and caveats:

* every signature in the sampled index is a true signature of the full
  product (sampling never invents classes);
* class *counts* are scaled estimates (``|D| / n_pairs`` per hit);
* rare signatures may be missed entirely, in which case the inference is
  exact **for the sampled sub-instance** — the returned predicate is
  consistent with every label given, but may be distinguishable from the
  goal on unseen rare tuples.  ``coverage_probability`` quantifies the
  risk for a signature of a given frequency.
"""

from __future__ import annotations

import random

from ..relational.relation import Instance
from .index_build import index_from_signatures
from .signatures import SignatureIndex
from .specialize import signature_bits

__all__ = ["sampled_signature_index", "coverage_probability"]


def coverage_probability(
    frequency: float, n_pairs: int
) -> float:
    """Chance that a signature covering ``frequency`` of the product
    appears in a uniform sample of ``n_pairs`` pairs."""
    if not 0.0 <= frequency <= 1.0:
        raise ValueError("frequency must be within [0, 1]")
    if n_pairs < 0:
        raise ValueError("sample size must be non-negative")
    return 1.0 - (1.0 - frequency) ** n_pairs


def sampled_signature_index(
    instance: Instance,
    n_pairs: int,
    seed: int | None = None,
) -> SignatureIndex:
    """A :class:`SignatureIndex` estimated from ``n_pairs`` uniform pairs.

    Sampling is with replacement (cheap and unbiased); counts are scaled
    so that the index's ``total_weight`` approximates ``|D|``, keeping
    entropy magnitudes comparable to the exact index.
    """
    if n_pairs <= 0:
        raise ValueError("sample size must be positive")
    n_left = len(instance.left)
    n_right = len(instance.right)
    if n_left == 0 or n_right == 0:
        return SignatureIndex(instance, backend="python")
    if n_pairs >= instance.cartesian_size:
        return SignatureIndex(instance)
    rng = random.Random(seed)
    left_rows = instance.left.rows
    right_rows = instance.right.rows
    hits: dict[int, list] = {}
    for _ in range(n_pairs):
        pair = (
            left_rows[rng.randrange(n_left)],
            right_rows[rng.randrange(n_right)],
        )
        mask = signature_bits(instance, pair)
        entry = hits.get(mask)
        if entry is None:
            hits[mask] = [1, pair]
        else:
            entry[0] += 1

    # Route the estimate through the build pipeline's canonicalisation
    # (:func:`~repro.core.index_build.index_from_signatures`) so sampled
    # indexes take the same invariant-enforcing tail — ordering, packed
    # arrays, maximality — as every exact sharded or streamed build.
    scale = instance.cartesian_size / n_pairs
    found = {
        mask: (max(1, round(raw_count * scale)), representative)
        for mask, (raw_count, representative) in hits.items()
    }
    return index_from_signatures(instance, found)
