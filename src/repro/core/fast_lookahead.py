"""Vectorised lookahead entropies.

The lookahead strategies need ``entropy^k`` for *every* informative class
at every step — O(|N|²) work for L1S and O(|N|³) for L2S, which dominates
inference time exactly as the paper reports (§5.3: L2S "is the most
expensive", up to 73 s per join on their hardware).  When Ω fits into 63
bits (true for all the paper's workloads) the subset tests vectorise over
NumPy uint64 arrays; results are bit-for-bit identical to the reference
implementation in :mod:`repro.core.entropy` (property-tested).

The public entry point :func:`entropies_for_informative` transparently
falls back to the reference for wide Ω or depth > 2.
"""

from __future__ import annotations

import numpy as np

from .entropy import Entropy, INFINITE_ENTROPY, entropy_k_of_class
from .state import InferenceState

__all__ = ["entropies_for_informative", "supports_fast_path"]

_WORD_BITS = 63


def supports_fast_path(state: InferenceState, depth: int) -> bool:
    """True when the vectorised implementation can handle the instance."""
    return (
        depth in (1, 2)
        and len(state.index.instance.omega) <= _WORD_BITS
    )


def entropies_for_informative(
    state: InferenceState, depth: int
) -> dict[int, Entropy]:
    """``entropy^depth`` for every informative class.

    Dispatches to the vectorised path when possible, otherwise loops over
    the reference implementation.
    """
    informative = state.informative_class_ids()
    if not supports_fast_path(state, depth):
        return {
            class_id: entropy_k_of_class(state, class_id, depth)
            for class_id in informative
        }
    if not informative:
        return {}
    if depth == 1:
        return _entropy1_vectorised(state, informative)
    return _entropy2_vectorised(state, informative)


def _setup(state: InferenceState, informative: list[int]):
    index = state.index
    masks = np.array(
        [index[class_id].mask for class_id in informative], dtype=np.uint64
    )
    counts = np.array(
        [index[class_id].count for class_id in informative], dtype=np.int64
    )
    t_plus = np.uint64(state.t_plus_mask)
    negatives = [np.uint64(mask) for mask in state.negative_masks]
    return masks, counts, t_plus, negatives


def _certain_vector(
    masks: np.ndarray,
    t_plus: np.uint64,
    negatives: list[np.uint64],
) -> np.ndarray:
    """Boolean vector: class certain (either polarity) under the state."""
    certain = (t_plus & ~masks) == 0
    needles = t_plus & masks
    for negative in negatives:
        certain |= (needles & ~negative) == 0
    return certain


def _entropy1_vectorised(
    state: InferenceState, informative: list[int]
) -> dict[int, Entropy]:
    masks, counts, t_plus, negatives = _setup(state, informative)
    out: dict[int, Entropy] = {}
    for position, class_id in enumerate(informative):
        mask = masks[position]
        # Label +: T(S+) shrinks to t_plus & mask.
        t2 = t_plus & mask
        u_pos = int(counts[_certain_vector(masks, t2, negatives)].sum()) - 1
        # Label −: mask joins the negative list.
        u_neg = (
            int(
                counts[
                    _certain_vector(masks, t_plus, negatives + [mask])
                ].sum()
            )
            - 1
        )
        out[class_id] = (min(u_pos, u_neg), max(u_pos, u_neg))
    return out


def _entropy2_vectorised(
    state: InferenceState, informative: list[int]
) -> dict[int, Entropy]:
    masks, counts, t_plus, negatives = _setup(state, informative)
    out: dict[int, Entropy] = {}
    for position, class_id in enumerate(informative):
        per_label: list[Entropy] = []
        for is_positive in (True, False):
            mask = masks[position]
            if is_positive:
                t2, negatives1 = t_plus & mask, negatives
            else:
                t2, negatives1 = t_plus, negatives + [mask]
            certain1 = _certain_vector(masks, t2, negatives1)
            still_informative = ~certain1
            if not still_informative.any():
                per_label.append(INFINITE_ENTROPY)
                continue
            inner_masks = masks[still_informative]
            # Second label +: per inner choice t', T(S+) becomes
            # t2 & mask[t']; evaluate all inner choices as a matrix.
            t3 = (t2 & inner_masks)[:, None]  # (|inf1|, 1)
            certain_pos = (t3 & ~masks[None, :]) == 0
            needles = t3 & masks[None, :]
            for negative in negatives1:
                certain_pos |= (needles & ~negative) == 0
            u_pos = certain_pos @ counts - 2  # (|inf1|,)
            # Second label −: t_plus stays t2; inner mask joins negatives.
            base_certain_pos = (t2 & ~masks) == 0
            base_needles = t2 & masks
            certain_neg = np.broadcast_to(
                base_certain_pos, (len(inner_masks), len(masks))
            ).copy()
            for negative in negatives1:
                certain_neg |= (base_needles & ~negative) == 0
            certain_neg |= (
                base_needles[None, :] & ~inner_masks[:, None]
            ) == 0
            u_neg = certain_neg @ counts - 2
            lows = np.minimum(u_pos, u_neg)
            highs = np.maximum(u_pos, u_neg)
            # Lexicographic max of (low, high) pairs == the skyline pick.
            best_low = int(lows.max())
            best_high = int(highs[lows == best_low].max())
            per_label.append((best_low, best_high))
        out[class_id] = min(per_label)
    return out
