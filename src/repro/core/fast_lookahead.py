"""Vectorised lookahead entropies.

The lookahead strategies need ``entropy^k`` for *every* informative class
at every step — O(|N|²) work for L1S and O(|N|³) for L2S, which dominates
inference time exactly as the paper reports (§5.3: L2S "is the most
expensive", up to 73 s per join on their hardware).

Both depths are computed as whole-matrix operations over the packed mask
arrays of :mod:`repro.core.bitset` — no per-class Python loop and no
Ω-width ceiling.  The structure exploits two facts:

* Every Lemma 3.3/3.4 test a lookahead ever performs is a function of a
  *needle* ``T2[a] ∩ T_q`` (``T2[a] = T(S+) ∩ T_a``).  The ``(a, q)``
  needle matrix is massively degenerate — signature intersections
  collapse to a small set ``U`` of distinct masks — so certainty rows are
  evaluated once per *distinct* needle and gathered back, shrinking the
  naive O(|N|³) third level to O(|U|·|N|) plus O(|N|²) gathers.
* **L1S** needs only the ``(|N|, |N|)`` matrices themselves: the
  positive branch is the row sum of the first-level certainty matrix
  ``C1P`` and the negative branch is the column sum of the subset matrix
  ``SUB`` (labeling ``a`` negative makes certain exactly the classes
  whose needle is contained in ``T_a``).
* **L2S** adds one dense contraction: the sample symmetry
  ``S+(i,+)+(j,−) = S+(j,−)+(i,+)`` merges the two mixed branches into
  ``Z = G·SUB_U`` — a ``(|N|, |U|) × (|U|, |N|)`` matrix product where
  ``G`` aggregates counts of not-yet-certain classes per distinct needle
  — and the ``−,−`` branch collapses to rank-one combinations of ``SUB``.

Results are bit-for-bit identical to the reference implementation in
:mod:`repro.core.entropy` (property-tested, including Ω > 64 bits).  The
public entry point :func:`entropies_for_informative` falls back to the
reference only for depth > 2 — and even that path is array-accelerated,
because :meth:`InferenceState.newly_certain_weight` and the incremental
informative set are themselves vectorised.
"""

from __future__ import annotations

import numpy as np

from . import bitset
from .entropy import INFINITE_ENTROPY, Entropy, entropy_k_of_class
from .state import InferenceState

__all__ = ["entropies_for_informative", "supports_fast_path"]

# Bound on the elements of any uint64 temporary materialised at once
# (8M elements ≈ 64 MiB); larger intermediate products are chunked.
_CHUNK_CELLS = 1 << 23

_INT_MIN = np.iinfo(np.int64).min


def supports_fast_path(state: InferenceState, depth: int) -> bool:
    """True when the batched implementation covers the lookahead depth.

    Any Ω width is supported (masks pack into multi-word rows); only the
    depth decides, since depth > 2 uses the recursive reference.
    """
    del state  # kept for API compatibility; Ω width no longer matters
    return depth in (1, 2)


def entropies_for_informative(
    state: InferenceState, depth: int
) -> dict[int, Entropy]:
    """``entropy^depth`` for every informative class.

    Dispatches to the batched path for depth ≤ 2, otherwise loops over
    the (array-accelerated) reference implementation.
    """
    informative = state.informative_class_ids()
    if not supports_fast_path(state, depth):
        return {
            class_id: entropy_k_of_class(state, class_id, depth)
            for class_id in informative
        }
    if not informative:
        return {}
    if depth == 1:
        return _entropy1_vectorised(state, informative)
    return _entropy2_vectorised(state, informative)


def _first_level(state: InferenceState, informative: list[int]):
    """The shared ``(|N|, |N|)`` first-level matrices.

    Returns ``(masks, counts, negatives, needles, sub, c1p)`` where
    ``needles[a, q] = T2[a] ∩ T_q`` (as packed rows),
    ``sub[a, q] = T2[a] ⊆ T_q`` and ``c1p[a, k]`` marks the classes
    certain after labeling ``a`` positive.
    """
    index = state.index
    ids = np.asarray(informative, dtype=np.int64)
    masks = index.packed_masks[ids]
    counts = index.count_array[ids].astype(np.float64)
    negatives = state.negative_rows
    n = len(ids)
    t2 = masks & state.t_plus_row[None, :]
    needles = (t2[:, None, :] & masks[None, :, :]).reshape(
        n * n, masks.shape[1]
    )
    # T2[a] ⊆ T_q  ⟺  the needle equals T2[a] itself.
    sub = (
        (needles.reshape(n, n, -1) == t2[:, None, :]).all(axis=-1)
    )
    if len(negatives):
        c1p = sub | _subset_of_any_chunked(needles, negatives).reshape(n, n)
    else:
        c1p = sub
    return masks, counts, negatives, needles, sub, c1p


def _subset_of_any_chunked(
    rows: np.ndarray, others: np.ndarray
) -> np.ndarray:
    """:func:`bitset.subset_of_any` with the broadcast temporary bounded
    by ``_CHUNK_CELLS`` (rows × others × words can get large mid-session
    as negative labels accumulate)."""
    per_row = max(1, len(others) * rows.shape[1])
    step = max(1, _CHUNK_CELLS // per_row)
    if len(rows) <= step:
        return bitset.subset_of_any(rows, others)
    result = np.empty(len(rows), dtype=bool)
    for start in range(0, len(rows), step):
        stop = min(start + step, len(rows))
        result[start:stop] = bitset.subset_of_any(rows[start:stop], others)
    return result


def _entropy1_vectorised(
    state: InferenceState, informative: list[int]
) -> dict[int, Entropy]:
    _, counts, _, _, sub, c1p = _first_level(state, informative)
    # "+" branch: exactly the classes in C1P[a, ·] become certain.
    u_pos = c1p @ counts - 1
    # "−" branch: T(S+) is unchanged, so among informative classes the
    # only new certainty is needle_j ⊆ T_a — column a of SUB.
    u_neg = counts @ sub - 1
    return {
        class_id: (int(min(p, m)), int(max(p, m)))
        for class_id, p, m in zip(informative, u_pos, u_neg)
    }


def _certain_per_needle(
    uniques: np.ndarray,
    masks: np.ndarray,
    negatives: np.ndarray,
    counts: np.ndarray,
) -> np.ndarray:
    """``Σ_k c_k · certain(k | T(S+)=uniques[x])`` for each distinct
    needle — the second-level "+,+" weights, one row per distinct mask."""
    n_unique = len(uniques)
    n = len(masks)
    weights = np.empty(n_unique, dtype=np.float64)
    step = max(1, _CHUNK_CELLS // max(1, n * masks.shape[1]))
    for start in range(0, n_unique, step):
        stop = min(start + step, n_unique)
        block = uniques[start:stop]
        certain = bitset.pairwise_subset(block, masks)
        if len(negatives):
            inter = block[:, None, :] & masks[None, :, :]
            for negative in negatives:
                certain |= ((inter & ~negative) == 0).all(axis=-1)
        weights[start:stop] = certain @ counts
    return weights


def _best_entropy_rows(
    lows: np.ndarray, highs: np.ndarray, valid: np.ndarray
) -> list[Entropy]:
    """Per outer class, the skyline-best ``(low, high)`` over valid inner
    choices — ``(∞, ∞)`` when no inner class stays informative."""
    masked_lows = np.where(valid, lows, _INT_MIN)
    best_low = masked_lows.max(axis=1)
    masked_highs = np.where(
        valid & (lows == best_low[:, None]), highs, _INT_MIN
    )
    best_high = masked_highs.max(axis=1)
    has_valid = valid.any(axis=1)
    return [
        (int(low), int(high)) if ok else INFINITE_ENTROPY
        for ok, low, high in zip(has_valid, best_low, best_high)
    ]


def _entropy2_vectorised(
    state: InferenceState, informative: list[int]
) -> dict[int, Entropy]:
    masks, counts, negatives, needles, sub, c1p = _first_level(
        state, informative
    )
    n = len(informative)
    uniques, _, inverse, _ = bitset.unique_rows(needles)
    inverse = inverse.reshape(n, n)

    # "+,+": labeling (a,+) then (q,+) makes T(S+) the needle[a,q]; the
    # resulting certain weight is a function of the *distinct* needle.
    needle_weights = _certain_per_needle(uniques, masks, negatives, counts)
    u_pp = needle_weights[inverse] - 2

    base_p = c1p @ counts  # weight certain after one "+" label
    # "+,−" (and by sample symmetry "−,+"): beyond C1P[a, ·], class k
    # becomes certain iff its needle is inside the negated T_b.  Aggregate
    # count weights per (outer class, distinct needle) and contract with
    # the per-needle subset matrix — one dense (n, |U|)·(|U|, n) product.
    n_unique = len(uniques)
    fresh_weights = np.where(c1p, 0.0, counts[None, :])
    if n * n_unique <= _CHUNK_CELLS:
        sub_u = bitset.pairwise_subset(uniques, masks).astype(np.float64)
        flat = (np.arange(n)[:, None] * n_unique + inverse).ravel()
        grouped = np.bincount(
            flat, weights=fresh_weights.ravel(), minlength=n * n_unique
        )
        z = grouped.reshape(n, n_unique) @ sub_u
    else:
        # Degenerate instances (|U| ~ |N|²): per-needle subset rows no
        # longer fit, so contract outer-class blocks straight from the
        # needle matrix, never materialising a (|U|, |N|) table.
        z = np.empty((n, n), dtype=np.float64)
        needle_rows = needles.reshape(n, n, -1)
        step = max(1, _CHUNK_CELLS // max(1, n * n * masks.shape[1]))
        for start in range(0, n, step):
            stop = min(start + step, n)
            block = needle_rows[start:stop].reshape(
                (stop - start) * n, -1
            )
            pure = bitset.pairwise_subset(block, masks).reshape(
                stop - start, n, n
            )
            z[start:stop] = np.einsum(
                "aq,aqb->ab", fresh_weights[start:stop], pure
            )
    u_pn = base_p[:, None] + z - 2
    u_np = u_pn.T  # S+(i,−)+(j,+) is S+(j,+)+(i,−) with roles swapped
    # "−,−": certainty is SUB[k,i] | SUB[k,j] — rank-one combinations.
    tot_neg = counts @ sub
    sub_f = sub.astype(np.float64)
    overlap = (sub_f * counts[:, None]).T @ sub_f
    u_nn = tot_neg[:, None] + tot_neg[None, :] - overlap - 2

    valid_pos = ~c1p  # inner j still informative after i labeled "+"
    valid_neg = ~sub.T  # after i labeled "−": j certain iff SUB[j, i]
    u_pp_i = u_pp.astype(np.int64)
    u_pn_i = u_pn.astype(np.int64)
    u_np_i = u_np.astype(np.int64)
    u_nn_i = u_nn.astype(np.int64)
    pos_branch = _best_entropy_rows(
        np.minimum(u_pp_i, u_pn_i), np.maximum(u_pp_i, u_pn_i), valid_pos
    )
    neg_branch = _best_entropy_rows(
        np.minimum(u_np_i, u_nn_i), np.maximum(u_np_i, u_nn_i), valid_neg
    )
    return {
        class_id: min(pos, neg)
        for class_id, pos, neg in zip(informative, pos_branch, neg_branch)
    }
