"""User oracles — who answers the membership queries.

§5 of the paper simulates the user by labeling tuples consistently with a
goal predicate; :class:`PerfectOracle` is exactly that.  The crowd
extension (§7's "realistic crowdsourcing scenarios") motivates
:class:`NoisyOracle` and the majority-voting machinery in
:mod:`repro.crowd`.  :class:`ScriptedOracle` replays fixed answers and is
used by tests and the worked examples.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Callable, Iterable, Mapping

from ..relational.algebra import selects
from ..relational.predicate import JoinPredicate
from ..relational.relation import Instance, Row
from .sample import Label

__all__ = [
    "Oracle",
    "PerfectOracle",
    "NoisyOracle",
    "ScriptedOracle",
    "CallbackOracle",
]

TuplePair = tuple[Row, Row]


class Oracle(ABC):
    """Anything that can answer "is this tuple in your join result?"."""

    @abstractmethod
    def label(self, tuple_pair: TuplePair) -> Label:
        """Label one Cartesian tuple."""

    def reset(self) -> None:
        """Forget per-run state (noise draws, scripts); default no-op."""


class PerfectOracle(Oracle):
    """Labels tuples exactly as the goal predicate ``θG`` dictates."""

    def __init__(self, instance: Instance, goal: JoinPredicate):
        goal.validate_for(instance)
        self._instance = instance
        self._goal = goal

    @property
    def goal(self) -> JoinPredicate:
        """The goal predicate the simulated user has in mind."""
        return self._goal

    def label(self, tuple_pair: TuplePair) -> Label:
        if selects(self._instance, self._goal, tuple_pair):
            return Label.POSITIVE
        return Label.NEGATIVE


class NoisyOracle(Oracle):
    """Wraps another oracle and flips each answer with probability
    ``error_rate`` — a single unreliable crowd worker."""

    def __init__(
        self, inner: Oracle, error_rate: float, seed: int | None = None
    ):
        if not 0.0 <= error_rate <= 1.0:
            raise ValueError("error_rate must be within [0, 1]")
        self._inner = inner
        self._error_rate = error_rate
        self._seed = seed
        self._rng = random.Random(seed)

    @property
    def error_rate(self) -> float:
        """Probability of flipping the true label."""
        return self._error_rate

    def label(self, tuple_pair: TuplePair) -> Label:
        truth = self._inner.label(tuple_pair)
        if self._rng.random() < self._error_rate:
            return truth.opposite
        return truth

    def reset(self) -> None:
        self._rng = random.Random(self._seed)
        self._inner.reset()


class ScriptedOracle(Oracle):
    """Replays a fixed mapping of tuples to labels.

    Unknown tuples raise ``KeyError`` — tests use this to assert that a
    strategy asks exactly the questions the paper predicts.
    """

    def __init__(self, script: Mapping[TuplePair, Label]):
        self._script = dict(script)

    @classmethod
    def positives(
        cls,
        positive: Iterable[TuplePair],
        negative: Iterable[TuplePair] = (),
    ) -> "ScriptedOracle":
        """Build from explicit positive / negative tuple collections."""
        script: dict[TuplePair, Label] = {}
        script.update({t: Label.POSITIVE for t in positive})
        script.update({t: Label.NEGATIVE for t in negative})
        return cls(script)

    def label(self, tuple_pair: TuplePair) -> Label:
        return self._script[tuple_pair]


class CallbackOracle(Oracle):
    """Adapts a plain function — e.g. a console prompt — into an oracle."""

    def __init__(self, func: Callable[[TuplePair], Label]):
        self._func = func

    def label(self, tuple_pair: TuplePair) -> Label:
        return self._func(tuple_pair)
