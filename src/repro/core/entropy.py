"""Tuple entropy, skylines, and k-step lookahead values (§4.4).

For an informative tuple ``t`` and sample ``S``::

    u^α_{t,S}       = |Uninf(S ∪ {(t,α)}) \\ Uninf(S)|
    entropy_S(t)    = (min(u+, u−), max(u+, u−))

The *skyline* of a set of entropies is the set of its Pareto-maximal
elements under coordinate-wise domination.  The one-step strategy (L1S)
picks the skyline entropy with the largest ``min`` component — we also
expose the provably-equivalent shortcut "lexicographic max by
``(min, max)``", which the ablation benchmarks compare.

``entropy2`` (Algorithm 5) extends this one level deeper: the value of
labeling ``t`` and then the best next tuple, under the worst answer for
``t``.  ``(∞, ∞)`` encodes "labeling ``t`` with this answer ends the
inference".  The recursive generalisation ``entropy_k`` follows the
paper's remark that LkS "easily generalises".

This module is the *reference* implementation: readable, recursive, and
valid for any depth.  Depths 1–2 are served bit-for-bit identically (and
much faster) by the batched kernels in :mod:`repro.core.fast_lookahead`;
deeper lookaheads run here, but their leaves —
:meth:`~repro.core.state.InferenceState.newly_certain_weight` and the
incremental informative set — are array-accelerated too.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from .sample import Label
from .state import InferenceState

__all__ = [
    "Entropy",
    "INFINITE_ENTROPY",
    "dominates",
    "skyline",
    "best_skyline_entropy",
    "uninformative_gain",
    "entropy_of_class",
    "entropy_k_of_class",
]

Entropy = tuple[float, float]

INFINITE_ENTROPY: Entropy = (math.inf, math.inf)

_BOTH_LABELS = (Label.POSITIVE, Label.NEGATIVE)


def dominates(first: Entropy, second: Entropy) -> bool:
    """Coordinate-wise domination: ``(a,b)`` dominates ``(a',b')`` iff
    ``a ≥ a'`` and ``b ≥ b'``."""
    return first[0] >= second[0] and first[1] >= second[1]


def skyline(entropies: Iterable[Entropy]) -> set[Entropy]:
    """The Pareto-maximal entropies (none dominated by another)."""
    unique = set(entropies)
    return {
        entropy
        for entropy in unique
        if not any(
            other != entropy and dominates(other, entropy)
            for other in unique
        )
    }


def best_skyline_entropy(entropies: Iterable[Entropy]) -> Entropy:
    """Algorithm 4 lines 2–3: the skyline entropy whose ``min`` component
    equals ``max{min(e)}`` over all entropies.

    This element is unique: two distinct skyline entropies cannot share
    their ``min`` component (the one with the larger ``max`` would
    dominate the other), and the maximiser of ``min`` always survives to
    the skyline.  It also equals the lexicographic maximum by
    ``(min, max)``, which is how we compute it.
    """
    unique = set(entropies)
    if not unique:
        raise ValueError("no entropies to choose from")
    return max(unique)


def uninformative_gain(
    state: InferenceState,
    class_id: int,
    label: Label,
    committed: Sequence[tuple[int, Label]] = (),
) -> int:
    """``u^α`` — newly uninformative tuples caused by one more label.

    ``committed`` carries labels already hypothesised by an outer
    lookahead level; the gain is always counted against the *real* sample
    behind ``state`` (Algorithm 5 lines 8–9 subtract ``Uninf(S)``, not
    ``Uninf(S′)``).
    """
    extras = list(committed) + [(class_id, label)]
    return state.newly_certain_weight(extras)


def entropy_of_class(state: InferenceState, class_id: int) -> Entropy:
    """``entropy_S(t) = (min(u+,u−), max(u+,u−))`` for a class representative."""
    u_pos = uninformative_gain(state, class_id, Label.POSITIVE)
    u_neg = uninformative_gain(state, class_id, Label.NEGATIVE)
    return (min(u_pos, u_neg), max(u_pos, u_neg))


def _informative_after(
    state: InferenceState, extras: Sequence[tuple[int, Label]]
) -> list[int]:
    """Classes still informative after hypothetically applying ``extras``."""
    simulated = state.copy()
    for class_id, label in extras:
        simulated.record(class_id, label)
    return simulated.informative_class_ids()


def _worse_of(first: Entropy, second: Entropy) -> Entropy:
    """The pessimistic answer (Algorithm 5 lines 13–14): the entropy with
    the smaller ``min``; on ties, the smaller ``max`` (less information)."""
    return min(first, second)


def entropy_k_of_class(
    state: InferenceState, class_id: int, depth: int
) -> Entropy:
    """``entropy^k_S(t)``: depth 1 is :func:`entropy_of_class`; depth 2 is
    the paper's Algorithm 5; deeper levels recurse the same construction.
    """
    if depth < 1:
        raise ValueError("lookahead depth must be >= 1")
    return _entropy_recursive(state, (), class_id, depth)


def _entropy_recursive(
    state: InferenceState,
    committed: tuple[tuple[int, Label], ...],
    class_id: int,
    depth: int,
) -> Entropy:
    if depth == 1:
        u_pos = uninformative_gain(state, class_id, Label.POSITIVE, committed)
        u_neg = uninformative_gain(state, class_id, Label.NEGATIVE, committed)
        return (min(u_pos, u_neg), max(u_pos, u_neg))
    per_label: list[Entropy] = []
    for label in _BOTH_LABELS:
        extended = committed + ((class_id, label),)
        informative = _informative_after(state, extended)
        if not informative:
            per_label.append(INFINITE_ENTROPY)
            continue
        candidates = {
            _entropy_recursive(state, extended, other, depth - 1)
            for other in informative
        }
        per_label.append(best_skyline_entropy(candidates))
    return _worse_of(per_label[0], per_label[1])
