"""The lattice of join predicates (§4.2) and goal sampling.

The full lattice is ``(P(Ω), ⊆)``; the strategies only care about its
*non-nullable* nodes — predicates selecting at least one tuple — plus Ω.
A predicate is non-nullable iff it is contained in some tuple signature,
so the non-nullable nodes are exactly ``∪_{σ ∈ N} P(σ)`` where ``N`` is
the set of distinct signatures.  This module materialises that set (it can
be exponential; enumeration is capped), computes the tuple↔node
correspondence of Figure 4, and samples goal predicates by size for the
synthetic experiments of §5.2.
"""

from __future__ import annotations

import random

from ..relational.predicate import JoinPredicate
from .signatures import SignatureIndex
from .specialize import pairs_from_bits

__all__ = [
    "non_nullable_masks",
    "non_nullable_predicates",
    "nodes_with_tuples",
    "predicates_of_size",
    "sample_goal_of_size",
    "LatticeTooLargeError",
]


class LatticeTooLargeError(RuntimeError):
    """Non-nullable node enumeration exceeded the safety cap."""


def non_nullable_masks(
    index: SignatureIndex, cap: int = 1_000_000
) -> set[int]:
    """All masks of non-nullable predicates: ``∪ P(σ)`` over signatures.

    Signatures are expanded largest-first, a signature contained in an
    already expanded one is skipped outright (its power set is already
    present), and each survivor's subsets are enumerated directly on the
    mask with the standard ``(sub - 1) & mask`` walk — no per-subset
    recombination of bit lists.

    Raises :class:`LatticeTooLargeError` past ``cap`` nodes — the count is
    exponential when a tuple agrees on everything (§4.2).
    """
    nodes: set[int] = set()
    expanded: list[int] = []
    ordered = sorted(index, key=lambda cls: cls.size, reverse=True)
    for cls in ordered:
        mask = cls.mask
        if any(mask & ~previous == 0 for previous in expanded):
            continue
        sub = mask
        while True:
            nodes.add(sub)
            if len(nodes) > cap:
                raise LatticeTooLargeError(
                    f"more than {cap} non-nullable lattice nodes"
                )
            if sub == 0:
                break
            sub = (sub - 1) & mask
        expanded.append(mask)
    return nodes


def non_nullable_predicates(
    index: SignatureIndex, cap: int = 1_000_000
) -> list[JoinPredicate]:
    """Decoded non-nullable predicates, smallest first (Figure 4's nodes)."""
    instance = index.instance
    masks = sorted(non_nullable_masks(index, cap), key=lambda m: (m.bit_count(), m))
    return [pairs_from_bits(instance, mask) for mask in masks]


def nodes_with_tuples(index: SignatureIndex) -> dict[int, int]:
    """The Figure 4 correspondence: mask → tuple count, for nodes that
    have corresponding tuples (``T(t) = θ`` exactly)."""
    return {cls.mask: cls.count for cls in index}


def predicates_of_size(
    index: SignatureIndex, size: int, cap: int = 1_000_000
) -> list[JoinPredicate]:
    """All non-nullable predicates with exactly ``size`` pairs.

    Size-0 is the empty predicate (non-nullable iff the product is
    non-empty).  Used as the goal pools of the synthetic experiments.
    """
    instance = index.instance
    masks = {
        mask
        for mask in non_nullable_masks(index, cap)
        if mask.bit_count() == size
    }
    return [
        pairs_from_bits(instance, mask)
        for mask in sorted(masks, key=lambda m: (m.bit_count(), m))
    ]


def sample_goal_of_size(
    index: SignatureIndex,
    size: int,
    rng: random.Random,
    cap: int = 1_000_000,
) -> JoinPredicate | None:
    """One uniformly sampled non-nullable goal of the given size, or
    ``None`` when the instance admits none."""
    pool = predicates_of_size(index, size, cap)
    if not pool:
        return None
    return rng.choice(pool)
