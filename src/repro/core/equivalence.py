"""Instance-equivalence of join predicates (§3.3).

The instance may be too poor to pin down the goal exactly; the inference
then returns ``T(S+)``, which is *instance-equivalent* to the goal: both
select exactly the same tuples of this instance.  Equivalence is decided
on the signature quotient — θ and θ′ are equivalent iff they select the
same signature classes.
"""

from __future__ import annotations

from ..relational.predicate import JoinPredicate
from ..relational.relation import Instance
from .signatures import SignatureIndex
from .specialize import bits_from_pairs

__all__ = ["instance_equivalent", "selected_class_ids"]


def selected_class_ids(
    index: SignatureIndex, predicate: JoinPredicate
) -> frozenset[int]:
    """Ids of the signature classes whose tuples θ selects."""
    theta = bits_from_pairs(index.instance, predicate)
    return frozenset(
        cls.class_id for cls in index if theta & ~cls.mask == 0
    )


def instance_equivalent(
    instance: Instance,
    first: JoinPredicate,
    second: JoinPredicate,
    index: SignatureIndex | None = None,
) -> bool:
    """True iff ``(R ⋈_first P)^I = (R ⋈_second P)^I``."""
    first.validate_for(instance)
    second.validate_for(instance)
    if index is None:
        index = SignatureIndex(instance)
    return selected_class_ids(index, first) == selected_class_ids(
        index, second
    )
