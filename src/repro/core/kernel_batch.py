"""Cross-session batched L1S/L2S kernels over one shared index.

Many concurrent sessions inferring over the *same* shared
:class:`~repro.core.signatures.SignatureIndex` each run a near-identical
entropy contraction per answer round — at 64–256 sessions per index the
server recomputes the same dense algebra S times per tick, paying the
fixed numpy dispatch overhead of ~30 kernel launches *per session*.
This module stacks those per-session computations into one batch:

* every session's :class:`~repro.core.planner.IncrementalLookaheadPlanner`
  exports its maintained matrices as a :class:`BatchableEntropyJob`
  (:meth:`~repro.core.planner.IncrementalLookaheadPlanner.
  export_batch_job`);
* :func:`batched_entropies` zero-pads the jobs to a common ``(n_max,
  u_max)`` shape and runs the whole batch through stacked 3-D
  contractions — one ``(S·|N|, |U|) × (|U|, |N|)`` matmul, one shared
  ``np.bincount`` over offset-disjoint group ids, one batched
  skyline-row reduction — scattering per-session entropy tables back.

**Bit-for-bit identical** to the per-session path: every quantity in
the L1S/L2S algebra is an integer-valued float far below the mantissa
limit (the batch even drops to float32 when the instance total leaves
a 4× margin below 2²⁴ — see :func:`_accumulator_dtype`), so float sums
are exact regardless of association, and zero-padded rows and columns
contribute exactly ``+0.0``.  The padding must only keep
*invalid* inner choices out of the skyline reduction, which it does by
padding ``counts`` with 0, ``SUB``/``C1P`` with True (a padded inner
class is "already certain", hence invalid in ``~C1P`` / ``~SUBᵀ``) and
``inverse`` with 0 (padded cells carry weight 0 into the shared
bincount).  Property-tested against the incremental planner and the
pure-Python reference in ``tests/core/test_kernel_batch.py``.

:class:`KernelBatchScheduler` is the serving-side half: a dispatcher
thread owns per-key job queues (one key per shared index), coalesces
concurrently submitted jobs for a short window, and executes each flush
as one stacked batch — singleton batches and planners that decline to
export (scratch mode, transient first propose, depth > 2) fall back to
the ordinary per-session ``planner.entropies()``, which is the
correctness anchor the batch is tested against.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable

import numpy as np

from .entropy import INFINITE_ENTROPY, Entropy

__all__ = [
    "BatchableEntropyJob",
    "KernelBatchScheduler",
    "batched_entropies",
]


@dataclass(slots=True)
class BatchableEntropyJob:
    """One session's exported entropy computation.

    The arrays are the planner's *live* maintained structures — shared,
    never mutated by the batch kernels (read-only stacking into padded
    copies), exactly like a session fork shares them.
    """

    depth: int
    ids: np.ndarray  #: (n,) int64 informative class ids
    counts: np.ndarray  #: (n,) float64 class cardinalities
    sub: np.ndarray  #: (n, n) bool — SUB[a, k] = needle(a,k) == T2[a]
    c1p: np.ndarray  #: (n, n) bool — certain-if-positive
    inverse: np.ndarray | None = None  #: (n, n) int64 (depth 2 only)
    sub_u: np.ndarray | None = None  #: (u, n) bool (depth 2 only)
    certain_u: np.ndarray | None = None  #: (u, n) bool (depth 2 only)


_NEG_INF = float("-inf")


def _accumulator_dtype(jobs: list[BatchableEntropyJob]) -> np.dtype:
    """Accumulator dtype for one batch: float32 whenever bit-exactness
    is guaranteed, float64 otherwise.

    Every quantity in the L1S/L2S algebra is an integer: a sum of
    non-negative class counts, give or take a small constant.  All
    intermediates are bounded in magnitude by ~2× the total weighted
    count, and non-negative partial sums never overshoot their total —
    so while the total stays below 2²² every intermediate is an integer
    below 2²⁴, exactly representable in float32 (4× safety margin).
    That halves the batch's memory traffic; larger instances fall back
    to float64, exact below 2⁵³.
    """
    total = max(float(job.counts.sum()) for job in jobs)
    return np.dtype(np.float32 if total < 2.0**22 else np.float64)


def _scatter(
    ids: np.ndarray,
    low: np.ndarray,
    high: np.ndarray,
    has: np.ndarray,
) -> dict[int, Entropy]:
    """One session's entropy table from its reduced rows — a C-speed
    ``dict(zip(...))`` build, with ``(∞, ∞)`` patched over the classes
    that keep no informative inner choice."""
    table: dict[int, Entropy] = dict(
        zip(ids.tolist(), zip(low.tolist(), high.tolist()))
    )
    if not has.all():
        for class_id in ids[~has].tolist():
            table[class_id] = INFINITE_ENTROPY
    return table


#: L1S per-job work is two matvecs — already one BLAS launch each, so
#: stacking into padded 3-D matmuls only pays while the padded fills
#: are cheaper than the per-job dispatch they save.  Measured crossover
#: is ``n ≈ 32``: above it the per-job loop wins at every batch size
#: (at the ``n ≥ 128`` export floor it is 2–4× faster than stacking),
#: and the batch's gain over the per-session path comes from skipping
#: the ~30-launch planner pipeline, not from fusing the matmuls.
_DEPTH1_STACK_MAX_CELLS = 1 << 10


def _batched_depth1(
    jobs: list[BatchableEntropyJob],
) -> list[dict[int, Entropy]]:
    """Stacked L1S: per session ``u_pos = C1P @ counts - 1`` and
    ``u_neg = counts @ SUB - 1`` become two 3-D matmuls over typed
    batch arrays (filled per job, so no hidden bool→float casts) —
    or a per-job loop above the tiny-matrix stacking crossover."""
    batch = len(jobs)
    n_max = max(job.ids.size for job in jobs)
    dtype = _accumulator_dtype(jobs)
    if n_max * n_max > _DEPTH1_STACK_MAX_CELLS:
        results = []
        for job in jobs:
            c = job.counts.astype(dtype)
            u_pos = job.c1p @ c
            u_neg = c @ job.sub
            lows = np.minimum(u_pos, u_neg).astype(np.int64) - 1
            highs = np.maximum(u_pos, u_neg).astype(np.int64) - 1
            results.append(
                dict(
                    zip(
                        job.ids.tolist(),
                        zip(lows.tolist(), highs.tolist()),
                    )
                )
            )
        return results
    counts = np.zeros((batch, n_max), dtype=dtype)
    sub = np.zeros((batch, n_max, n_max), dtype=dtype)
    c1p = np.zeros((batch, n_max, n_max), dtype=dtype)
    for s, job in enumerate(jobs):
        n = job.ids.size
        counts[s, :n] = job.counts
        sub[s, :n, :n] = job.sub
        c1p[s, :n, :n] = job.c1p
    # Padded columns multiply a zero count, padded rows are never read.
    u_pos = np.matmul(c1p, counts[:, :, None])[..., 0]
    u_neg = np.matmul(counts[:, None, :], sub)[:, 0, :]
    lows = np.minimum(u_pos, u_neg).astype(np.int64) - 1
    highs = np.maximum(u_pos, u_neg).astype(np.int64) - 1
    results = []
    for s, job in enumerate(jobs):
        n = job.ids.size
        results.append(
            dict(
                zip(
                    job.ids.tolist(),
                    zip(lows[s, :n].tolist(), highs[s, :n].tolist()),
                )
            )
        )
    return results


def _batched_depth2(
    jobs: list[BatchableEntropyJob],
) -> list[dict[int, Entropy]]:
    """Stacked L2S: the whole ``(|N|, |U|) × (|U|, |N|)`` contraction of
    every session runs as one 3-D matmul batch plus one shared bincount.

    Padding: ``counts → 0`` (padded classes weigh nothing), ``SUB``/
    ``C1P → True`` (padded inner classes are invalid in the skyline
    masks and contribute zero weight), ``inverse → 0`` (padded cells
    route weight 0 to group 0 — an exact ``+0.0``).

    The skyline reductions run on masked floats (``-inf`` sentinel):
    every value is an exact integer, so float ``min``/``max``/equality
    match the per-session int64 reduction bit for bit.  The negative
    side reduces along axis 1 instead of materialising transposes —
    ``U−−`` is symmetric and ``U−+[a, k] = U+−[k, a]``.
    """
    batch = len(jobs)
    n_max = max(job.ids.size for job in jobs)
    u_max = max(job.sub_u.shape[0] for job in jobs)
    dtype = _accumulator_dtype(jobs)
    counts = np.zeros((batch, n_max), dtype=dtype)
    counts64 = np.zeros((batch, n_max), dtype=np.float64)
    sub = np.ones((batch, n_max, n_max), dtype=bool)
    c1p = np.ones((batch, n_max, n_max), dtype=bool)
    inverse = np.zeros((batch, n_max, n_max), dtype=np.int64)
    sub_u = np.zeros((batch, u_max, n_max), dtype=dtype)
    certain_u = np.zeros((batch, u_max, n_max), dtype=dtype)
    for s, job in enumerate(jobs):
        n = job.ids.size
        u = job.sub_u.shape[0]
        counts[s, :n] = job.counts
        counts64[s, :n] = job.counts
        sub[s, :n, :n] = job.sub
        c1p[s, :n, :n] = job.c1p
        inverse[s, :n, :n] = job.inverse
        sub_u[s, :u, :n] = job.sub_u
        certain_u[s, :u, :n] = job.certain_u

    # "+,+": per-distinct-needle certain weight, gathered per cell
    # (the -2 rides the small (S, u) array, not the gathered cube).
    needle_weights = np.matmul(certain_u, counts[:, :, None])[..., 0]
    needle_weights -= 2.0
    u_pp = needle_weights[np.arange(batch)[:, None, None], inverse]

    # "+,−": certain-anyway weight plus the grouped fresh weights of
    # each distinct needle — one shared bincount over offset-disjoint
    # ids (bincount accumulates in float64 whatever its input dtype).
    fresh = np.where(c1p, 0.0, counts64[:, None, :])
    row_base = (
        np.arange(batch, dtype=np.int64)[:, None] * n_max
        + np.arange(n_max, dtype=np.int64)[None, :]
    ) * u_max
    grouped = np.bincount(
        (row_base[:, :, None] + inverse).ravel(),
        weights=fresh.ravel(),
        minlength=batch * n_max * u_max,
    ).reshape(batch, n_max, u_max)
    base_p = counts64.sum(axis=1)[:, None] - fresh.sum(axis=2)
    u_pn = np.matmul(grouped.astype(dtype), sub_u)
    u_pn += np.asarray(base_p - 2.0, dtype=dtype)[:, :, None]

    # "−,−": rank-one overlap refresh, batched and in place.
    sub_f = sub.astype(dtype)
    weighted = sub_f * counts[:, :, None]
    tot_neg = weighted.sum(axis=1)
    overlap = np.matmul(weighted.transpose(0, 2, 1), sub_f)
    np.subtract(tot_neg[:, :, None], overlap, out=overlap)
    overlap += (tot_neg - 2.0)[:, None, :]
    u_nn = overlap

    # Positive side: best over inner k (axis 2), invalid where C1P.
    # u_pp doubles as the lows buffer — it is not read again.
    highs = np.maximum(u_pp, u_pn)
    np.minimum(u_pp, u_pn, out=u_pp)
    lows = u_pp
    np.copyto(lows, _NEG_INF, where=c1p)
    pos_low = lows.max(axis=2)
    np.copyto(highs, _NEG_INF, where=lows != pos_low[:, :, None])
    pos_high = highs.max(axis=2)
    pos_has = pos_low != _NEG_INF

    # Negative side: best over inner k (axis 1 — the arrays are read
    # as [s, k, a]), invalid where SUB[k, a].  Buffers are reused.
    np.minimum(u_pn, u_nn, out=lows)
    np.maximum(u_pn, u_nn, out=highs)
    np.copyto(lows, _NEG_INF, where=sub)
    neg_low = lows.max(axis=1)
    np.copyto(highs, _NEG_INF, where=lows != neg_low[:, None, :])
    neg_high = highs.max(axis=1)
    neg_has = neg_low != _NEG_INF

    # min(pos, neg) with the per-session tie semantics: min returns its
    # first argument on ties, so pos wins iff pos <= neg as tuples.
    choose_pos = pos_has & (
        ~neg_has
        | (pos_low < neg_low)
        | ((pos_low == neg_low) & (pos_high <= neg_high))
    )
    has = pos_has | neg_has
    low = np.where(choose_pos, pos_low, neg_low)
    high = np.where(choose_pos, pos_high, neg_high)
    low_i = np.where(has, low, 0.0).astype(np.int64)
    high_i = np.where(has, high, 0.0).astype(np.int64)
    results = []
    for s, job in enumerate(jobs):
        n = job.ids.size
        results.append(
            _scatter(
                job.ids, low_i[s, :n], high_i[s, :n], has[s, :n]
            )
        )
    return results


def batched_entropies(
    jobs: list[BatchableEntropyJob],
) -> list[dict[int, Entropy]]:
    """Entropy tables for a (possibly mixed-depth) batch of jobs, in
    submission order — bit-for-bit what each job's planner would have
    produced on its own."""
    by_depth: dict[int, list[int]] = {}
    for position, job in enumerate(jobs):
        if job.depth not in (1, 2):
            raise ValueError(
                f"batchable jobs are depth 1 or 2, got {job.depth}"
            )
        by_depth.setdefault(job.depth, []).append(position)
    results: list[dict[int, Entropy] | None] = [None] * len(jobs)
    for depth, positions in by_depth.items():
        kernel = _batched_depth1 if depth == 1 else _batched_depth2
        for position, table in zip(
            positions, kernel([jobs[p] for p in positions])
        ):
            results[position] = table
    return results


# --- scheduler ---------------------------------------------------------------


@dataclass(slots=True)
class _QueuedJob:
    """One pending proposal: the planner to run, its result future, and
    (when the plan cache is on) the canonical state key to write the
    result through to."""

    planner: Any
    future: Future = field(default_factory=Future)
    plan_key: Any = None


class KernelBatchScheduler:
    """Coalesces per-session entropy jobs into stacked batch kernels.

    Jobs are keyed by the shared structure they batch over (the server
    uses ``id(index)`` — sessions on one cached index share the object).
    A dedicated dispatcher thread waits ``window_seconds`` after an idle
    period's first submission so concurrent proposals pile up, then
    drains each key's queue in batches of at most ``max_batch``.  While
    a batch executes, newly submitted jobs queue behind it and are
    flushed immediately after — back-pressure adaptively grows the next
    batch instead of adding latency.

    Cancellation is handled at flush time: a future cancelled while
    queued (session evicted, speculation aborted, shutdown) is dropped
    via ``set_running_or_notify_cancel`` before any kernel runs.
    Planners that decline to export a job — scratch mode, the transient
    first propose, depth > 2 — and singleton batches run the ordinary
    per-session ``planner.entropies()`` instead.
    """

    def __init__(
        self,
        *,
        window_seconds: float = 0.002,
        max_batch: int = 64,
    ):
        if window_seconds < 0:
            raise ValueError("window_seconds must be non-negative")
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        self.window_seconds = window_seconds
        self.max_batch = max_batch
        self._lock = threading.Lock()
        self._queues: dict[Hashable, deque[_QueuedJob]] = {}
        self._wakeup = threading.Event()
        self._thread: threading.Thread | None = None
        self._closed = False
        self._batches = 0
        self._batched_jobs = 0
        self._fallback_jobs = 0
        self._cancelled_jobs = 0
        self._batch_errors = 0
        self._plan_sink_errors = 0
        self._histogram: Counter[int] = Counter()
        #: Plan-cache write-through: when set, every job that completes
        #: with a ``plan_key`` hands its table to ``plan_sink(key,
        #: table)`` — batched *and* fallback members alike, so one batch
        #: publishes every member's table.  Results are set before the
        #: sink runs; a sink failure never reaches the waiter.
        self.plan_sink: Callable[[Any, dict[int, Entropy]], None] | None = (
            None
        )

    # --- submission ----------------------------------------------------------

    def submit(
        self, key: Hashable, planner: Any, *, plan_key: Any = None
    ) -> Future:
        """Queue one planner's entropy production; returns its future.

        The future resolves to the planner's ``dict[int, Entropy]``
        table.  Cancelling it before the flush drops the job without
        running any kernel.  ``plan_key`` tags the job for plan-cache
        write-through (see ``plan_sink``).
        """
        job = _QueuedJob(planner, plan_key=plan_key)
        with self._lock:
            if self._closed:
                raise RuntimeError("KernelBatchScheduler is closed")
            self._queues.setdefault(key, deque()).append(job)
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._run,
                    name="kernel-batch",
                    daemon=True,
                )
                self._thread.start()
        self._wakeup.set()
        return job.future

    def entropies(
        self, key: Hashable, planner: Any, *, plan_key: Any = None
    ) -> dict[int, Entropy]:
        """Submit and block — the convenience for worker threads."""
        return self.submit(key, planner, plan_key=plan_key).result()

    def close(self, wait: bool = True) -> None:
        """Stop the dispatcher; queued-but-unflushed jobs are cancelled."""
        with self._lock:
            self._closed = True
            thread = self._thread
        self._wakeup.set()
        if thread is not None and wait:
            thread.join()

    # --- dispatcher ----------------------------------------------------------

    def _next_batch(self) -> list[_QueuedJob] | None:
        with self._lock:
            for key in list(self._queues):
                queue = self._queues[key]
                if not queue:
                    # Keys are id()s of shared indexes — evicted ones
                    # never resubmit, so drained queues are dropped to
                    # keep the map from growing with index churn.
                    del self._queues[key]
                    continue
                return [
                    queue.popleft()
                    for _ in range(min(len(queue), self.max_batch))
                ]
            # Queues drained: clear the wakeup under the lock so a
            # submit racing this drain either lands in a queue we saw
            # or re-sets the event after we cleared it.
            self._wakeup.clear()
        return None

    def _run(self) -> None:
        while True:
            self._wakeup.wait()
            if self._closed:
                self._drain_cancelled()
                return
            if self.window_seconds:
                # Coalescing window: let concurrent proposals pile up
                # before the first flush of this busy period.
                time.sleep(self.window_seconds)
            while (batch := self._next_batch()) is not None:
                self._execute(batch)
                if self._closed:
                    break
            if self._closed:
                self._drain_cancelled()
                return

    def _drain_cancelled(self) -> None:
        with self._lock:
            queues, self._queues = self._queues, {}
        for queue in queues.values():
            for job in queue:
                job.future.cancel()

    def _execute(self, batch: list[_QueuedJob]) -> None:
        live: list[_QueuedJob] = []
        cancelled = 0
        for job in batch:
            if job.future.set_running_or_notify_cancel():
                live.append(job)
            else:
                cancelled += 1
        by_depth: dict[int, list[tuple[_QueuedJob, BatchableEntropyJob]]] = {}
        fallback: list[_QueuedJob] = []
        for job in live:
            try:
                payload = job.planner.export_batch_job()
            except Exception as exc:  # noqa: BLE001 - per-job containment
                job.future.set_exception(exc)
                continue
            if payload is None:
                fallback.append(job)
            else:
                by_depth.setdefault(payload.depth, []).append(
                    (job, payload)
                )
        batch_errors = 0
        for group in by_depth.values():
            if len(group) == 1:
                fallback.append(group[0][0])
                continue
            try:
                tables = batched_entropies([p for _, p in group])
            except Exception:  # noqa: BLE001 - never poison a whole batch
                batch_errors += 1
                fallback.extend(job for job, _ in group)
            else:
                for (job, _), table in zip(group, tables):
                    self._write_through(job, table)
                    job.future.set_result(table)
                with self._lock:
                    self._batches += 1
                    self._batched_jobs += len(group)
                    self._histogram[len(group)] += 1
        for job in fallback:
            try:
                table = job.planner.entropies()
            except Exception as exc:  # noqa: BLE001 - per-job containment
                job.future.set_exception(exc)
                continue
            self._write_through(job, table)
            job.future.set_result(table)
        with self._lock:
            self._cancelled_jobs += cancelled
            self._fallback_jobs += len(fallback)
            self._batch_errors += batch_errors

    def _write_through(
        self, job: _QueuedJob, table: dict[int, Entropy]
    ) -> None:
        sink = self.plan_sink
        if sink is None or job.plan_key is None:
            return
        try:
            sink(job.plan_key, table)
        except Exception:  # noqa: BLE001 - a cache/registry failure
            # must never surface to (or stall) the waiting session.
            with self._lock:
                self._plan_sink_errors += 1

    # --- introspection -------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Counters for ``GET /stats``: executed batches, job routing,
        and the batch-size histogram (size → flush count)."""
        with self._lock:
            pending = sum(len(queue) for queue in self._queues.values())
            return {
                "window_seconds": self.window_seconds,
                "max_batch": self.max_batch,
                "batches": self._batches,
                "batched_jobs": self._batched_jobs,
                "fallback_jobs": self._fallback_jobs,
                "cancelled_jobs": self._cancelled_jobs,
                "batch_errors": self._batch_errors,
                "plan_sink_errors": self._plan_sink_errors,
                "pending_jobs": pending,
                "batch_size_histogram": {
                    str(size): count
                    for size, count in sorted(self._histogram.items())
                },
            }
