"""The general inference algorithm (Algorithm 1).

An :class:`InferenceSession` repeatedly asks a strategy for the next
informative tuple, asks the oracle (the user) to label it, and records the
answer, until the halt condition Γ is met — by default the paper's
strongest condition, "no informative tuple left", at which point ``T(S+)``
(the most specific consistent predicate) is returned.  §4.1 also allows
weaker, earlier halts; these are modelled as pluggable
:class:`HaltCondition` objects.

If the oracle's answer contradicts the sample built so far (possible only
with unreliable oracles — strategies ask about informative tuples, whose
two labels are both consistent), the session raises
:class:`~repro.core.consistency.InconsistentSampleError`, matching
Algorithm 1 lines 6–7.

Beyond the classic blocking loop, the session speaks a non-blocking
ask/answer protocol that inverts control: :meth:`InferenceSession.propose`
returns the next :class:`Question` (or ``None`` once Γ holds) without
consulting any oracle, and :meth:`InferenceSession.answer` records the
label for a previously proposed question.  A remote user — e.g. one
talking to :mod:`repro.service` over HTTP — thereby *is* the oracle;
``step()``/``run()`` are now thin wrappers that pipe a local oracle
through the same two calls.
"""

from __future__ import annotations

import random
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from ..relational.predicate import JoinPredicate
from ..relational.relation import Instance, Row
from .consistency import InconsistentSampleError
from .equivalence import instance_equivalent
from .oracle import Oracle
from .sample import Example, Label, Sample
from .signatures import SignatureIndex
from .specialize import pairs_from_bits
from .state import InferenceState, StateDelta
from .strategies.base import Strategy

__all__ = [
    "HaltCondition",
    "NoInformativeTuples",
    "MaxInteractions",
    "InferenceResult",
    "InferenceSession",
    "Question",
    "QuestionProtocolError",
    "run_inference",
]

TuplePair = tuple[Row, Row]


class HaltCondition(ABC):
    """Decides when to stop asking (the Γ of Algorithm 1)."""

    @abstractmethod
    def should_halt(self, session: "InferenceSession") -> bool:
        """True once no further question should be asked."""


class NoInformativeTuples(HaltCondition):
    """The paper's strongest halt condition: stop when every tuple of the
    Cartesian product is labeled or uninformative."""

    def should_halt(self, session: "InferenceSession") -> bool:
        return not session.state.has_informative()


class MaxInteractions(HaltCondition):
    """Early halt after a budget of questions (a weaker Γ, §4.1); the
    strongest condition still applies on top of the budget."""

    def __init__(self, budget: int):
        if budget < 0:
            raise ValueError("budget must be non-negative")
        self.budget = budget

    def should_halt(self, session: "InferenceSession") -> bool:
        if session.state.interaction_count >= self.budget:
            return True
        return not session.state.has_informative()


@dataclass(frozen=True, slots=True)
class InferenceResult:
    """Outcome of one interactive inference run."""

    predicate: JoinPredicate
    interactions: int
    elapsed_seconds: float
    strategy_name: str
    history: tuple[Example, ...] = field(repr=False, default=())
    halted_early: bool = False

    def matches_goal(
        self, instance: Instance, goal: JoinPredicate
    ) -> bool:
        """True iff the inferred predicate is instance-equivalent to the
        goal — the correctness criterion of §3.3."""
        return instance_equivalent(instance, self.predicate, goal)


@dataclass(frozen=True, slots=True)
class Question:
    """One pending membership query of the ask/answer protocol."""

    question_id: int
    class_id: int
    tuple_pair: TuplePair


class QuestionProtocolError(ValueError):
    """An :meth:`InferenceSession.answer` call that does not match the
    currently proposed question (stale id, or no question pending)."""


class InferenceSession:
    """One run of Algorithm 1 over a fixed instance/strategy/oracle.

    ``oracle`` may be ``None`` for sessions driven externally through
    :meth:`propose` / :meth:`answer`; only :meth:`step` / :meth:`run`
    require one.
    """

    def __init__(
        self,
        instance: Instance,
        strategy: Strategy,
        oracle: Oracle | None = None,
        halt_condition: HaltCondition | None = None,
        index: SignatureIndex | None = None,
        seed: int | None = None,
    ):
        self.instance = instance
        self.strategy = strategy
        self.oracle = oracle
        self.halt_condition = halt_condition or NoInformativeTuples()
        self.index = index if index is not None else SignatureIndex(instance)
        self.state = InferenceState(self.index)
        self.sample = Sample()
        self.seed = seed
        self.rng = random.Random(seed)
        self._history: list[Example] = []
        self._pending: Question | None = None
        self._question_counter = 0
        self._last_delta: StateDelta | None = None

    # --- ask/answer protocol -------------------------------------------------

    @property
    def pending_question(self) -> Question | None:
        """The proposed-but-unanswered question, if any."""
        return self._pending

    @property
    def last_delta(self) -> StateDelta | None:
        """The :class:`~repro.core.state.StateDelta` of the most recent
        recorded answer — the structured progress delta the serving
        layer streams (how many informative classes that label removed)
        without re-deriving anything from the state."""
        return self._last_delta

    def is_finished(self) -> bool:
        """True once Γ holds and no proposed question awaits an answer."""
        return self._pending is None and self.halt_condition.should_halt(
            self
        )

    def propose(self) -> Question | None:
        """The next question to put to the user, or ``None`` once Γ holds.

        Idempotent while unanswered: repeated calls return the same
        pending :class:`Question` (the strategy — and the rng — is only
        consulted once per question, so a client may safely re-fetch).
        """
        if self._pending is not None:
            return self._pending
        if self.halt_condition.should_halt(self):
            return None
        return self._propose_question()

    def _propose_question(self) -> Question:
        """Consult the strategy and install the pending question."""
        class_id = self.strategy.propose(self.state, self.rng)
        question = Question(
            question_id=self._question_counter,
            class_id=class_id,
            tuple_pair=self.index[class_id].representative,
        )
        self._question_counter += 1
        self._pending = question
        return question

    def answer(self, question_id: int, label: Label) -> Example:
        """Record the user's label for the pending question.

        Raises :class:`QuestionProtocolError` when ``question_id`` is not
        the pending question's id, and :class:`InconsistentSampleError`
        when the label contradicts the sample (Algorithm 1 lines 6–7) —
        in that case the question stays pending and may be re-answered.
        """
        if not isinstance(label, Label):
            raise TypeError(f"got {label!r}; expected a Label")
        pending = self._pending
        if pending is None:
            raise QuestionProtocolError(
                f"no question pending; cannot answer id {question_id}"
            )
        if question_id != pending.question_id:
            raise QuestionProtocolError(
                f"answer for question {question_id} but question "
                f"{pending.question_id} is pending"
            )
        if not self.state.is_consistent_with(pending.class_id, label):
            raise InconsistentSampleError(
                f"label {label} for tuple {pending.tuple_pair!r} "
                f"contradicts the sample collected so far"
            )
        delta = self.state.record(pending.class_id, label)
        self._last_delta = delta
        self.strategy.observe(delta, self.state)
        example = Example(pending.tuple_pair, label)
        self.sample.add(example)
        self._history.append(example)
        self._pending = None
        return example

    def fork(self) -> "InferenceSession":
        """An independent continuation of this session.

        The fork shares the immutable instance/index but owns copies of
        everything mutable — inference state, rng, history, pending
        question, and (via :meth:`Strategy.fork`) any planner caches the
        strategy maintains — so answering and proposing on the fork
        leaves the original untouched and both evolve bit-for-bit as the
        original would have.  The fork carries **no oracle** (drive it
        via :meth:`propose`/:meth:`answer`): sharing a stateful oracle
        (e.g. a :class:`~repro.core.oracle.NoisyOracle` and its rng)
        would let the fork's draws perturb the original's.  The
        service's speculative next-question precompute answers forks on
        worker threads while the real user is still thinking.
        """
        twin = InferenceSession.__new__(InferenceSession)
        twin.instance = self.instance
        twin.oracle = None
        twin.halt_condition = self.halt_condition
        twin.index = self.index
        twin.state = self.state.copy()
        twin.strategy = self.strategy.fork(self.state, twin.state)
        twin.sample = Sample(self.sample)
        twin.seed = self.seed
        twin.rng = random.Random()
        twin.rng.setstate(self.rng.getstate())
        twin._history = list(self._history)
        twin._pending = self._pending
        twin._question_counter = self._question_counter
        twin._last_delta = self._last_delta
        return twin

    # --- blocking loop (local oracle) ----------------------------------------

    def step(self) -> Example:
        """Ask one question: pick a tuple, obtain its label, record it.

        Unlike :meth:`propose`, ``step`` does not consult the halt
        condition — the strategy raises when no informative tuple remains.
        Raises :class:`InconsistentSampleError` when the answer contradicts
        the sample accumulated so far (lines 6–7 of Algorithm 1).
        """
        if self.oracle is None:
            raise RuntimeError(
                "session has no oracle; drive it via propose()/answer()"
            )
        question = self._pending or self._propose_question()
        label = self.oracle.label(question.tuple_pair)
        if not isinstance(label, Label):
            raise TypeError(
                f"oracle returned {label!r}; expected a Label"
            )
        return self.answer(question.question_id, label)

    def current_predicate(self) -> JoinPredicate:
        """``T(S+)`` — the predicate that would be returned right now."""
        return pairs_from_bits(self.instance, self.state.result_mask())

    def run(self) -> InferenceResult:
        """Loop until the halt condition holds; return ``T(S+)``."""
        started = time.perf_counter()
        while not self.halt_condition.should_halt(self):
            self.step()
        elapsed = time.perf_counter() - started
        halted_early = self.state.has_informative()
        return InferenceResult(
            predicate=self.current_predicate(),
            interactions=self.state.interaction_count,
            elapsed_seconds=elapsed,
            strategy_name=self.strategy.name,
            history=tuple(self._history),
            halted_early=halted_early,
        )


def run_inference(
    instance: Instance,
    strategy: Strategy,
    oracle: Oracle,
    halt_condition: HaltCondition | None = None,
    index: SignatureIndex | None = None,
    seed: int | None = None,
) -> InferenceResult:
    """Convenience wrapper: build a session and run it to completion."""
    session = InferenceSession(
        instance,
        strategy,
        oracle,
        halt_condition=halt_condition,
        index=index,
        seed=seed,
    )
    return session.run()
