"""The general inference algorithm (Algorithm 1).

An :class:`InferenceSession` repeatedly asks a strategy for the next
informative tuple, asks the oracle (the user) to label it, and records the
answer, until the halt condition Γ is met — by default the paper's
strongest condition, "no informative tuple left", at which point ``T(S+)``
(the most specific consistent predicate) is returned.  §4.1 also allows
weaker, earlier halts; these are modelled as pluggable
:class:`HaltCondition` objects.

If the oracle's answer contradicts the sample built so far (possible only
with unreliable oracles — strategies ask about informative tuples, whose
two labels are both consistent), the session raises
:class:`~repro.core.consistency.InconsistentSampleError`, matching
Algorithm 1 lines 6–7.
"""

from __future__ import annotations

import random
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from ..relational.predicate import JoinPredicate
from ..relational.relation import Instance, Row
from .consistency import InconsistentSampleError
from .equivalence import instance_equivalent
from .oracle import Oracle
from .sample import Example, Label, Sample
from .signatures import SignatureIndex
from .specialize import pairs_from_bits
from .state import InferenceState
from .strategies.base import Strategy

__all__ = [
    "HaltCondition",
    "NoInformativeTuples",
    "MaxInteractions",
    "InferenceResult",
    "InferenceSession",
    "run_inference",
]

TuplePair = tuple[Row, Row]


class HaltCondition(ABC):
    """Decides when to stop asking (the Γ of Algorithm 1)."""

    @abstractmethod
    def should_halt(self, session: "InferenceSession") -> bool:
        """True once no further question should be asked."""


class NoInformativeTuples(HaltCondition):
    """The paper's strongest halt condition: stop when every tuple of the
    Cartesian product is labeled or uninformative."""

    def should_halt(self, session: "InferenceSession") -> bool:
        return not session.state.has_informative()


class MaxInteractions(HaltCondition):
    """Early halt after a budget of questions (a weaker Γ, §4.1); the
    strongest condition still applies on top of the budget."""

    def __init__(self, budget: int):
        if budget < 0:
            raise ValueError("budget must be non-negative")
        self.budget = budget

    def should_halt(self, session: "InferenceSession") -> bool:
        if session.state.interaction_count >= self.budget:
            return True
        return not session.state.has_informative()


@dataclass(frozen=True, slots=True)
class InferenceResult:
    """Outcome of one interactive inference run."""

    predicate: JoinPredicate
    interactions: int
    elapsed_seconds: float
    strategy_name: str
    history: tuple[Example, ...] = field(repr=False, default=())
    halted_early: bool = False

    def matches_goal(
        self, instance: Instance, goal: JoinPredicate
    ) -> bool:
        """True iff the inferred predicate is instance-equivalent to the
        goal — the correctness criterion of §3.3."""
        return instance_equivalent(instance, self.predicate, goal)


class InferenceSession:
    """One run of Algorithm 1 over a fixed instance/strategy/oracle."""

    def __init__(
        self,
        instance: Instance,
        strategy: Strategy,
        oracle: Oracle,
        halt_condition: HaltCondition | None = None,
        index: SignatureIndex | None = None,
        seed: int | None = None,
    ):
        self.instance = instance
        self.strategy = strategy
        self.oracle = oracle
        self.halt_condition = halt_condition or NoInformativeTuples()
        self.index = index if index is not None else SignatureIndex(instance)
        self.state = InferenceState(self.index)
        self.sample = Sample()
        self.rng = random.Random(seed)
        self._history: list[Example] = []

    def step(self) -> Example:
        """Ask one question: pick a tuple, obtain its label, record it.

        Raises :class:`InconsistentSampleError` when the answer contradicts
        the sample accumulated so far (lines 6–7 of Algorithm 1).
        """
        class_id = self.strategy.choose(self.state, self.rng)
        representative = self.index[class_id].representative
        label = self.oracle.label(representative)
        if not isinstance(label, Label):
            raise TypeError(
                f"oracle returned {label!r}; expected a Label"
            )
        if not self.state.is_consistent_with(class_id, label):
            raise InconsistentSampleError(
                f"label {label} for tuple {representative!r} contradicts "
                f"the sample collected so far"
            )
        self.state.record(class_id, label)
        example = Example(representative, label)
        self.sample.add(example)
        self._history.append(example)
        return example

    def current_predicate(self) -> JoinPredicate:
        """``T(S+)`` — the predicate that would be returned right now."""
        return pairs_from_bits(self.instance, self.state.result_mask())

    def run(self) -> InferenceResult:
        """Loop until the halt condition holds; return ``T(S+)``."""
        started = time.perf_counter()
        while not self.halt_condition.should_halt(self):
            self.step()
        elapsed = time.perf_counter() - started
        halted_early = self.state.has_informative()
        return InferenceResult(
            predicate=self.current_predicate(),
            interactions=self.state.interaction_count,
            elapsed_seconds=elapsed,
            strategy_name=self.strategy.name,
            history=tuple(self._history),
            halted_early=halted_early,
        )


def run_inference(
    instance: Instance,
    strategy: Strategy,
    oracle: Oracle,
    halt_condition: HaltCondition | None = None,
    index: SignatureIndex | None = None,
    seed: int | None = None,
) -> InferenceResult:
    """Convenience wrapper: build a session and run it to completion."""
    session = InferenceSession(
        instance,
        strategy,
        oracle,
        halt_condition=halt_condition,
        index=index,
        seed=seed,
    )
    return session.run()
