"""Definition-level (exponential) reference implementations.

These routines implement §3's definitions *literally* — enumerating the
set ``C(S)`` of all consistent predicates over ``P(Ω)`` — and exist purely
to validate the PTIME lemma-based implementations in
:mod:`repro.core.certain` and :mod:`repro.core.consistency` on small
instances.  They are exponential in ``|Ω|`` and must never be used by the
strategies themselves.
"""

from __future__ import annotations

from itertools import combinations

from ..relational.algebra import selects
from ..relational.predicate import JoinPredicate
from ..relational.relation import Instance, Row
from .sample import Example, Label, Sample

__all__ = [
    "all_predicates",
    "consistent_set",
    "certain_positive_naive",
    "certain_negative_naive",
    "uninformative_examples_naive",
    "is_informative_naive",
]

TuplePair = tuple[Row, Row]


def all_predicates(instance: Instance) -> list[JoinPredicate]:
    """Every ``θ ⊆ Ω`` — all ``2^|Ω|`` of them; keep Ω small."""
    omega = instance.omega
    predicates = []
    for size in range(len(omega) + 1):
        for pairs in combinations(omega, size):
            predicates.append(JoinPredicate(pairs))
    return predicates


def consistent_set(
    instance: Instance, sample: Sample
) -> list[JoinPredicate]:
    """``C(S) = {θ ⊆ Ω | S+ ⊆ R ⋈_θ P  and  S− ∩ R ⋈_θ P = ∅}``."""
    positives = sample.positives
    negatives = sample.negatives
    return [
        theta
        for theta in all_predicates(instance)
        if all(selects(instance, theta, t) for t in positives)
        and not any(selects(instance, theta, t) for t in negatives)
    ]


def certain_positive_naive(
    instance: Instance, sample: Sample
) -> set[TuplePair]:
    """``Cert+(S) = {t ∈ D | ∀θ ∈ C(S). t ∈ R ⋈_θ P}`` by enumeration."""
    candidates = consistent_set(instance, sample)
    return {
        t
        for t in instance.cartesian_product()
        if all(selects(instance, theta, t) for theta in candidates)
    }


def certain_negative_naive(
    instance: Instance, sample: Sample
) -> set[TuplePair]:
    """``Cert−(S) = {t ∈ D | ∀θ ∈ C(S). t ∉ R ⋈_θ P}`` by enumeration."""
    candidates = consistent_set(instance, sample)
    return {
        t
        for t in instance.cartesian_product()
        if not any(selects(instance, theta, t) for theta in candidates)
    }


def uninformative_examples_naive(
    instance: Instance, sample: Sample
) -> set[Example]:
    """``Uninf(S) = {(t, α) | C(S) = C(S ∪ {(t, α)})}`` by enumeration.

    Follows the original definition directly: an example is uninformative
    iff adding it does not shrink the consistent set.  (The definition in
    the paper restricts to examples of the goal-labeled database ``S^G``;
    Lemma 3.2 shows the goal plays no role, so we quantify over all
    examples whose addition keeps the sample well-formed.)
    """
    base = set(map(str, consistent_set(instance, sample)))
    uninformative: set[Example] = set()
    for t in instance.cartesian_product():
        for label in (Label.POSITIVE, Label.NEGATIVE):
            existing = sample.label_of(t)
            if existing is not None and existing is not label:
                continue  # would conflict; not a legal extension
            extended = sample.with_example(Example(t, label))
            if set(map(str, consistent_set(instance, extended))) == base:
                uninformative.add(Example(t, label))
    return uninformative


def is_informative_naive(
    instance: Instance, sample: Sample, tuple_pair: TuplePair
) -> bool:
    """Definition-level informativeness (§3.4): ``t`` is informative iff
    no label makes it already-known — i.e. neither ``(t,+)`` nor ``(t,−)``
    is labeled or uninformative."""
    if sample.is_labeled(tuple_pair):
        return False
    uninformative = uninformative_examples_naive(instance, sample)
    return (
        Example(tuple_pair, Label.POSITIVE) not in uninformative
        and Example(tuple_pair, Label.NEGATIVE) not in uninformative
    )
