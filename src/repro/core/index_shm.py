"""Flat-buffer serialization of :class:`SignatureIndex` for shared memory.

A built index is immutable, and its hot-path state is already
array-native: the ``(|N|, n_words)`` packed uint64 mask matrix, the int64
count vector, and the ⊆-maximal id set.  That makes it a natural fit for
a *flat-buffer* layout — one contiguous segment holding a versioned
header plus the raw arrays — that any process on the machine can map and
serve **zero-copy**: the attach path reconstructs a ``SignatureIndex``
whose arrays are read-only numpy views straight over the mapped buffer,
bit-for-bit identical to a locally built index (property-tested).

Representatives are not stored as row values.  ``Relation`` deduplicates
rows at construction, so each row appears exactly once per relation and
the builder's representative — the minimal tuple of its class in product
order — is fully determined by a single *ordinal*
``left_index * |P| + right_index``.  The writer derives that ordinal from
the representative's (unique) row positions; the attacher reverses it
against its own materialisation of the same instance.  Both sides
materialise the instance from the same spec, so row order agrees.

Layout (little-endian, offsets 16-byte aligned)::

    [0, 128)   header: magic, version, n_words, n_classes, omega_bits,
               total_weight, array offsets, total_bytes
    masks      (n_classes, n_words) uint64 — packed signature masks
    counts     (n_classes,)          int64 — class weights
    ordinals   (n_classes,)          int64 — representative product ordinals
    maximal    (n_classes,)          uint8 — 1 iff the class is ⊆-maximal

The ⊆-maximal flags are serialized rather than recomputed on attach so
the attached index is *identical*, not merely equivalent, to the build.

Segments are plain named POSIX shared memory (``/dev/shm`` files, the
same objects ``multiprocessing.shared_memory`` wraps), but mapped with a
tracker-free handle: segment lifetime is owned by the cross-process
registry (:mod:`repro.service.shm_registry`), and the stdlib resource
tracker would otherwise unlink segments when any single process exits,
yanking mappings out from under the surviving fleet.
"""

from __future__ import annotations

import os
import struct

import numpy as np

from ..relational.relation import Instance
from . import bitset
from .signatures import SignatureClass, SignatureIndex

__all__ = [
    "ShmIndexError",
    "SEGMENT_PREFIX",
    "HEADER_BYTES",
    "FORMAT_VERSION",
    "required_bytes",
    "class_ordinals",
    "write_index",
    "read_index",
    "Segment",
    "shared_memory_available",
    "create_segment",
    "attach_segment",
    "unlink_segment",
    "close_segment",
    "publish_index",
    "attach_index",
]


class ShmIndexError(RuntimeError):
    """A segment could not be written, mapped, or validated."""


#: Shared-memory segment name prefix.  CI's leaked-segment guard and the
#: registry reaper both key off this.
SEGMENT_PREFIX = "repro_idx_"

MAGIC = b"RJQIDX\x00\x01"
FORMAT_VERSION = 1

#: magic, version, n_words, n_classes, omega_bits, total_weight,
#: masks/counts/ordinals/maximal offsets, total_bytes.
_HEADER = struct.Struct("<8sIIQQqQQQQQ")
HEADER_BYTES = 128
assert _HEADER.size <= HEADER_BYTES


def _align(offset: int) -> int:
    return (offset + 15) & ~15


def _layout(n_classes: int, n_words: int) -> tuple[int, int, int, int, int]:
    """``(masks, counts, ordinals, maximal, total)`` byte offsets."""
    masks = HEADER_BYTES
    counts = _align(masks + n_classes * n_words * 8)
    ordinals = _align(counts + n_classes * 8)
    maximal = _align(ordinals + n_classes * 8)
    total = _align(maximal + n_classes)
    return masks, counts, ordinals, maximal, total


def required_bytes(n_classes: int, n_words: int) -> int:
    """Segment bytes needed for an index of the given shape."""
    return _layout(n_classes, n_words)[4]


def class_ordinals(index: SignatureIndex) -> list[int]:
    """Each class representative as its Cartesian-product ordinal.

    Rows are unique within a relation (set semantics), so the positions
    are well-defined; the builder always picks the product-minimal tuple
    of a class, making this ordinal canonical for the instance.
    """
    instance = index.instance
    n_right = len(instance.right)
    left_position = {
        row: i for i, row in enumerate(instance.left.rows)
    }
    right_position = {
        row: i for i, row in enumerate(instance.right.rows)
    }
    return [
        left_position[cls.representative[0]] * n_right
        + right_position[cls.representative[1]]
        for cls in index.classes
    ]


def write_index(index: SignatureIndex, buffer) -> int:
    """Serialize ``index`` into ``buffer``; returns bytes written."""
    n_classes = len(index)
    n_words = index.n_words
    masks_off, counts_off, ordinals_off, maximal_off, total = _layout(
        n_classes, n_words
    )
    view = memoryview(buffer)
    if len(view) < total:
        raise ShmIndexError(
            f"buffer holds {len(view)} bytes, index needs {total}"
        )
    _HEADER.pack_into(
        view,
        0,
        MAGIC,
        FORMAT_VERSION,
        n_words,
        n_classes,
        len(index.instance.omega),
        index.total_weight,
        masks_off,
        counts_off,
        ordinals_off,
        maximal_off,
        total,
    )

    def _out(offset: int, count: int, dtype) -> np.ndarray:
        return np.frombuffer(view, dtype=dtype, count=count, offset=offset)

    _out(masks_off, n_classes * n_words, np.uint64)[:] = (
        index.packed_masks.reshape(-1)
    )
    _out(counts_off, n_classes, np.int64)[:] = index.count_array
    _out(ordinals_off, n_classes, np.int64)[:] = np.asarray(
        class_ordinals(index), dtype=np.int64
    )
    maximal = np.zeros(n_classes, dtype=np.uint8)
    if n_classes:
        maximal[sorted(index.maximal_class_ids)] = 1
    _out(maximal_off, n_classes, np.uint8)[:] = maximal
    return total


def read_index(buffer, instance: Instance) -> SignatureIndex:
    """Reconstruct an index as read-only views over ``buffer``.

    ``instance`` must be the attacher's own materialisation of the
    published instance (same spec ⇒ same row order); the header is
    validated against its Ω before any array is touched.
    """
    view = memoryview(buffer)
    if len(view) < HEADER_BYTES:
        raise ShmIndexError("buffer too small for an index header")
    (
        magic,
        version,
        n_words,
        n_classes,
        omega_bits,
        total_weight,
        masks_off,
        counts_off,
        ordinals_off,
        maximal_off,
        total,
    ) = _HEADER.unpack_from(view, 0)
    if magic != MAGIC:
        raise ShmIndexError("bad magic: not a serialized SignatureIndex")
    if version != FORMAT_VERSION:
        raise ShmIndexError(f"unsupported format version {version}")
    if omega_bits != len(instance.omega):
        raise ShmIndexError(
            f"segment indexes |Ω|={omega_bits}, instance has "
            f"|Ω|={len(instance.omega)}"
        )
    if n_words != bitset.words_needed(omega_bits):
        raise ShmIndexError(
            f"segment packs {n_words} words, Ω needs "
            f"{bitset.words_needed(omega_bits)}"
        )
    if total > len(view) or total != _layout(n_classes, n_words)[4]:
        raise ShmIndexError("segment truncated or layout mismatch")

    def _view(offset: int, count: int, dtype) -> np.ndarray:
        array = np.frombuffer(view, dtype=dtype, count=count, offset=offset)
        array.flags.writeable = False
        return array

    packed = _view(masks_off, n_classes * n_words, np.uint64).reshape(
        n_classes, n_words
    )
    counts = _view(counts_off, n_classes, np.int64)
    ordinals = _view(ordinals_off, n_classes, np.int64)
    maximal = _view(maximal_off, n_classes, np.uint8)

    left_rows = instance.left.rows
    right_rows = instance.right.rows
    n_right = len(right_rows)
    classes = []
    for class_id in range(n_classes):
        mask = bitset.unpack_row(packed[class_id])
        left_index, right_index = divmod(int(ordinals[class_id]), n_right)
        try:
            representative = (
                left_rows[left_index],
                right_rows[right_index],
            )
        except IndexError as exc:
            raise ShmIndexError(
                "representative ordinal out of range — instance does "
                "not match the published segment"
            ) from exc
        classes.append(
            SignatureClass(
                class_id, mask, int(counts[class_id]), representative
            )
        )
    maximal_ids = frozenset(
        int(class_id) for class_id in np.nonzero(maximal)[0]
    )
    return SignatureIndex.from_arrays(
        instance,
        tuple(classes),
        packed,
        counts,
        maximal_ids,
        total_weight=total_weight,
    )


# --- shared-memory segment helpers ---------------------------------------
#
# Deliberately NOT multiprocessing.shared_memory.SharedMemory: that class
# enrolls every segment with the per-process resource tracker, which (a)
# unlinks registered segments when the registering process exits —
# destroying the machine-wide segment under every surviving fleet worker
# — and (b) logs protocol noise when told to forget names out of band.
# Segment lifetime here belongs to the cross-process registry
# (:mod:`repro.service.shm_registry`), so the handle below is the raw
# POSIX primitive: ``shm_open`` + ``mmap``, nothing watching it.


def _posix_name(name: str) -> str:
    return name if name.startswith("/") else "/" + name


class Segment:
    """A minimal named POSIX shared-memory mapping.

    The descriptor is closed right after mapping — the mapping (and the
    ``/dev/shm`` name, until unlinked) live independently of it.
    """

    __slots__ = ("name", "size", "_mmap")

    def __init__(self, name: str, *, create: bool = False, size: int = 0):
        import _posixshmem
        import mmap as mmap_module

        flags = os.O_RDWR
        if create:
            flags |= os.O_CREAT | os.O_EXCL
        fd = _posixshmem.shm_open(_posix_name(name), flags, mode=0o600)
        try:
            if create and size:
                os.ftruncate(fd, size)
            actual = os.fstat(fd).st_size
            if actual == 0:
                # A crashed creator can leave a zero-length file, which
                # mmap refuses; surface it as a validation failure.
                raise ShmIndexError(f"segment {name!r} is empty")
            self._mmap = mmap_module.mmap(fd, actual)
        except BaseException:
            os.close(fd)
            if create:
                unlink_segment(name)
            raise
        os.close(fd)
        self.name = name
        self.size = actual

    @property
    def buf(self) -> memoryview:
        return memoryview(self._mmap)

    def close(self) -> None:
        """Unmap; raises ``BufferError`` while views are still live
        (use :func:`close_segment` to tolerate that)."""
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None


def shared_memory_available() -> bool:
    """Probe whether POSIX shared memory actually works here."""
    try:
        import _posixshmem  # noqa: F401 - availability probe
    except ImportError:  # pragma: no cover - non-POSIX platform
        return False
    name = f"{SEGMENT_PREFIX}probe_{os.getpid()}"
    unlink_segment(name)
    try:
        probe = Segment(name, create=True, size=16)
    except (OSError, ValueError, ShmIndexError):
        # pragma: no cover - env dependent (e.g. /dev/shm unmounted)
        return False
    probe.close()
    unlink_segment(name)
    return True


def create_segment(name: str, size: int) -> Segment:
    """Create a shared-memory segment of at least ``size`` bytes."""
    return Segment(name, create=True, size=max(size, 1))


def attach_segment(name: str) -> Segment:
    """Map an existing segment; raises ``FileNotFoundError`` if gone."""
    return Segment(name)


def unlink_segment(name: str) -> bool:
    """Best-effort unlink of a segment by name; True if it existed."""
    try:
        import _posixshmem
    except ImportError:  # pragma: no cover - non-POSIX platform
        return False
    try:
        _posixshmem.shm_unlink(_posix_name(name))
    except FileNotFoundError:
        return False
    except OSError:  # pragma: no cover - e.g. permissions
        return False
    return True


def close_segment(shm: Segment) -> None:
    """Close a segment handle, tolerating live views over its mapping.

    Unmapping raises ``BufferError`` while numpy views of an attached
    index still reference the mapping.  In that case the handle's
    reference is simply dropped: the ``mmap`` object stays alive exactly
    as long as the views do and unmaps when the last one dies (or at
    process exit).
    """
    try:
        shm.close()
    except BufferError:
        shm._mmap = None


def publish_index(index: SignatureIndex, name: str):
    """Serialize ``index`` into a fresh segment ``name``; returns it."""
    size = required_bytes(len(index), index.n_words)
    shm = create_segment(name, size)
    try:
        write_index(index, shm.buf)
    except BaseException:
        close_segment(shm)
        unlink_segment(name)
        raise
    return shm


def attach_index(name: str, instance: Instance):
    """Map segment ``name`` and rebuild its index; ``(shm, index)``.

    The caller must keep ``shm`` open for as long as the index lives —
    the index's arrays are views over the mapping.
    """
    shm = attach_segment(name)
    try:
        index = read_index(shm.buf, instance)
    except BaseException:
        close_segment(shm)
        raise
    return shm, index
