"""Consistency checking for equijoin samples (§3.1) — PTIME.

A predicate ``θ`` is *consistent* with a sample ``S`` iff it selects every
positive example and no negative one.  §3.1 proves the following simple
procedure sound and complete: compute the most specific predicate
``T(S+)`` selecting all positives, then check it selects no negative.
``T(S+)`` is itself the canonical consistent predicate whenever one
exists.
"""

from __future__ import annotations

from ..relational.algebra import selects
from ..relational.predicate import JoinPredicate
from ..relational.relation import Instance
from .sample import Sample
from .specialize import most_specific_for_set, most_specific_predicate

__all__ = [
    "is_consistent",
    "consistent_predicate",
    "is_predicate_consistent_with",
    "InconsistentSampleError",
]


class InconsistentSampleError(ValueError):
    """Raised when the interactive loop receives contradictory labels."""


def consistent_predicate(
    instance: Instance, sample: Sample
) -> JoinPredicate | None:
    """The most specific consistent predicate ``T(S+)``, or ``None``.

    Returns ``None`` exactly when no consistent equijoin predicate exists
    (§3.1 completeness argument: any consistent θ satisfies
    ``θ ⊆ T(S+)``, and selection is anti-monotone in θ, so if ``T(S+)``
    selects a negative example every consistent candidate does too).
    """
    most_specific = most_specific_for_set(instance, sample.positives)
    for negative in sample.negatives:
        if most_specific <= most_specific_predicate(instance, negative):
            return None
    return most_specific


def is_consistent(instance: Instance, sample: Sample) -> bool:
    """PTIME consistency check of §3.1."""
    return consistent_predicate(instance, sample) is not None


def is_predicate_consistent_with(
    instance: Instance, predicate: JoinPredicate, sample: Sample
) -> bool:
    """Does ``θ`` select all of ``S+`` and none of ``S−``?

    The membership test ``t ∈ R ⋈_θ P`` reduces to ``θ ⊆ T(t)``, so this
    runs in time ``O(|S| · |θ|)`` without evaluating any join.
    """
    return all(
        selects(instance, predicate, t) for t in sample.positives
    ) and not any(selects(instance, predicate, t) for t in sample.negatives)
