"""Sharded construction pipeline for the signature index.

The :class:`~repro.core.signatures.SignatureIndex` is the quotient of
``D = R × P`` by ``T`` (§4) and the one artifact every strategy and every
service session depends on.  Its monolithic constructors walk the whole
product in one pass; this module factorises that pass into **shards** —
contiguous ranges of rows of ``R``, each crossed with all of ``P`` —
that are computed independently and merged:

1. a :class:`~repro.relational.source.SignatureSource` streams the rows
   (in-memory instance, CSV stream, or SQLite with SQL push-down);
2. each shard runs the chunked packed-bitset kernel
   (:func:`shard_signatures`) or the source's native push-down, yielding
   the shard's distinct signatures as packed uint64 arrays — counts and
   minimal product ordinals, never Python dicts per chunk;
3. :func:`merge_shards` folds the shard histograms with one vectorised
   ``unique`` (counts sum, ordinals min, representative follows the
   minimal ordinal), and :func:`index_from_signatures` canonicalises
   into ``(|signature|, mask)`` order — the one ordering rule shared by
   the kernel, push-down, and sampled paths.

Because shards partition the product by ascending row ranges and the
merge resolves representatives by *global* minimal ordinal, the result
is bit-for-bit identical to the monolithic build for every shard size,
worker count, and backend (property-tested against both the monolithic
NumPy path and the pure-Python reference).

Shards are embarrassingly parallel: :class:`IndexBuilder` can fan them
out over a ``concurrent.futures`` thread pool (the heavy kernels are
NumPy ufuncs and sorts, which release the GIL), while a streaming source
is read sequentially with a bounded window of in-flight shards so memory
stays capped.  The service layer runs whole builds on such a pool off
its event loop — see :mod:`repro.service.index_cache`.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from math import ceil
from typing import Callable, Mapping, Sequence

import numpy as np

from ..relational.relation import Instance, Row
from ..relational.source import SignatureSource, as_signature_source
from . import bitset
from .signatures import SignatureClass, SignatureIndex, ValueCodec

__all__ = [
    "IndexBuilder",
    "ShardSignatures",
    "shard_signatures",
    "merge_shards",
    "signature_histogram",
    "index_from_signatures",
    "build_signature_index",
]

TuplePair = tuple[Row, Row]

#: Target packed uint64 words materialised per kernel chunk (~8 MiB) —
#: the same bound the monolithic constructor uses, so a shard never
#: allocates more than a chunk of the product regardless of its size.
_CHUNK_WORDS = 1 << 20

#: Rows per shard for parallel builds over sources whose ``|R|`` is
#: unknown up front (pure streams): without this, ``workers > 1`` over
#: a streaming CSV would silently collapse into one monolithic block.
_STREAM_SHARD_ROWS = 4096

ProgressCallback = Callable[[int, "int | None"], None]


@dataclass(slots=True)
class ShardSignatures:
    """The distinct signatures of one shard of ``R × P``.

    ``words[k]`` is a packed mask; ``counts[k]`` how many product tuples
    of the shard carry it; ``ordinals[k]`` the smallest global product
    ordinal (``left_index * |P| + right_index``) carrying it; and
    ``representatives[k]`` the tuple pair at that ordinal.
    """

    words: np.ndarray  # (k, n_words) uint64
    counts: np.ndarray  # (k,) int64
    ordinals: np.ndarray  # (k,) int64
    representatives: list

    @classmethod
    def empty(cls, n_words: int) -> "ShardSignatures":
        return cls(
            words=np.empty((0, n_words), dtype=np.uint64),
            counts=np.empty(0, dtype=np.int64),
            ordinals=np.empty(0, dtype=np.int64),
            representatives=[],
        )

    def __len__(self) -> int:
        return len(self.counts)


def _fold(
    words: np.ndarray, counts: np.ndarray, ordinals: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Combine duplicate packed masks: counts sum, ordinals min.

    Returns ``(unique_words, counts, ordinals, winners)`` where
    ``winners[g]`` is the input position whose ordinal attained the
    minimum for group ``g`` — ordinals are distinct product positions,
    so exactly one input wins each group.
    """
    unique, _, inverse, _ = bitset.unique_rows(words)
    groups = len(unique)
    summed = np.zeros(groups, dtype=np.int64)
    np.add.at(summed, inverse, counts)
    minimal = np.full(groups, np.iinfo(np.int64).max, dtype=np.int64)
    np.minimum.at(minimal, inverse, ordinals)
    winners = np.empty(groups, dtype=np.int64)
    winning = np.nonzero(ordinals == minimal[inverse])[0]
    winners[inverse[winning]] = winning
    return unique, summed, minimal, winners


def shard_signatures(
    left_codes: np.ndarray,
    right_codes: np.ndarray,
    left_rows: Sequence[Row],
    right_rows: Sequence[Row],
    start_row: int,
) -> ShardSignatures:
    """Signatures of left rows ``start_row .. start_row+len(left_rows)``
    against all right rows, via the chunked packed-bitset kernel.

    ``left_codes``/``right_codes`` must come from one shared
    :class:`~repro.core.signatures.ValueCodec` so code equality means
    value equality across the whole build.  Peak memory is one chunk of
    packed words (~8 MiB), not the shard's slice of the product.
    """
    shard_rows = left_codes.shape[0]
    n = left_codes.shape[1]
    n_right, m = right_codes.shape
    n_words = bitset.words_needed(max(1, n * m))
    if shard_rows == 0 or n_right == 0:
        return ShardSignatures.empty(n_words)
    rows_per_chunk = max(1, _CHUNK_WORDS // (n_right * n_words))

    chunk_words: list[np.ndarray] = []
    chunk_counts: list[np.ndarray] = []
    chunk_ordinals: list[np.ndarray] = []
    for chunk_start in range(0, shard_rows, rows_per_chunk):
        chunk_stop = min(chunk_start + rows_per_chunk, shard_rows)
        chunk = chunk_stop - chunk_start
        words = np.zeros((chunk * n_right, n_words), dtype=np.uint64)
        for i in range(n):
            column_left = left_codes[chunk_start:chunk_stop, i : i + 1]
            for j in range(m):
                position = i * m + j
                word_index, bit = divmod(position, bitset.WORD_BITS)
                equal = column_left == right_codes[None, :, j].reshape(
                    1, n_right
                )
                words[:, word_index] |= equal.reshape(
                    chunk * n_right
                ).astype(np.uint64) << np.uint64(bit)
        unique, first_indices, _, counts = bitset.unique_rows(words)
        chunk_words.append(unique)
        chunk_counts.append(counts.astype(np.int64, copy=False))
        chunk_ordinals.append(
            (start_row + chunk_start) * n_right
            + first_indices.astype(np.int64, copy=False)
        )

    words = np.concatenate(chunk_words)
    counts = np.concatenate(chunk_counts)
    ordinals = np.concatenate(chunk_ordinals)
    words, counts, ordinals, _ = _fold(words, counts, ordinals)
    representatives = [
        (
            left_rows[int(ordinal) // n_right - start_row],
            right_rows[int(ordinal) % n_right],
        )
        for ordinal in ordinals
    ]
    return ShardSignatures(words, counts, ordinals, representatives)


def merge_shards(
    shards: Sequence[ShardSignatures], n_words: int
) -> ShardSignatures:
    """Fold shard histograms into one: counts sum per mask, and the
    representative follows the globally minimal product ordinal.

    Handles empty shard lists and empty shards (a shard of zero rows
    contributes nothing), so callers never special-case them.
    """
    shards = [shard for shard in shards if len(shard)]
    if not shards:
        return ShardSignatures.empty(n_words)
    if len(shards) == 1:
        return shards[0]
    words = np.concatenate([shard.words for shard in shards])
    counts = np.concatenate([shard.counts for shard in shards])
    ordinals = np.concatenate([shard.ordinals for shard in shards])
    representatives: list = []
    for shard in shards:
        representatives.extend(shard.representatives)
    words, counts, ordinals, winners = _fold(words, counts, ordinals)
    return ShardSignatures(
        words,
        counts,
        ordinals,
        [representatives[int(winner)] for winner in winners],
    )


def signature_histogram(
    merged: ShardSignatures,
) -> dict[int, tuple[int, TuplePair]]:
    """A merged shard fold as ``{mask: (count, representative)}`` — the
    input shape of :func:`index_from_signatures`, so every backend
    (kernel, push-down, sampled) shares one canonicalisation."""
    return {
        bitset.unpack_row(row): (int(count), representative)
        for row, count, representative in zip(
            merged.words, merged.counts, merged.representatives
        )
    }


def index_from_signatures(
    instance: Instance,
    found: Mapping[int, tuple[int, TuplePair]],
) -> SignatureIndex:
    """An index from a ``{mask: (count, representative)}`` histogram.

    The shared canonicalisation tail of the pipeline — also the route
    :func:`~repro.core.sampling.sampled_signature_index` takes, so
    sampled and exact indexes cannot drift apart structurally.
    """
    ordered = sorted(
        found.items(), key=lambda item: (item[0].bit_count(), item[0])
    )
    classes = tuple(
        SignatureClass(class_id, mask, count, representative)
        for class_id, (mask, (count, representative)) in enumerate(ordered)
    )
    return SignatureIndex.from_classes(instance, classes)


class IndexBuilder:
    """Builds :class:`SignatureIndex` objects from pluggable sources.

    ``shard_rows`` bounds how many rows of ``R`` one shard covers
    (``None`` = automatic: a single shard, or ``⌈|R| / workers⌉`` when
    ``workers > 1`` and the source knows ``|R|``).  ``workers`` fans
    shard kernels out over a transient thread pool; push-down sources
    (SQLite) always evaluate their shards sequentially because an
    embedded connection is bound to one thread.

    The builder is stateless across builds and safe to share — the
    service keeps one per :class:`~repro.service.index_cache.IndexCache`.
    """

    __slots__ = ("shard_rows", "workers")

    def __init__(
        self, shard_rows: int | None = None, workers: int = 1
    ):
        if shard_rows is not None and shard_rows < 1:
            raise ValueError("shard_rows must be positive or None")
        if workers < 1:
            raise ValueError("workers must be positive")
        self.shard_rows = shard_rows
        self.workers = workers

    # --- planning ---------------------------------------------------------

    def _plan_shard_rows(self, left_count: int | None) -> int | None:
        """The effective rows-per-shard for this build (None = one shard)."""
        if self.shard_rows is not None:
            return self.shard_rows
        if self.workers > 1:
            if left_count:
                return ceil(left_count / self.workers)
            if left_count is None:
                # Unknown-length stream: fixed-size shards keep the
                # workers fed and the per-block working set bounded.
                return _STREAM_SHARD_ROWS
        return None

    @staticmethod
    def _shards_total(
        left_count: int | None, shard_rows: int | None
    ) -> int | None:
        if shard_rows is None:
            return 1
        if left_count is None:
            return None
        return max(1, ceil(left_count / shard_rows))

    # --- entry point ------------------------------------------------------

    def build(
        self,
        source: SignatureSource | Instance,
        progress: ProgressCallback | None = None,
    ) -> SignatureIndex:
        """Build the full index for ``source``.

        ``progress(shards_done, shards_total)`` is invoked after every
        completed shard (``shards_total`` is ``None`` while a streaming
        source's length is unknown) — the service surfaces it on its
        build-status endpoint.
        """
        source = as_signature_source(source)
        try:
            if source.supports_pushdown:
                found = self._build_pushdown(source, progress)
            else:
                found = self._build_kernel(source, progress)
            return index_from_signatures(source.instance(), found)
        finally:
            source.end_build()

    # --- kernel path ------------------------------------------------------

    def _build_kernel(
        self,
        source: SignatureSource,
        progress: ProgressCallback | None,
    ) -> dict[int, tuple[int, TuplePair]]:
        right_rows = source.right_rows()
        n = source.left_schema.arity
        m = source.right_schema.arity
        n_words = bitset.words_needed(max(1, n * m))
        if not right_rows:
            return {}
        codec = ValueCodec()
        right_codes = codec.encode_rows(right_rows, m)
        left_count = source.left_count()
        shard_rows = self._plan_shard_rows(left_count)
        total = self._shards_total(left_count, shard_rows)

        shards: list[ShardSignatures] = []
        done = 0

        def note(shard: ShardSignatures) -> None:
            nonlocal done
            shards.append(shard)
            done += 1
            if progress is not None:
                progress(done, total)

        blocks = source.iter_left_blocks(shard_rows)
        if self.workers == 1:
            for start, rows in blocks:
                note(
                    shard_signatures(
                        codec.encode_rows(rows, n),
                        right_codes,
                        rows,
                        right_rows,
                        start,
                    )
                )
        else:
            # Encode on the consuming thread (the codec dict is shared),
            # fan the kernels out, and cap in-flight shards so streamed
            # blocks are never all resident at once.
            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                in_flight: deque = deque()
                for start, rows in blocks:
                    in_flight.append(
                        pool.submit(
                            shard_signatures,
                            codec.encode_rows(rows, n),
                            right_codes,
                            rows,
                            right_rows,
                            start,
                        )
                    )
                    while len(in_flight) > self.workers:
                        note(in_flight.popleft().result())
                while in_flight:
                    note(in_flight.popleft().result())

        return signature_histogram(merge_shards(shards, n_words))

    # --- push-down path ---------------------------------------------------

    def _build_pushdown(
        self,
        source: SignatureSource,
        progress: ProgressCallback | None,
    ) -> dict[int, tuple[int, TuplePair]]:
        left_count = source.left_count()
        if left_count is None:
            raise ValueError(
                "push-down sources must know their left row count"
            )
        shard_rows = self._plan_shard_rows(left_count) or max(1, left_count)
        total = self._shards_total(left_count, shard_rows)
        merged: dict[int, list[int]] = {}
        done = 0
        for start in range(0, max(1, left_count), shard_rows):
            stop = min(start + shard_rows, left_count)
            for mask, (count, ordinal) in source.shard_signatures(
                start, stop
            ).items():
                entry = merged.get(mask)
                if entry is None:
                    merged[mask] = [count, ordinal]
                else:
                    entry[0] += count
                    entry[1] = min(entry[1], ordinal)
            done += 1
            if progress is not None:
                progress(done, total)
        instance = source.instance()
        left_rows = instance.left.rows
        right_rows = instance.right.rows
        n_right = len(right_rows)
        return {
            mask: (
                count,
                (
                    left_rows[ordinal // n_right],
                    right_rows[ordinal % n_right],
                ),
            )
            for mask, (count, ordinal) in merged.items()
        }


def build_signature_index(
    source: SignatureSource | Instance,
    shard_rows: int | None = None,
    workers: int = 1,
    progress: ProgressCallback | None = None,
) -> SignatureIndex:
    """One-call convenience wrapper around :class:`IndexBuilder`."""
    return IndexBuilder(shard_rows=shard_rows, workers=workers).build(
        source, progress=progress
    )
