"""The signature index — quotient of the Cartesian product by ``T``.

Two tuples with the same most-specific predicate ``T(t)`` are
interchangeable for the entire inference process: they are selected by
exactly the same predicates, so they have identical informativeness and
identical effect when labeled.  (This is also the observation behind the
paper's *join ratio*, which is defined over the distinct values of ``T``.)

The :class:`SignatureIndex` groups ``D = R × P`` into equivalence classes,
each carrying:

* ``mask`` — ``T(t)`` encoded as a bitmask over Ω (canonical order),
* ``count`` — how many Cartesian tuples share the signature,
* ``representative`` — the first such tuple in canonical order.

Every strategy then reasons over the (usually tiny) set of classes instead
of the (possibly huge) product.  Two construction back ends are provided:
a pure-Python reference and a vectorised NumPy one that walks ``R × P`` in
chunks of packed 64-bit signature words (so peak memory is bounded by the
chunk size, not by ``|R|·|P|``, and any Ω width is supported); they
produce identical indexes (property-tested).

Beyond the classes themselves the index precomputes the array-native views
the hot path needs: the ``(|N|, n_words)`` packed mask matrix, the class
count vector, the cached total weight ``|D|``, and the ⊆-maximal class set
(found with a sort-by-popcount pruned scan instead of the quadratic
all-pairs test).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Literal, Sequence

import numpy as np

from ..relational.predicate import JoinPredicate
from ..relational.relation import Instance, Row
from . import bitset
from .specialize import pairs_from_bits, signature_bits

__all__ = ["SignatureClass", "SignatureIndex", "ValueCodec"]

TuplePair = tuple[Row, Row]

# Target number of packed uint64 words materialised per construction chunk
# (~8 MiB).  Chunks cover whole rows of R, so the bound is approximate.
_CHUNK_WORDS = 1 << 20


@dataclass(frozen=True, slots=True)
class SignatureClass:
    """One equivalence class of the Cartesian product under ``T``."""

    class_id: int
    mask: int
    count: int
    representative: TuplePair

    @property
    def size(self) -> int:
        """``|T(t)|`` — the number of attribute pairs in the signature."""
        return self.mask.bit_count()


def _signatures_python(instance: Instance) -> dict[int, tuple[int, TuplePair]]:
    """Reference construction: iterate the full product in Python."""
    found: dict[int, tuple[int, TuplePair]] = {}
    for pair in instance.cartesian_product():
        mask = signature_bits(instance, pair)
        if mask in found:
            count, representative = found[mask]
            found[mask] = (count + 1, representative)
        else:
            found[mask] = (1, pair)
    return found


class ValueCodec:
    """Assigns dense integer codes to attribute values.

    Equality of codes must coincide with Python equality of values, so
    one codec (one global code table) must cover both relations of a
    build — the sharded pipeline in :mod:`repro.core.index_build` keeps
    a single codec alive across all streamed blocks for exactly this
    reason.
    """

    __slots__ = ("_codes",)

    def __init__(self) -> None:
        self._codes: dict[object, int] = {}

    def encode_rows(self, rows: Sequence[Row], arity: int) -> np.ndarray:
        """Encode ``rows`` as an ``(len(rows), arity)`` int64 matrix."""
        codes = self._codes

        def code_of(value: object) -> int:
            existing = codes.get(value)
            if existing is not None:
                return existing
            fresh = len(codes)
            codes[value] = fresh
            return fresh

        return np.array(
            [[code_of(v) for v in row] for row in rows],
            dtype=np.int64,
        ).reshape(len(rows), arity)


def _encode_columns(instance: Instance) -> tuple[np.ndarray, np.ndarray]:
    """Encode all attribute values of both relations as dense codes."""
    codec = ValueCodec()
    left = codec.encode_rows(instance.left.rows, instance.left.arity)
    right = codec.encode_rows(instance.right.rows, instance.right.arity)
    return left, right


def _signatures_numpy(instance: Instance) -> dict[int, tuple[int, TuplePair]]:
    """Vectorised construction: packed signature words for a chunk of
    ``R × P`` at a time, uniquified per chunk and merged.

    Peak memory is ``O(chunk)`` rather than ``O(|R|·|P|)``; Ω of any width
    packs into ``n_words`` 64-bit words.
    """
    n_left = len(instance.left)
    n_right = len(instance.right)
    if n_left == 0 or n_right == 0:
        return {}
    left, right = _encode_columns(instance)
    n = instance.left.arity
    m = instance.right.arity
    n_words = bitset.words_needed(n * m)
    rows_per_chunk = max(1, _CHUNK_WORDS // (n_right * n_words))

    found: dict[int, tuple[int, TuplePair]] = {}
    left_rows = instance.left.rows
    right_rows = instance.right.rows
    for start in range(0, n_left, rows_per_chunk):
        stop = min(start + rows_per_chunk, n_left)
        chunk = stop - start
        words = np.zeros((chunk * n_right, n_words), dtype=np.uint64)
        for i in range(n):
            column_left = left[start:stop, i : i + 1]  # (chunk, 1)
            for j in range(m):
                position = i * m + j
                word_index, bit = divmod(position, bitset.WORD_BITS)
                equal = column_left == right[None, :, j].reshape(1, n_right)
                words[:, word_index] |= equal.reshape(
                    chunk * n_right
                ).astype(np.uint64) << np.uint64(bit)
        unique, first_indices, _, counts = bitset.unique_rows(words)
        for row_words, first, count in zip(unique, first_indices, counts):
            mask = bitset.unpack_row(row_words)
            existing = found.get(mask)
            if existing is None:
                r_index, p_index = divmod(
                    start * n_right + int(first), n_right
                )
                found[mask] = (
                    int(count),
                    (left_rows[r_index], right_rows[p_index]),
                )
            else:
                found[mask] = (existing[0] + int(count), existing[1])
    return found


class SignatureIndex:
    """All distinct ``T`` signatures of an instance, with counts.

    Classes are ordered canonically by ``(|signature|, mask)`` so that
    strategy tie-breaking is deterministic.
    """

    __slots__ = (
        "_instance",
        "_classes",
        "_by_mask",
        "_omega_mask",
        "_maximal_ids",
        "_n_words",
        "_packed_masks",
        "_count_array",
        "_total_weight",
    )

    def __init__(
        self,
        instance: Instance,
        backend: Literal["auto", "numpy", "python"] = "auto",
    ):
        if backend == "python":
            found = _signatures_python(instance)
        elif backend == "numpy":
            found = _signatures_numpy(instance)
        elif backend == "auto":
            # NumPy wins past a few hundred product tuples; below that the
            # fixed encoding cost dominates.
            if instance.cartesian_size >= 512:
                found = _signatures_numpy(instance)
            else:
                found = _signatures_python(instance)
        else:
            raise ValueError(f"unknown backend {backend!r}")
        ordered = sorted(
            found.items(), key=lambda item: (item[0].bit_count(), item[0])
        )
        classes = tuple(
            SignatureClass(class_id, mask, count, representative)
            for class_id, (mask, (count, representative)) in enumerate(ordered)
        )
        self._install(instance, classes)

    @classmethod
    def from_classes(
        cls, instance: Instance, classes: Sequence[SignatureClass]
    ) -> "SignatureIndex":
        """An index over pre-built classes (approximate/sampled indexes).

        ``classes`` must already be in canonical ``(size, mask)`` order
        with consecutive ids — the invariants the constructor enforces.
        """
        index = cls.__new__(cls)
        index._install(instance, tuple(classes))
        return index

    @classmethod
    def from_arrays(
        cls,
        instance: Instance,
        classes: tuple[SignatureClass, ...],
        packed_masks: np.ndarray,
        count_array: np.ndarray,
        maximal_ids: Iterable[int],
        total_weight: int | None = None,
    ) -> "SignatureIndex":
        """An index over precomputed arrays, installed without copying.

        This is the zero-copy attach path of :mod:`repro.core.index_shm`:
        ``packed_masks`` / ``count_array`` may be read-only views over a
        shared-memory mapping, and the ⊆-maximal set is supplied rather
        than recomputed so the result is bit-for-bit the published index.
        The arrays must agree with ``classes`` (canonical order, same
        counts) — callers are expected to hold a serialized form that
        already went through the constructor once.
        """
        n_words = bitset.words_needed(len(instance.omega))
        if packed_masks.shape != (len(classes), n_words):
            raise ValueError(
                f"packed_masks shape {packed_masks.shape} does not match "
                f"({len(classes)}, {n_words})"
            )
        if count_array.shape != (len(classes),):
            raise ValueError(
                f"count_array shape {count_array.shape} does not match "
                f"({len(classes)},)"
            )
        index = cls.__new__(cls)
        index._instance = instance
        index._classes = classes
        index._by_mask = {c.mask: c.class_id for c in classes}
        index._omega_mask = (1 << len(instance.omega)) - 1
        index._n_words = n_words
        index._packed_masks = packed_masks
        index._count_array = count_array
        index._total_weight = (
            int(count_array.sum()) if total_weight is None else int(total_weight)
        )
        index._maximal_ids = frozenset(maximal_ids)
        return index

    def _install(
        self, instance: Instance, classes: tuple[SignatureClass, ...]
    ) -> None:
        """Set every derived structure from the final class tuple."""
        self._instance = instance
        self._classes = classes
        self._by_mask = {cls.mask: cls.class_id for cls in classes}
        self._omega_mask = (1 << len(instance.omega)) - 1
        self._n_words = bitset.words_needed(len(instance.omega))
        self._packed_masks = bitset.pack_masks(
            (cls.mask for cls in classes), self._n_words
        )
        self._count_array = np.array(
            [cls.count for cls in classes], dtype=np.int64
        )
        self._total_weight = int(self._count_array.sum())
        self._maximal_ids = self._compute_maximal_ids()

    def _compute_maximal_ids(self) -> frozenset[int]:
        """Classes whose signature has no strict superset among signatures.

        These are the ⊆-maximal nodes used by the top-down strategy.
        Scanning popcount groups largest-first prunes the quadratic
        all-pairs test: a strict superset always has a strictly larger
        popcount, and containment in *any* already-seen signature implies
        containment in an accepted maximal one, so each group only needs
        testing against the accepted maximal set.
        """
        if not self._classes:
            return frozenset()
        sizes = bitset.popcounts(self._packed_masks)
        maximal_ids: list[int] = []
        maximal_rows = np.empty((0, self._n_words), dtype=np.uint64)
        for size in np.unique(sizes)[::-1]:
            group_ids = np.nonzero(sizes == size)[0]
            group = self._packed_masks[group_ids]
            keep = ~bitset.subset_of_any(group, maximal_rows)
            survivors = group_ids[keep]
            maximal_ids.extend(int(class_id) for class_id in survivors)
            maximal_rows = np.concatenate([maximal_rows, group[keep]])
        return frozenset(maximal_ids)

    # --- basic accessors -------------------------------------------------

    @property
    def instance(self) -> Instance:
        """The indexed instance."""
        return self._instance

    @property
    def classes(self) -> tuple[SignatureClass, ...]:
        """All classes in canonical order."""
        return self._classes

    @property
    def omega_mask(self) -> int:
        """Bitmask with every position of Ω set (encodes Ω itself)."""
        return self._omega_mask

    @property
    def n_words(self) -> int:
        """Packed words per mask (``⌈|Ω| / 64⌉``, at least 1)."""
        return self._n_words

    @property
    def packed_masks(self) -> np.ndarray:
        """``(|N|, n_words)`` uint64 matrix of all class masks.

        Shared, not copied — treat as read-only.
        """
        return self._packed_masks

    @property
    def count_array(self) -> np.ndarray:
        """``(|N|,)`` int64 vector of class counts (read-only view)."""
        return self._count_array

    @property
    def maximal_class_ids(self) -> frozenset[int]:
        """Ids of the ⊆-maximal signature classes (top-down entry points)."""
        return self._maximal_ids

    @property
    def total_weight(self) -> int:
        """``|D|`` — the sum of class counts (cached at construction)."""
        return self._total_weight

    @property
    def nbytes(self) -> int:
        """Bytes held by the packed array state (mask matrix + counts).

        For a shared-memory attached index these bytes live in the
        mapped segment, not in this process's private heap.
        """
        return int(self._packed_masks.nbytes + self._count_array.nbytes)

    def __len__(self) -> int:
        return len(self._classes)

    def __iter__(self) -> Iterator[SignatureClass]:
        return iter(self._classes)

    def __getitem__(self, class_id: int) -> SignatureClass:
        return self._classes[class_id]

    def class_of_mask(self, mask: int) -> SignatureClass | None:
        """The class with the given signature mask, if present."""
        class_id = self._by_mask.get(mask)
        return None if class_id is None else self._classes[class_id]

    def class_of_tuple(self, tuple_pair: TuplePair) -> SignatureClass:
        """The class containing a concrete Cartesian tuple."""
        mask = signature_bits(self._instance, tuple_pair)
        class_id = self._by_mask.get(mask)
        if class_id is None:
            raise KeyError(
                f"tuple {tuple_pair!r} does not belong to the indexed product"
            )
        return self._classes[class_id]

    def predicate_of(self, class_id: int) -> JoinPredicate:
        """Decode the signature of ``class_id`` into a JoinPredicate."""
        return pairs_from_bits(self._instance, self._classes[class_id].mask)

    # --- paper-level statistics ------------------------------------------

    def join_ratio(self) -> float:
        """§5.3's *join ratio*: mean signature size over distinct signatures.

        An instance with no tuples has, by convention, ratio 0.
        """
        if not self._classes:
            return 0.0
        return sum(cls.size for cls in self._classes) / len(self._classes)
