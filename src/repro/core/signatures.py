"""The signature index — quotient of the Cartesian product by ``T``.

Two tuples with the same most-specific predicate ``T(t)`` are
interchangeable for the entire inference process: they are selected by
exactly the same predicates, so they have identical informativeness and
identical effect when labeled.  (This is also the observation behind the
paper's *join ratio*, which is defined over the distinct values of ``T``.)

The :class:`SignatureIndex` groups ``D = R × P`` into equivalence classes,
each carrying:

* ``mask`` — ``T(t)`` encoded as a bitmask over Ω (canonical order),
* ``count`` — how many Cartesian tuples share the signature,
* ``representative`` — the first such tuple in canonical order.

Every strategy then reasons over the (usually tiny) set of classes instead
of the (possibly huge) product.  Two construction back ends are provided:
a pure-Python one and a vectorised NumPy one that packs Ω into 63-bit
words; they produce identical indexes (property-tested).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Literal

import numpy as np

from ..relational.predicate import JoinPredicate
from ..relational.relation import Instance, Row
from .specialize import pairs_from_bits, signature_bits

__all__ = ["SignatureClass", "SignatureIndex"]

TuplePair = tuple[Row, Row]

# NumPy path packs equality bits into uint64 words; keep one spare bit to
# stay clear of signed/unsigned edge cases in shifts.
_WORD_BITS = 63


@dataclass(frozen=True, slots=True)
class SignatureClass:
    """One equivalence class of the Cartesian product under ``T``."""

    class_id: int
    mask: int
    count: int
    representative: TuplePair

    @property
    def size(self) -> int:
        """``|T(t)|`` — the number of attribute pairs in the signature."""
        return self.mask.bit_count()


def _signatures_python(instance: Instance) -> dict[int, tuple[int, TuplePair]]:
    """Reference construction: iterate the full product in Python."""
    found: dict[int, tuple[int, TuplePair]] = {}
    for pair in instance.cartesian_product():
        mask = signature_bits(instance, pair)
        if mask in found:
            count, representative = found[mask]
            found[mask] = (count + 1, representative)
        else:
            found[mask] = (1, pair)
    return found


def _encode_columns(instance: Instance) -> tuple[np.ndarray, np.ndarray]:
    """Encode all attribute values as dense integer codes.

    Equality of codes must coincide with Python equality of values, so a
    single global code table covers both relations.
    """
    codes: dict[object, int] = {}

    def code_of(value: object) -> int:
        existing = codes.get(value)
        if existing is not None:
            return existing
        fresh = len(codes)
        codes[value] = fresh
        return fresh

    left = np.array(
        [[code_of(v) for v in row] for row in instance.left.rows],
        dtype=np.int64,
    ).reshape(len(instance.left), instance.left.arity)
    right = np.array(
        [[code_of(v) for v in row] for row in instance.right.rows],
        dtype=np.int64,
    ).reshape(len(instance.right), instance.right.arity)
    return left, right


def _signatures_numpy(instance: Instance) -> dict[int, tuple[int, TuplePair]]:
    """Vectorised construction: one |R|x|P| equality matrix per pair of Ω,
    packed into 63-bit words, then grouped with ``np.unique``."""
    n_left = len(instance.left)
    n_right = len(instance.right)
    if n_left == 0 or n_right == 0:
        return {}
    left, right = _encode_columns(instance)
    n = instance.left.arity
    m = instance.right.arity
    n_words = (n * m + _WORD_BITS - 1) // _WORD_BITS
    words = np.zeros((n_words, n_left, n_right), dtype=np.uint64)
    for i in range(n):
        column_left = left[:, i : i + 1]  # (|R|, 1)
        for j in range(m):
            position = i * m + j
            word_index, bit = divmod(position, _WORD_BITS)
            equal = column_left == right[None, :, j]  # (|R|, |P|)
            words[word_index] |= equal.astype(np.uint64) << np.uint64(bit)
    flat = words.reshape(n_words, n_left * n_right).T  # (|D|, n_words)
    unique_rows, first_index, counts = np.unique(
        flat, axis=0, return_index=True, return_counts=True
    )
    found: dict[int, tuple[int, TuplePair]] = {}
    left_rows = instance.left.rows
    right_rows = instance.right.rows
    for row_words, first, count in zip(unique_rows, first_index, counts):
        mask = 0
        for word_index, word in enumerate(row_words):
            mask |= int(word) << (_WORD_BITS * word_index)
        r_index, p_index = divmod(int(first), n_right)
        found[mask] = (int(count), (left_rows[r_index], right_rows[p_index]))
    return found


class SignatureIndex:
    """All distinct ``T`` signatures of an instance, with counts.

    Classes are ordered canonically by ``(|signature|, mask)`` so that
    strategy tie-breaking is deterministic.
    """

    __slots__ = (
        "_instance",
        "_classes",
        "_by_mask",
        "_omega_mask",
        "_maximal_ids",
    )

    def __init__(
        self,
        instance: Instance,
        backend: Literal["auto", "numpy", "python"] = "auto",
    ):
        self._instance = instance
        if backend == "python":
            found = _signatures_python(instance)
        elif backend == "numpy":
            found = _signatures_numpy(instance)
        elif backend == "auto":
            # NumPy wins past a few hundred product tuples; below that the
            # fixed encoding cost dominates.
            if instance.cartesian_size >= 512:
                found = _signatures_numpy(instance)
            else:
                found = _signatures_python(instance)
        else:
            raise ValueError(f"unknown backend {backend!r}")
        ordered = sorted(
            found.items(), key=lambda item: (item[0].bit_count(), item[0])
        )
        self._classes = tuple(
            SignatureClass(class_id, mask, count, representative)
            for class_id, (mask, (count, representative)) in enumerate(ordered)
        )
        self._by_mask = {cls.mask: cls.class_id for cls in self._classes}
        self._omega_mask = (1 << len(instance.omega)) - 1
        self._maximal_ids = self._compute_maximal_ids()

    def _compute_maximal_ids(self) -> frozenset[int]:
        """Classes whose signature has no strict superset among signatures.

        These are the ⊆-maximal nodes used by the top-down strategy.
        """
        masks = [cls.mask for cls in self._classes]
        maximal = []
        for cls in self._classes:
            has_superset = any(
                other != cls.mask and cls.mask & ~other == 0
                for other in masks
            )
            if not has_superset:
                maximal.append(cls.class_id)
        return frozenset(maximal)

    # --- basic accessors -------------------------------------------------

    @property
    def instance(self) -> Instance:
        """The indexed instance."""
        return self._instance

    @property
    def classes(self) -> tuple[SignatureClass, ...]:
        """All classes in canonical order."""
        return self._classes

    @property
    def omega_mask(self) -> int:
        """Bitmask with every position of Ω set (encodes Ω itself)."""
        return self._omega_mask

    @property
    def maximal_class_ids(self) -> frozenset[int]:
        """Ids of the ⊆-maximal signature classes (top-down entry points)."""
        return self._maximal_ids

    @property
    def total_weight(self) -> int:
        """``|D|`` — the sum of class counts."""
        return sum(cls.count for cls in self._classes)

    def __len__(self) -> int:
        return len(self._classes)

    def __iter__(self) -> Iterator[SignatureClass]:
        return iter(self._classes)

    def __getitem__(self, class_id: int) -> SignatureClass:
        return self._classes[class_id]

    def class_of_mask(self, mask: int) -> SignatureClass | None:
        """The class with the given signature mask, if present."""
        class_id = self._by_mask.get(mask)
        return None if class_id is None else self._classes[class_id]

    def class_of_tuple(self, tuple_pair: TuplePair) -> SignatureClass:
        """The class containing a concrete Cartesian tuple."""
        mask = signature_bits(self._instance, tuple_pair)
        class_id = self._by_mask.get(mask)
        if class_id is None:
            raise KeyError(
                f"tuple {tuple_pair!r} does not belong to the indexed product"
            )
        return self._classes[class_id]

    def predicate_of(self, class_id: int) -> JoinPredicate:
        """Decode the signature of ``class_id`` into a JoinPredicate."""
        return pairs_from_bits(self._instance, self._classes[class_id].mask)

    # --- paper-level statistics ------------------------------------------

    def join_ratio(self) -> float:
        """§5.3's *join ratio*: mean signature size over distinct signatures.

        An instance with no tuples has, by convention, ratio 0.
        """
        if not self._classes:
            return 0.0
        return sum(cls.size for cls in self._classes) / len(self._classes)
