"""Certain and informative tuples — the PTIME tests of §3.4.

Lemma 3.2 equates uninformative examples with *certain* tuples, which are
characterised without reference to the (unknown) goal predicate:

* **Lemma 3.3** — ``t ∈ Cert+(S)  iff  T(S+) ⊆ T(t)``.
* **Lemma 3.4** — ``t ∈ Cert−(S)  iff  ∃t′ ∈ S−. T(S+) ∩ T(t) ⊆ T(t′)``.

A tuple is *informative* w.r.t. ``S`` iff it is unlabeled and belongs to
neither certain set (Theorem 3.5: this is decidable in PTIME).

All functions here take predicates as plain :class:`JoinPredicate` sets;
the performance-critical interactive loop uses the bitmask twin of this
module inside :mod:`repro.core.signatures`.
"""

from __future__ import annotations

from ..relational.relation import Instance, Row
from .sample import Example, Label, Sample
from .specialize import most_specific_for_set, most_specific_predicate

__all__ = [
    "certain_positive",
    "certain_negative",
    "certain_label",
    "is_certain_positive",
    "is_certain_negative",
    "is_informative",
    "informative_tuples",
    "certain_examples",
]

TuplePair = tuple[Row, Row]


def is_certain_positive(
    instance: Instance, sample: Sample, tuple_pair: TuplePair
) -> bool:
    """Lemma 3.3 membership test."""
    t_plus = most_specific_for_set(instance, sample.positives)
    return t_plus <= most_specific_predicate(instance, tuple_pair)


def is_certain_negative(
    instance: Instance, sample: Sample, tuple_pair: TuplePair
) -> bool:
    """Lemma 3.4 membership test."""
    t_plus = most_specific_for_set(instance, sample.positives)
    t_of_t = most_specific_predicate(instance, tuple_pair)
    needle = t_plus & t_of_t
    return any(
        needle <= most_specific_predicate(instance, negative)
        for negative in sample.negatives
    )


def certain_positive(instance: Instance, sample: Sample) -> set[TuplePair]:
    """``Cert+(S)`` over the whole Cartesian product."""
    t_plus = most_specific_for_set(instance, sample.positives)
    return {
        t
        for t in instance.cartesian_product()
        if t_plus <= most_specific_predicate(instance, t)
    }


def certain_negative(instance: Instance, sample: Sample) -> set[TuplePair]:
    """``Cert−(S)`` over the whole Cartesian product."""
    t_plus = most_specific_for_set(instance, sample.positives)
    negative_predicates = [
        most_specific_predicate(instance, negative)
        for negative in sample.negatives
    ]
    result = set()
    for t in instance.cartesian_product():
        needle = t_plus & most_specific_predicate(instance, t)
        if any(needle <= neg for neg in negative_predicates):
            result.add(t)
    return result


def certain_label(
    instance: Instance, sample: Sample, tuple_pair: TuplePair
) -> Label | None:
    """The label the sample already forces on ``tuple_pair``, if any.

    For a consistent sample a tuple cannot be certain for both labels.
    """
    if is_certain_positive(instance, sample, tuple_pair):
        return Label.POSITIVE
    if is_certain_negative(instance, sample, tuple_pair):
        return Label.NEGATIVE
    return None


def is_informative(
    instance: Instance, sample: Sample, tuple_pair: TuplePair
) -> bool:
    """Theorem 3.5's PTIME informativeness test."""
    if sample.is_labeled(tuple_pair):
        return False
    return certain_label(instance, sample, tuple_pair) is None


def informative_tuples(
    instance: Instance, sample: Sample
) -> list[TuplePair]:
    """All informative tuples of ``D`` w.r.t. ``S``, in canonical order."""
    t_plus = most_specific_for_set(instance, sample.positives)
    negative_predicates = [
        most_specific_predicate(instance, negative)
        for negative in sample.negatives
    ]
    result = []
    for t in instance.cartesian_product():
        if sample.is_labeled(t):
            continue
        t_of_t = most_specific_predicate(instance, t)
        if t_plus <= t_of_t:
            continue
        needle = t_plus & t_of_t
        if any(needle <= neg for neg in negative_predicates):
            continue
        result.append(t)
    return result


def certain_examples(instance: Instance, sample: Sample) -> set[Example]:
    """``Cert(S)`` as a set of examples (tuples with their forced labels).

    By Lemma 3.2 this equals ``Uninf(S)``; note it includes the examples
    already present in ``S`` (a labeled tuple is trivially certain).
    """
    return {
        Example(t, Label.POSITIVE) for t in certain_positive(instance, sample)
    } | {
        Example(t, Label.NEGATIVE) for t in certain_negative(instance, sample)
    }
