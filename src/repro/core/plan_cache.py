"""Memoised planner score tables — the machine-wide plan cache.

The lookahead strategies' entropy tables are a *pure function* of
``(signature index, labeled-class state, depth)``: the session rng only
breaks ties **after** scoring (see
:meth:`~repro.core.strategies.lookahead.LookaheadSkylineStrategy.propose`),
so two sessions at the same state over the same index compute identical
tables — and under a shared workload most sessions traverse overlapping
answer prefixes.  This module memoises those tables:

* :func:`canonical_state_key` — the identity of a scoring problem.  It
  hashes the index by *content* fingerprint and freezes the labeled
  classes as an order-insensitive set: two sessions that answered the
  same questions in different orders share one key (the state they
  reached is the same — each class is labeled at most once, so the set
  fully determines it), and a session rehydrated from a snapshot or
  journal lands on the same key as its pre-crash incarnation.
* :func:`encode_table` / :func:`decode_table` — a fixed-width byte
  codec for the shared tier.  Decoding reproduces the planner's exact
  values: finite entries come back as Python ints and infinite ones as
  ``math.inf``, so a cached table compares equal, entry for entry, to a
  freshly computed one.
* :class:`PlanCache` — a thread-safe two-tier cache: a per-process LRU
  over decoded tables, backed by an optional machine-wide shared tier
  (:class:`~repro.service.plan_registry.SharedPlanTier`) that fleet
  workers publish into and attach from.

**Counter identity.**  The cache is only consulted when the session's
own tier-0 (the strategy's primed table or in-sync incremental planner)
could not answer, so every :meth:`PlanCache.get` is a *miss* of that
tier-0 and resolves as exactly one of: a local hit, a shared hit, or a
compute (the caller runs the kernel and calls :meth:`PlanCache.install`).
Hence ``misses == local_hits + shared_hits + computes`` — the plan-twin
of the index cache's ``misses == attach_hits + builds`` — barring
transient errors (e.g. a kernel scheduler shutting down mid-request
computes without installing).

**Determinism contract.**  A hit returns the score table only; question
selection still runs the strategy's own tie-break over that table with
the session's own rng, so question sequences are bit-for-bit identical
with the cache on or off.  Returned tables are shared across sessions
and MUST be treated as read-only.
"""

from __future__ import annotations

import math
import struct
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Iterable

import numpy as np

from .entropy import Entropy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .planner import IncrementalLookaheadPlanner

__all__ = [
    "PlanCache",
    "PlanCacheError",
    "canonical_state_key",
    "decode_table",
    "encode_table",
    "plan_key_for_planner",
]


class PlanCacheError(ValueError):
    """A shared-tier payload failed validation."""


# --- the canonical state key ---------------------------------------------


def canonical_state_key(
    index_fingerprint: str,
    strategy: str,
    labeled: Iterable[tuple[int, Any]],
) -> str:
    """The identity of one scoring problem.

    ``labeled`` is the session's ``(class_id, label)`` history in any
    order (labels may be :class:`~repro.relational.sample.Label` members
    or their ``"+"``/``"-"`` string forms); the key freezes it as a
    class-id-sorted set, so answer order does not matter.  ``strategy``
    is the strategy/depth tag (e.g. ``"L2S"``) and ``index_fingerprint``
    the index *content* fingerprint, so distinct relations, depths, or
    strategies never collide.
    """
    frozen = sorted((int(class_id), str(label)) for class_id, label in labeled)
    state = ",".join(f"{class_id}{label}" for class_id, label in frozen)
    return f"{strategy}|{index_fingerprint}|{state}"


def plan_key_for_planner(
    planner: "IncrementalLookaheadPlanner", index_fingerprint: str
) -> str:
    """The canonical key for the state a planner is bound to."""
    return canonical_state_key(
        index_fingerprint,
        f"L{planner.depth}S",
        planner.state.labeled_classes(),
    )


# --- the shared-tier codec ------------------------------------------------

_MAGIC = b"RJQPLAN1"
_HEADER = struct.Struct("<8sQ")


def encode_table(table: dict[int, Entropy]) -> bytes:
    """Serialise an entropy table for the shared tier.

    Layout: magic, uint64 entry count, int64 class ids, float64
    ``(min, max)`` pairs — fixed width, so a segment is validated by
    length alone.
    """
    count = len(table)
    ids = np.fromiter(table.keys(), dtype=np.int64, count=count)
    values = np.empty((count, 2), dtype=np.float64)
    for position, pair in enumerate(table.values()):
        values[position, 0] = pair[0]
        values[position, 1] = pair[1]
    return _HEADER.pack(_MAGIC, count) + ids.tobytes() + values.tobytes()


def _decode_value(value: float) -> float | int:
    if math.isinf(value):
        return math.inf
    as_int = int(value)
    return as_int if as_int == value else value


def decode_table(payload: bytes) -> dict[int, Entropy]:
    """Inverse of :func:`encode_table`, reproducing the planner's exact
    value types (finite scores are ints, infinities are ``math.inf``)."""
    if len(payload) < _HEADER.size:
        raise PlanCacheError(
            f"plan payload truncated: {len(payload)} bytes"
        )
    magic, count = _HEADER.unpack_from(payload)
    if magic != _MAGIC:
        raise PlanCacheError(f"plan payload bad magic: {magic!r}")
    expected = _HEADER.size + count * 24
    if len(payload) != expected:
        raise PlanCacheError(
            f"plan payload size mismatch: {len(payload)} bytes for "
            f"{count} entries (expected {expected})"
        )
    ids = np.frombuffer(
        payload, dtype=np.int64, count=count, offset=_HEADER.size
    )
    values = np.frombuffer(
        payload,
        dtype=np.float64,
        count=2 * count,
        offset=_HEADER.size + 8 * count,
    ).reshape(count, 2)
    return {
        class_id: (_decode_value(low), _decode_value(high))
        for class_id, (low, high) in zip(ids.tolist(), values.tolist())
    }


# --- the cache ------------------------------------------------------------


class PlanCache:
    """Per-process LRU over decoded tables + optional shared tier.

    ``shared``, when given, must provide ``get(key) -> bytes | None``,
    ``publish(key, payload) -> bool``, ``release(key)``, ``stats()``,
    and ``close()`` (see
    :class:`~repro.service.plan_registry.SharedPlanTier`).  All methods
    are thread-safe; the shared tier is only touched outside the local
    lock, so a slow registry never blocks local hits on other threads.
    """

    __slots__ = (
        "_lock",
        "_max_entries",
        "_shared",
        "_tables",
        "_nbytes",
        "_misses",
        "_local_hits",
        "_shared_hits",
        "_computes",
        "_evictions",
        "_publishes",
        "_decode_errors",
    )

    def __init__(
        self,
        max_entries: int = 1024,
        *,
        shared: Any | None = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("plan cache needs max_entries >= 1")
        self._lock = threading.Lock()
        self._max_entries = max_entries
        self._shared = shared
        self._tables: OrderedDict[str, dict[int, Entropy]] = OrderedDict()
        self._nbytes: dict[str, int] = {}
        self._misses = 0
        self._local_hits = 0
        self._shared_hits = 0
        self._computes = 0
        self._evictions = 0
        self._publishes = 0
        self._decode_errors = 0

    @property
    def shared(self) -> Any | None:
        return self._shared

    def get(
        self, key: str, *, probe_shared: bool = True
    ) -> dict[int, Entropy] | None:
        """Look ``key`` up; None means the caller must compute (and is
        expected to :meth:`install` the result).

        Every call counts one miss of the session's tier-0 (see the
        module docstring's counter identity).  ``probe_shared=False``
        restricts to the local tier — the event-loop path uses it so a
        busy registry can never stall serving.
        """
        with self._lock:
            self._misses += 1
            table = self._tables.get(key)
            if table is not None:
                self._tables.move_to_end(key)
                self._local_hits += 1
                return table
        if self._shared is None or not probe_shared:
            return None
        payload = self._shared.get(key)
        if payload is None:
            return None
        try:
            table = decode_table(payload)
        except PlanCacheError:
            with self._lock:
                self._decode_errors += 1
            return None
        with self._lock:
            if key not in self._tables:
                evicted = self._store_locked(key, table, len(payload))
            else:
                evicted = []
            self._tables.move_to_end(key)
            self._shared_hits += 1
            stored = self._tables[key]
        self._release_shared(evicted)
        return stored

    def install(
        self, key: str, table: dict[int, Entropy], *, publish: bool = True
    ) -> None:
        """Record a freshly computed table (write-through both tiers).

        ``publish=False`` restricts the write-through to the local tier
        — the event-loop compute path uses it so a busy registry can
        never stall serving (the identity counters are unaffected).
        """
        payload = encode_table(table)
        with self._lock:
            self._computes += 1
            evicted = self._store_locked(key, table, len(payload))
        self._release_shared(evicted)
        if (
            publish
            and self._shared is not None
            and self._shared.publish(key, payload)
        ):
            with self._lock:
                self._publishes += 1

    def _store_locked(
        self, key: str, table: dict[int, Entropy], nbytes: int
    ) -> list[str]:
        """Insert under the held lock; returns LRU-evicted keys whose
        shared refs the caller must release (outside the lock)."""
        evicted = []
        self._tables[key] = table
        self._tables.move_to_end(key)
        self._nbytes[key] = nbytes
        while len(self._tables) > self._max_entries:
            old_key, _ = self._tables.popitem(last=False)
            self._nbytes.pop(old_key, None)
            self._evictions += 1
            evicted.append(old_key)
        return evicted

    def _release_shared(self, evicted: list[str]) -> None:
        if self._shared is None:
            return
        for old_key in evicted:
            self._shared.release(old_key)

    def __len__(self) -> int:
        with self._lock:
            return len(self._tables)

    def resident_bytes(self) -> int:
        """Encoded size of the locally resident tables."""
        with self._lock:
            return sum(self._nbytes.values())

    def stats(self) -> dict[str, Any]:
        with self._lock:
            payload = {
                "entries": len(self._tables),
                "max_entries": self._max_entries,
                "resident_bytes": sum(self._nbytes.values()),
                "misses": self._misses,
                "local_hits": self._local_hits,
                "shared_hits": self._shared_hits,
                "computes": self._computes,
                "evictions": self._evictions,
                "publishes": self._publishes,
                "decode_errors": self._decode_errors,
            }
        if self._shared is not None:
            payload["shared"] = self._shared.stats()
        return payload

    def close(self) -> None:
        if self._shared is not None:
            self._shared.close()
