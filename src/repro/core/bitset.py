"""Packed multi-word bitset kernels for the inference hot path.

Signature masks are mathematically subsets of Ω.  The interactive loop
stores them in two interchangeable encodings:

* **Python ints** — unbounded, convenient, the public API everywhere
  (``SignatureClass.mask``, ``InferenceState.t_plus_mask``, …);
* **packed rows** — a ``(n_masks, n_words)`` ``uint64`` array holding the
  same bits 64 per word, little-endian (bit ``p`` of Ω lives in word
  ``p // 64`` at position ``p % 64``).

The packed form has no 63/64-bit ceiling: any Ω width is ``n_words``
words.  All the Lemma 3.3/3.4 certainty tests used by the strategies
reduce to the handful of kernels below, each vectorised over whole mask
sets at once — these are the primitives behind
:class:`~repro.core.signatures.SignatureIndex`,
:class:`~repro.core.state.InferenceState` and
:mod:`~repro.core.fast_lookahead`.

Every kernel is bit-for-bit equivalent to the obvious int-mask formula
(property-tested in ``tests/properties/test_bitset_kernels.py``).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "WORD_BITS",
    "words_needed",
    "pack_mask",
    "pack_masks",
    "unpack_row",
    "unique_rows",
    "popcounts",
    "subset_of_row",
    "rows_subset_of",
    "subset_of_any",
    "pairwise_subset",
    "certain_rows",
]

#: Bits per packed word.  Full 64-bit words — ``uint64`` arithmetic in
#: NumPy is well-defined for shifts 0..63, so no spare sign bit is needed.
WORD_BITS = 64

_WORD_MASK = (1 << WORD_BITS) - 1


def words_needed(n_bits: int) -> int:
    """Words required for ``n_bits`` mask bits (at least one)."""
    return max(1, (n_bits + WORD_BITS - 1) // WORD_BITS)


def pack_mask(mask: int, n_words: int) -> np.ndarray:
    """One int mask as a ``(n_words,)`` uint64 row."""
    row = np.empty(n_words, dtype=np.uint64)
    for word in range(n_words):
        row[word] = (mask >> (word * WORD_BITS)) & _WORD_MASK
    return row

def pack_masks(masks: Iterable[int], n_words: int) -> np.ndarray:
    """Many int masks as a ``(len(masks), n_words)`` uint64 array."""
    mask_list = list(masks)
    packed = np.empty((len(mask_list), n_words), dtype=np.uint64)
    for position, mask in enumerate(mask_list):
        for word in range(n_words):
            packed[position, word] = (mask >> (word * WORD_BITS)) & _WORD_MASK
    return packed


def unpack_row(row: Sequence[int] | np.ndarray) -> int:
    """A packed row back into a Python int mask."""
    mask = 0
    for word_index, word in enumerate(row):
        mask |= int(word) << (word_index * WORD_BITS)
    return mask


def unique_rows(
    rows: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """``np.unique(axis=0)`` for packed rows, with first-occurrence
    indices, the inverse mapping, and counts.

    Multi-word rows are folded column by column into dense codes (each
    fold is a 1-D ``np.unique``), so sorting always happens on flat
    integer arrays — much faster than the void-dtype row sort NumPy uses
    for ``axis=0`` — and the single-word (Ω ≤ 64) case sorts the raw
    words directly.  Returns ``(unique, first_index, inverse, counts)``;
    the unique rows are ordered by their codes, which is arbitrary but
    deterministic, and ``first_index`` is the *minimal* original index of
    each unique row (``np.unique`` sorts stably when indices are asked
    for).
    """
    codes = rows[:, 0]
    for word in range(1, rows.shape[1]):
        uniques, codes = np.unique(codes, return_inverse=True)
        # codes < len(uniques) ≤ len(rows); pairing with the next column's
        # factorised codes stays well inside int64.
        column_uniques, column_codes = np.unique(
            rows[:, word], return_inverse=True
        )
        codes = codes.astype(np.int64) * len(column_uniques) + column_codes
    _, first_indices, inverse, counts = np.unique(
        codes, return_index=True, return_inverse=True, return_counts=True
    )
    return rows[first_indices], first_indices, inverse, counts


def popcounts(packed: np.ndarray) -> np.ndarray:
    """Per-row popcount of a ``(..., n_words)`` packed array."""
    return np.bitwise_count(packed).sum(axis=-1, dtype=np.int64)


def subset_of_row(packed: np.ndarray, row: np.ndarray) -> np.ndarray:
    """``packed[i] ⊆ row`` for every row: boolean ``(n,)`` vector."""
    return ((packed & ~row[None, :]) == 0).all(axis=1)


def rows_subset_of(row: np.ndarray, packed: np.ndarray) -> np.ndarray:
    """``row ⊆ packed[i]`` for every row: boolean ``(n,)`` vector."""
    return ((row[None, :] & ~packed) == 0).all(axis=1)


def subset_of_any(packed: np.ndarray, others: np.ndarray) -> np.ndarray:
    """``∃j. packed[i] ⊆ others[j]`` for every row ``i``."""
    if len(others) == 0:
        return np.zeros(len(packed), dtype=bool)
    return (
        ((packed[:, None, :] & ~others[None, :, :]) == 0)
        .all(axis=2)
        .any(axis=1)
    )


def pairwise_subset(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """``(n, m)`` boolean matrix of ``first[i] ⊆ second[j]``."""
    return ((first[:, None, :] & ~second[None, :, :]) == 0).all(axis=2)


def certain_rows(
    packed: np.ndarray,
    t_plus: np.ndarray,
    negatives: np.ndarray,
) -> np.ndarray:
    """The Lemma 3.3/3.4 certainty tests over a whole mask set at once.

    ``packed[i]`` is certain (either polarity) under sample state
    ``(t_plus, negatives)`` iff ``t_plus ⊆ packed[i]`` (certain-positive)
    or some negative contains ``t_plus ∩ packed[i]`` (certain-negative).
    """
    certain = rows_subset_of(t_plus, packed)
    if len(negatives):
        needles = packed & t_plus[None, :]
        certain |= subset_of_any(needles, negatives)
    return certain
