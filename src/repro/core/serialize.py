"""JSON serialisation of predicates, samples, and inference transcripts.

A practical tool needs to persist what the user said and what was
inferred — e.g. to resume a labeling session, audit a crowdsourced run,
or ship the inferred predicate to a query generator.  Values survive a
round-trip when they are JSON representable (str/int/float/bool/None);
ints and floats keep their Python types.
"""

from __future__ import annotations

import json
from typing import Any

from ..relational.predicate import JoinPredicate
from ..relational.relation import Row
from ..relational.schema import Attribute
from .sample import Example, Label, Sample
from .session import InferenceResult

__all__ = [
    "predicate_to_dict",
    "predicate_from_dict",
    "sample_to_dict",
    "sample_from_dict",
    "result_to_dict",
    "result_from_dict",
    "dumps",
    "loads",
]


def predicate_to_dict(predicate: JoinPredicate) -> dict[str, Any]:
    """``{"pairs": [["R.A", "P.B"], ...]}``."""
    return {
        "pairs": [
            [str(a), str(b)] for a, b in predicate.sorted_pairs()
        ]
    }


def predicate_from_dict(payload: dict[str, Any]) -> JoinPredicate:
    """Inverse of :func:`predicate_to_dict`."""
    return JoinPredicate(
        (Attribute.parse(a), Attribute.parse(b))
        for a, b in payload["pairs"]
    )


def _row_to_list(row: Row) -> list[Any]:
    return list(row)


def _row_from_list(values: list[Any]) -> Row:
    return tuple(values)


def sample_to_dict(sample: Sample) -> dict[str, Any]:
    """All examples with their labels, in insertion order."""
    return {
        "examples": [
            {
                "left": _row_to_list(example.tuple_pair[0]),
                "right": _row_to_list(example.tuple_pair[1]),
                "label": str(example.label),
            }
            for example in sample
        ]
    }


def sample_from_dict(payload: dict[str, Any]) -> Sample:
    """Inverse of :func:`sample_to_dict`."""
    sample = Sample()
    for item in payload["examples"]:
        tuple_pair = (
            _row_from_list(item["left"]),
            _row_from_list(item["right"]),
        )
        label = Label.POSITIVE if item["label"] == "+" else Label.NEGATIVE
        sample.add(Example(tuple_pair, label))
    return sample


def result_to_dict(result: InferenceResult) -> dict[str, Any]:
    """Full transcript: predicate, counts, history."""
    return {
        "predicate": predicate_to_dict(result.predicate),
        "interactions": result.interactions,
        "elapsed_seconds": result.elapsed_seconds,
        "strategy": result.strategy_name,
        "halted_early": result.halted_early,
        "history": [
            {
                "left": _row_to_list(example.tuple_pair[0]),
                "right": _row_to_list(example.tuple_pair[1]),
                "label": str(example.label),
            }
            for example in result.history
        ],
    }


def result_from_dict(payload: dict[str, Any]) -> InferenceResult:
    """Inverse of :func:`result_to_dict`."""
    history = tuple(
        Example(
            (
                _row_from_list(item["left"]),
                _row_from_list(item["right"]),
            ),
            Label.POSITIVE if item["label"] == "+" else Label.NEGATIVE,
        )
        for item in payload["history"]
    )
    return InferenceResult(
        predicate=predicate_from_dict(payload["predicate"]),
        interactions=payload["interactions"],
        elapsed_seconds=payload["elapsed_seconds"],
        strategy_name=payload["strategy"],
        history=history,
        halted_early=payload["halted_early"],
    )


def dumps(obj: JoinPredicate | Sample | InferenceResult) -> str:
    """Serialise any of the three transcript objects to JSON text."""
    if isinstance(obj, JoinPredicate):
        payload: dict[str, Any] = {
            "kind": "predicate",
            **predicate_to_dict(obj),
        }
    elif isinstance(obj, Sample):
        payload = {"kind": "sample", **sample_to_dict(obj)}
    elif isinstance(obj, InferenceResult):
        payload = {"kind": "result", **result_to_dict(obj)}
    else:
        raise TypeError(f"cannot serialise {type(obj).__name__}")
    return json.dumps(payload, indent=2)


def loads(text: str) -> JoinPredicate | Sample | InferenceResult:
    """Inverse of :func:`dumps` (dispatches on the ``kind`` tag)."""
    payload = json.loads(text)
    kind = payload.get("kind")
    if kind == "predicate":
        return predicate_from_dict(payload)
    if kind == "sample":
        return sample_from_dict(payload)
    if kind == "result":
        return result_from_dict(payload)
    raise ValueError(f"unknown payload kind {kind!r}")
