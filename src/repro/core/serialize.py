"""JSON serialisation of predicates, samples, transcripts, and sessions.

A practical tool needs to persist what the user said and what was
inferred — e.g. to resume a labeling session, audit a crowdsourced run,
or ship the inferred predicate to a query generator.  Values survive a
round-trip when they are JSON representable (str/int/float/bool/None);
ints and floats keep their Python types.

Live sessions snapshot to a :class:`SessionSnapshot`: an instance
reference plus the ``(class_id, label)`` pairs recorded so far (class ids
are stable because the signature index orders classes canonically by
``(|signature|, mask)``).  :func:`resume_session` replays the pairs
through the ordinary :meth:`~repro.core.session.InferenceSession.propose`
/ :meth:`~repro.core.session.InferenceSession.answer` path, so the
strategy re-makes — and the rng re-draws — exactly the choices of the
original run; the resumed session continues bit-for-bit where the
snapshot left off.  This is what lets :mod:`repro.service` sessions
survive server restarts.

Planner caches (:mod:`repro.core.planner`) are deliberately *not* part
of the snapshot: they are a pure function of the replayed labels, and
replay drives the ordinary observe/propose lifecycle, so the resumed
strategy rebuilds them incrementally along the way — the snapshot format
is unchanged from version 1.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from ..relational.predicate import JoinPredicate
from ..relational.relation import Instance, Relation, Row
from ..relational.schema import Attribute
from .sample import Example, Label, Sample
from .session import (
    HaltCondition,
    InferenceResult,
    InferenceSession,
    MaxInteractions,
    NoInformativeTuples,
)
from .signatures import SignatureIndex
from .strategies import strategy_by_name

__all__ = [
    "SessionSnapshot",
    "SnapshotError",
    "predicate_to_dict",
    "predicate_from_dict",
    "sample_to_dict",
    "sample_from_dict",
    "result_to_dict",
    "result_from_dict",
    "relation_to_dict",
    "relation_from_dict",
    "instance_to_dict",
    "instance_from_dict",
    "snapshot_session",
    "snapshot_payload",
    "snapshot_to_dict",
    "snapshot_from_dict",
    "resume_session",
    "dumps",
    "loads",
]


def predicate_to_dict(predicate: JoinPredicate) -> dict[str, Any]:
    """``{"pairs": [["R.A", "P.B"], ...]}``."""
    return {
        "pairs": [
            [str(a), str(b)] for a, b in predicate.sorted_pairs()
        ]
    }


def predicate_from_dict(payload: dict[str, Any]) -> JoinPredicate:
    """Inverse of :func:`predicate_to_dict`."""
    return JoinPredicate(
        (Attribute.parse(a), Attribute.parse(b))
        for a, b in payload["pairs"]
    )


def _row_to_list(row: Row) -> list[Any]:
    return list(row)


def _row_from_list(values: list[Any]) -> Row:
    return tuple(values)


def sample_to_dict(sample: Sample) -> dict[str, Any]:
    """All examples with their labels, in insertion order."""
    return {
        "examples": [
            {
                "left": _row_to_list(example.tuple_pair[0]),
                "right": _row_to_list(example.tuple_pair[1]),
                "label": str(example.label),
            }
            for example in sample
        ]
    }


def sample_from_dict(payload: dict[str, Any]) -> Sample:
    """Inverse of :func:`sample_to_dict`.

    Raises :class:`ValueError` on any label string other than ``"+"`` /
    ``"-"`` (no silent coercion of typos to negative).
    """
    sample = Sample()
    for item in payload["examples"]:
        tuple_pair = (
            _row_from_list(item["left"]),
            _row_from_list(item["right"]),
        )
        sample.add(Example(tuple_pair, Label.parse(item["label"])))
    return sample


def result_to_dict(result: InferenceResult) -> dict[str, Any]:
    """Full transcript: predicate, counts, history."""
    return {
        "predicate": predicate_to_dict(result.predicate),
        "interactions": result.interactions,
        "elapsed_seconds": result.elapsed_seconds,
        "strategy": result.strategy_name,
        "halted_early": result.halted_early,
        "history": [
            {
                "left": _row_to_list(example.tuple_pair[0]),
                "right": _row_to_list(example.tuple_pair[1]),
                "label": str(example.label),
            }
            for example in result.history
        ],
    }


def result_from_dict(payload: dict[str, Any]) -> InferenceResult:
    """Inverse of :func:`result_to_dict`."""
    history = tuple(
        Example(
            (
                _row_from_list(item["left"]),
                _row_from_list(item["right"]),
            ),
            Label.parse(item["label"]),
        )
        for item in payload["history"]
    )
    return InferenceResult(
        predicate=predicate_from_dict(payload["predicate"]),
        interactions=payload["interactions"],
        elapsed_seconds=payload["elapsed_seconds"],
        strategy_name=payload["strategy"],
        history=history,
        halted_early=payload["halted_early"],
    )


def relation_to_dict(relation: Relation) -> dict[str, Any]:
    """Schema (name + attribute names) and rows in insertion order."""
    return {
        "name": relation.name,
        "attributes": [attr.name for attr in relation.schema],
        "rows": [_row_to_list(row) for row in relation.rows],
    }


def relation_from_dict(payload: dict[str, Any]) -> Relation:
    """Inverse of :func:`relation_to_dict`."""
    return Relation.build(
        payload["name"],
        list(payload["attributes"]),
        (_row_from_list(row) for row in payload["rows"]),
    )


def instance_to_dict(instance: Instance) -> dict[str, Any]:
    """Both relations of an instance, inline."""
    return {
        "left": relation_to_dict(instance.left),
        "right": relation_to_dict(instance.right),
    }


def instance_from_dict(payload: dict[str, Any]) -> Instance:
    """Inverse of :func:`instance_to_dict`."""
    return Instance(
        relation_from_dict(payload["left"]),
        relation_from_dict(payload["right"]),
    )


class SnapshotError(ValueError):
    """A snapshot cannot be taken or replayed (custom halt condition,
    class-id mismatch against the rebuilt index, missing instance)."""


@dataclass(frozen=True, slots=True)
class SessionSnapshot:
    """Everything needed to rebuild a live session.

    ``instance_ref`` is the payload stored under ``"instance"``: either
    ``{"inline": instance_to_dict(...)}`` (self-contained, the default) or
    an opaque reference a hosting layer resolves itself — the service
    stores builtin-workload specs so snapshots of TPC-H sessions stay a
    few hundred bytes.
    """

    instance_ref: dict[str, Any]
    strategy: str
    seed: int | None
    max_questions: int | None
    labeled: tuple[tuple[int, Label], ...]


def _max_questions_of(halt_condition: HaltCondition) -> int | None:
    if isinstance(halt_condition, MaxInteractions):
        return halt_condition.budget
    if isinstance(halt_condition, NoInformativeTuples):
        return None
    raise SnapshotError(
        f"cannot snapshot a session with halt condition "
        f"{type(halt_condition).__name__}; only the stock conditions "
        f"serialise"
    )


def snapshot_session(
    session: InferenceSession,
    instance_ref: dict[str, Any] | None = None,
) -> SessionSnapshot:
    """Capture a session's resumable state.

    A pending (proposed-but-unanswered) question is *not* part of the
    state: on resume the strategy deterministically re-proposes it, since
    replay restores both the inference state and the rng position.

    An unseeded session (``seed=None``) cannot be snapshot: replay could
    not re-derive its rng draws, so an rng-consulting strategy would
    silently diverge.  Seed the session (any int) to make it resumable.
    """
    if session.seed is None:
        raise SnapshotError(
            "cannot snapshot an unseeded session: replay cannot restore "
            "a system-seeded rng; create the session with an explicit "
            "seed"
        )
    return SessionSnapshot(
        instance_ref=(
            instance_ref
            if instance_ref is not None
            else {"inline": instance_to_dict(session.instance)}
        ),
        strategy=session.strategy.name,
        seed=session.seed,
        max_questions=_max_questions_of(session.halt_condition),
        labeled=session.state.labeled_classes(),
    )


def snapshot_to_dict(snapshot: SessionSnapshot) -> dict[str, Any]:
    """JSON payload of a snapshot (labels as ``"+"`` / ``"-"``)."""
    return {
        "version": 1,
        "instance": snapshot.instance_ref,
        "strategy": snapshot.strategy,
        "seed": snapshot.seed,
        "max_questions": snapshot.max_questions,
        "labeled": [
            [class_id, str(label)] for class_id, label in snapshot.labeled
        ],
    }


def snapshot_payload(
    session: InferenceSession,
    instance_ref: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """The complete ``session_snapshot`` wire payload of a live session
    — :func:`snapshot_session` + :func:`snapshot_to_dict` with the
    ``kind`` tag attached.  This is the exact shape the service's
    snapshot endpoint returns and the session store checkpoints."""
    payload = snapshot_to_dict(
        snapshot_session(session, instance_ref=instance_ref)
    )
    payload["kind"] = "session_snapshot"
    return payload


def snapshot_from_dict(payload: dict[str, Any]) -> SessionSnapshot:
    """Inverse of :func:`snapshot_to_dict` (labels parsed strictly)."""
    return SessionSnapshot(
        instance_ref=payload["instance"],
        strategy=payload["strategy"],
        seed=payload["seed"],
        max_questions=payload["max_questions"],
        labeled=tuple(
            (int(class_id), Label.parse(label))
            for class_id, label in payload["labeled"]
        ),
    )


def resume_session(
    snapshot: SessionSnapshot | dict[str, Any],
    *,
    instance: Instance | None = None,
    index: SignatureIndex | None = None,
) -> InferenceSession:
    """Rebuild a session from a snapshot and replay its labels.

    ``instance`` (and optionally a prebuilt/cached ``index`` over it) must
    be supplied when the snapshot carries an opaque instance reference;
    inline snapshots are self-contained.  Replay drives the normal
    propose/answer path and verifies that the strategy proposes exactly
    the recorded classes — any divergence means the snapshot does not
    belong to this instance and raises :class:`SnapshotError`.
    """
    if isinstance(snapshot, dict):
        snapshot = snapshot_from_dict(snapshot)
    if instance is None:
        inline = snapshot.instance_ref.get("inline")
        if inline is None:
            raise SnapshotError(
                "snapshot carries an opaque instance reference "
                f"{snapshot.instance_ref!r}; pass instance= explicitly"
            )
        instance = instance_from_dict(inline)
    halt = (
        MaxInteractions(snapshot.max_questions)
        if snapshot.max_questions is not None
        else None
    )
    session = InferenceSession(
        instance,
        strategy_by_name(snapshot.strategy),
        halt_condition=halt,
        index=index,
        seed=snapshot.seed,
    )
    for class_id, label in snapshot.labeled:
        question = session.propose()
        if question is None:
            raise SnapshotError(
                f"halt condition reached after "
                f"{session.state.interaction_count} labels but the "
                f"snapshot records {len(snapshot.labeled)}"
            )
        if question.class_id != class_id:
            raise SnapshotError(
                f"replay diverged: strategy proposed class "
                f"{question.class_id} where the snapshot recorded "
                f"{class_id} (wrong instance or index?)"
            )
        session.answer(question.question_id, label)
    return session


def dumps(
    obj: JoinPredicate | Sample | InferenceResult | SessionSnapshot,
) -> str:
    """Serialise any of the transcript objects to JSON text."""
    if isinstance(obj, JoinPredicate):
        payload: dict[str, Any] = {
            "kind": "predicate",
            **predicate_to_dict(obj),
        }
    elif isinstance(obj, Sample):
        payload = {"kind": "sample", **sample_to_dict(obj)}
    elif isinstance(obj, InferenceResult):
        payload = {"kind": "result", **result_to_dict(obj)}
    elif isinstance(obj, SessionSnapshot):
        payload = {"kind": "session_snapshot", **snapshot_to_dict(obj)}
    else:
        raise TypeError(f"cannot serialise {type(obj).__name__}")
    return json.dumps(payload, indent=2)


def loads(
    text: str,
) -> JoinPredicate | Sample | InferenceResult | SessionSnapshot:
    """Inverse of :func:`dumps` (dispatches on the ``kind`` tag)."""
    payload = json.loads(text)
    kind = payload.get("kind")
    if kind == "predicate":
        return predicate_from_dict(payload)
    if kind == "sample":
        return sample_from_dict(payload)
    if kind == "result":
        return result_from_dict(payload)
    if kind == "session_snapshot":
        return snapshot_from_dict(payload)
    raise ValueError(f"unknown payload kind {kind!r}")
