"""Examples and samples (§3).

An *example* is a Cartesian tuple together with a label: ``(t, +)`` is a
positive example (the user wants ``t`` in the join result) and ``(t, −)``
a negative one.  A *sample* is a set of examples; ``S+`` / ``S−`` denote
the positive / negative tuples.  A tuple may carry at most one label —
conflicting labels make the sample trivially inconsistent and are rejected
at insertion.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator

from ..relational.relation import Row

__all__ = ["Label", "Example", "Sample", "ConflictingLabelError"]

TuplePair = tuple[Row, Row]


class Label(enum.Enum):
    """The user's verdict on one tuple."""

    POSITIVE = "+"
    NEGATIVE = "-"

    def __str__(self) -> str:
        return self.value

    @classmethod
    def parse(cls, text: str) -> "Label":
        """The label encoded by ``text`` (``"+"`` / ``"-"``).

        Anything else — ``"positive"``, typos, wrong case — raises
        :class:`ValueError` rather than being silently coerced; both the
        JSON deserialisers and the service's answer endpoint rely on this
        being strict.
        """
        for label in cls:
            if text == label.value:
                return label
        raise ValueError(
            f"unknown label {text!r}; expected '+' or '-'"
        )

    @property
    def opposite(self) -> "Label":
        """The other label."""
        return Label.NEGATIVE if self is Label.POSITIVE else Label.POSITIVE


class ConflictingLabelError(ValueError):
    """The same tuple received both labels."""


@dataclass(frozen=True, slots=True)
class Example:
    """One labeled Cartesian tuple ``(t, α)``."""

    tuple_pair: TuplePair
    label: Label

    @property
    def is_positive(self) -> bool:
        """True for ``(t, +)``."""
        return self.label is Label.POSITIVE

    @property
    def is_negative(self) -> bool:
        """True for ``(t, −)``."""
        return self.label is Label.NEGATIVE

    def __str__(self) -> str:
        return f"({self.tuple_pair}, {self.label})"


class Sample:
    """A set of examples with fast ``S+`` / ``S−`` access.

    Mutations return nothing and preserve the one-label-per-tuple
    invariant; use :meth:`with_example` for a copied, extended sample
    (handy in lookahead simulations).
    """

    __slots__ = ("_labels",)

    def __init__(self, examples: Iterable[Example] = ()):
        self._labels: dict[TuplePair, Label] = {}
        for example in examples:
            self.add(example)

    def add(self, example: Example) -> None:
        """Insert one example, rejecting conflicting relabeling."""
        existing = self._labels.get(example.tuple_pair)
        if existing is not None and existing is not example.label:
            raise ConflictingLabelError(
                f"tuple {example.tuple_pair!r} already labeled {existing}, "
                f"cannot relabel {example.label}"
            )
        self._labels[example.tuple_pair] = example.label

    def label_tuple(self, tuple_pair: TuplePair, label: Label) -> None:
        """Shorthand for ``add(Example(tuple_pair, label))``."""
        self.add(Example(tuple_pair, label))

    def with_example(self, example: Example) -> "Sample":
        """A copy of this sample extended with ``example``."""
        copy = Sample()
        copy._labels = dict(self._labels)
        copy.add(example)
        return copy

    @property
    def positives(self) -> list[TuplePair]:
        """``S+`` in insertion order."""
        return [
            t for t, label in self._labels.items() if label is Label.POSITIVE
        ]

    @property
    def negatives(self) -> list[TuplePair]:
        """``S−`` in insertion order."""
        return [
            t for t, label in self._labels.items() if label is Label.NEGATIVE
        ]

    def label_of(self, tuple_pair: TuplePair) -> Label | None:
        """The label of ``tuple_pair`` or ``None`` when unlabeled."""
        return self._labels.get(tuple_pair)

    def is_labeled(self, tuple_pair: TuplePair) -> bool:
        """True iff the tuple carries a label in this sample."""
        return tuple_pair in self._labels

    def examples(self) -> list[Example]:
        """All examples in insertion order."""
        return [Example(t, label) for t, label in self._labels.items()]

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self) -> Iterator[Example]:
        return iter(self.examples())

    def __contains__(self, example: object) -> bool:
        if not isinstance(example, Example):
            return False
        return self._labels.get(example.tuple_pair) is example.label

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Sample):
            return NotImplemented
        return self._labels == other._labels

    def __repr__(self) -> str:
        return f"Sample(|S+|={len(self.positives)}, |S-|={len(self.negatives)})"
