"""A miniature TPC-H ``dbgen`` in pure Python.

The paper's §5.1 experiments run over TPC-H tables; the official
generator is C and its full-scale output is far beyond what the
interactive-inference benchmarks need, so this module re-implements the
schema, the key/foreign-key structure, and — crucially for this paper —
the *value-domain overlaps* that make join inference non-trivial: "a
value 15 of an attribute may as well represent a key, a size, a price or
a quantity" (§5.1).  Sizes, quantities, line numbers and the small key
ranges deliberately share small-integer domains, and status flags overlap
across tables (``orderstatus`` vs ``linestatus``), reproducing join
ratios in the 1–2.1 range reported in Table 1.

Row counts scale linearly with the ``scale`` parameter (``scale=1``
yields a laptop-size database; see DESIGN.md §3 for the substitution
rationale).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields

from ..relational.relation import Relation

__all__ = ["TpchTables", "generate_tpch", "TABLE_NAMES"]

_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

_NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]

_PART_TYPES = [
    "STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO",
]
_CONTAINERS = ["SM CASE", "LG BOX", "MED BAG", "JUMBO JAR", "WRAP PKG"]
_SEGMENTS = [
    "AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD",
]
_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECI", "5-LOW"]
_SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
_INSTRUCTIONS = [
    "DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN",
]

TABLE_NAMES = (
    "region",
    "nation",
    "supplier",
    "part",
    "partsupp",
    "customer",
    "orders",
    "lineitem",
)


@dataclass(frozen=True, slots=True)
class TpchTables:
    """All eight generated tables."""

    region: Relation
    nation: Relation
    supplier: Relation
    part: Relation
    partsupp: Relation
    customer: Relation
    orders: Relation
    lineitem: Relation

    def table(self, name: str) -> Relation:
        """Look a table up by its TPC-H name."""
        if name not in TABLE_NAMES:
            raise KeyError(f"unknown TPC-H table {name!r}")
        return getattr(self, name)

    def all_tables(self) -> list[Relation]:
        """All tables in schema order."""
        return [getattr(self, f.name) for f in fields(self)]


def _date(rng: random.Random) -> int:
    """A date as YYYYMMDD int in TPC-H's 1992–1998 window."""
    year = rng.randrange(1992, 1999)
    month = rng.randrange(1, 13)
    day = rng.randrange(1, 29)
    return year * 10_000 + month * 100 + day


def generate_tpch(scale: float = 1.0, seed: int = 0) -> TpchTables:
    """Generate the eight tables at the given scale.

    ``scale=1`` produces ~20 parts / 10 suppliers / 80 partsupp /
    15 customers / 30 orders / ~120 lineitems.  Keys are dense small
    integers starting at 1 so that they collide with sizes and
    quantities, as in the paper's discussion.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    rng = random.Random(seed)

    n_part = max(1, round(20 * scale))
    n_supplier = max(1, round(10 * scale))
    n_customer = max(1, round(15 * scale))
    n_orders = max(1, round(30 * scale))

    region = Relation.build(
        "region",
        ["regionkey", "name", "comment"],
        [
            (key, name, f"region comment {key}")
            for key, name in enumerate(_REGIONS)
        ],
    )

    nation = Relation.build(
        "nation",
        ["nationkey", "name", "regionkey", "comment"],
        [
            (key, name, regionkey, f"nation comment {key}")
            for key, (name, regionkey) in enumerate(_NATIONS)
        ],
    )

    supplier = Relation.build(
        "supplier",
        [
            "suppkey", "name", "address", "nationkey", "phone",
            "acctbal", "comment",
        ],
        [
            (
                key,
                f"Supplier#{key:09d}",
                f"addr s{key}",
                rng.randrange(len(_NATIONS)),
                f"{rng.randrange(10, 35)}-{rng.randrange(100, 999)}",
                rng.randrange(-99, 999),
                f"supplier comment {key}",
            )
            for key in range(1, n_supplier + 1)
        ],
    )

    part = Relation.build(
        "part",
        [
            "partkey", "name", "mfgr", "brand", "type", "size",
            "container", "retailprice", "comment",
        ],
        [
            (
                key,
                f"part {key}",
                f"Manufacturer#{rng.randrange(1, 6)}",
                f"Brand#{rng.randrange(1, 6)}{rng.randrange(1, 6)}",
                rng.choice(_PART_TYPES),
                rng.randrange(1, 51),  # overlaps the key domains
                rng.choice(_CONTAINERS),
                rng.randrange(900, 2_000),
                f"part comment {key}",
            )
            for key in range(1, n_part + 1)
        ],
    )

    partsupp_rows = []
    for partkey in range(1, n_part + 1):
        # TPC-H links each part to 4 suppliers.
        for offset in range(4):
            suppkey = (
                (partkey + offset * max(1, n_supplier // 4))
                % n_supplier
            ) + 1
            partsupp_rows.append(
                (
                    partkey,
                    suppkey,
                    rng.randrange(1, 100),  # availqty: overlaps keys
                    rng.randrange(1, 100),  # supplycost
                    f"partsupp comment {partkey}/{suppkey}",
                )
            )
    partsupp = Relation.build(
        "partsupp",
        ["partkey", "suppkey", "availqty", "supplycost", "comment"],
        partsupp_rows,
    )

    customer = Relation.build(
        "customer",
        [
            "custkey", "name", "address", "nationkey", "phone",
            "acctbal", "mktsegment", "comment",
        ],
        [
            (
                key,
                f"Customer#{key:09d}",
                f"addr c{key}",
                rng.randrange(len(_NATIONS)),
                f"{rng.randrange(10, 35)}-{rng.randrange(100, 999)}",
                rng.randrange(-99, 999),
                rng.choice(_SEGMENTS),
                f"customer comment {key}",
            )
            for key in range(1, n_customer + 1)
        ],
    )

    orders = Relation.build(
        "orders",
        [
            "orderkey", "custkey", "orderstatus", "totalprice",
            "orderdate", "orderpriority", "clerk", "shippriority",
            "comment",
        ],
        [
            (
                key,
                rng.randrange(1, n_customer + 1),
                rng.choice(["O", "F", "P"]),
                rng.randrange(1_000, 20_000),
                _date(rng),
                rng.choice(_PRIORITIES),
                f"Clerk#{rng.randrange(1, 1 + max(1, n_orders // 10)):09d}",
                0,
                f"order comment {key}",
            )
            for key in range(1, n_orders + 1)
        ],
    )

    lineitem_rows = []
    for orderkey in range(1, n_orders + 1):
        for linenumber in range(1, rng.randrange(1, 8)):
            partkey = rng.randrange(1, n_part + 1)
            # Pick one of the 4 suppliers actually carrying the part so
            # that Join 5's composite key/FK holds.
            offset = rng.randrange(4)
            suppkey = (
                (partkey + offset * max(1, n_supplier // 4))
                % n_supplier
            ) + 1
            quantity = rng.randrange(1, 51)  # overlaps keys and sizes
            shipdate = _date(rng)
            lineitem_rows.append(
                (
                    orderkey,
                    partkey,
                    suppkey,
                    linenumber,
                    quantity,
                    quantity * rng.randrange(900, 2_000),
                    rng.randrange(0, 11),  # discount %: overlaps keys
                    rng.randrange(0, 9),  # tax %: overlaps keys
                    rng.choice(["R", "A", "N"]),
                    rng.choice(["O", "F"]),  # overlaps orderstatus
                    shipdate,
                    shipdate + rng.randrange(0, 60),
                    shipdate + rng.randrange(0, 90),
                    rng.choice(_INSTRUCTIONS),
                    rng.choice(_SHIP_MODES),
                    f"lineitem comment {orderkey}/{linenumber}",
                )
            )
    lineitem = Relation.build(
        "lineitem",
        [
            "orderkey", "partkey", "suppkey", "linenumber", "quantity",
            "extendedprice", "discount", "tax", "returnflag",
            "linestatus", "shipdate", "commitdate", "receiptdate",
            "shipinstruct", "shipmode", "comment",
        ],
        lineitem_rows,
    )

    return TpchTables(
        region=region,
        nation=nation,
        supplier=supplier,
        part=part,
        partsupp=partsupp,
        customer=customer,
        orders=orders,
        lineitem=lineitem,
    )
