"""The paper's synthetic dataset generator (§5.2).

A configuration is a quadruple ``(|attrs(R)|, |attrs(P)|, l, v)``: the two
arities, the number of tuples per relation, and the size of the value
domain ``{0, …, v−1}``.  Values are drawn uniformly.  The six
configurations benchmarked in Figure 7 / Table 1 are exported as
:data:`PAPER_CONFIGS`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..relational.relation import Instance, Relation

__all__ = ["SyntheticConfig", "generate_synthetic", "PAPER_CONFIGS"]


@dataclass(frozen=True, slots=True)
class SyntheticConfig:
    """One generator configuration ``(|attrs(R)|, |attrs(P)|, l, v)``."""

    left_arity: int
    right_arity: int
    rows: int
    values: int

    def __post_init__(self) -> None:
        if self.left_arity < 1 or self.right_arity < 1:
            raise ValueError("arities must be positive")
        if self.rows < 1:
            raise ValueError("row count must be positive")
        if self.values < 1:
            raise ValueError("value domain must be non-empty")

    @property
    def label(self) -> str:
        """The paper's notation, e.g. ``(3,3,50,100)``."""
        return (
            f"({self.left_arity},{self.right_arity},"
            f"{self.rows},{self.values})"
        )

    @property
    def omega_size(self) -> int:
        """``|Ω|`` for instances of this configuration."""
        return self.left_arity * self.right_arity

    def scaled(self, rows: int) -> "SyntheticConfig":
        """The same configuration with a different row count (used to keep
        benchmark runtimes proportionate)."""
        return SyntheticConfig(
            self.left_arity, self.right_arity, rows, self.values
        )


#: The six configurations of Figure 7 / Table 1, in the paper's order.
PAPER_CONFIGS: tuple[SyntheticConfig, ...] = (
    SyntheticConfig(3, 3, 100, 100),
    SyntheticConfig(3, 3, 50, 100),
    SyntheticConfig(3, 4, 50, 100),
    SyntheticConfig(2, 5, 50, 100),
    SyntheticConfig(2, 4, 50, 50),
    SyntheticConfig(2, 4, 50, 100),
)


def generate_synthetic(
    config: SyntheticConfig, seed: int | None = None
) -> Instance:
    """One random instance for the configuration.

    Rows are uniform over the value domain; duplicate rows (rare for the
    paper's configurations) collapse under set semantics, exactly as a
    relational instance would.
    """
    rng = random.Random(seed)
    left = Relation.build(
        "R",
        [f"A{i}" for i in range(1, config.left_arity + 1)],
        [
            tuple(
                rng.randrange(config.values)
                for _ in range(config.left_arity)
            )
            for _ in range(config.rows)
        ],
    )
    right = Relation.build(
        "P",
        [f"B{j}" for j in range(1, config.right_arity + 1)],
        [
            tuple(
                rng.randrange(config.values)
                for _ in range(config.right_arity)
            )
            for _ in range(config.rows)
        ],
    )
    return Instance(left, right)
