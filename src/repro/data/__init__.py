"""Dataset generators: the paper's synthetic configurations (§5.2) and a
miniature TPC-H dbgen with its five goal-join workloads (§5.1)."""

from .synthetic import PAPER_CONFIGS, SyntheticConfig, generate_synthetic
from .tpch import TABLE_NAMES, TpchTables, generate_tpch
from .workloads import (
    BUILTIN_WORKLOAD_NAMES,
    WORKLOAD_NAMES,
    JoinWorkload,
    builtin_instance,
    tpch_workloads,
)

__all__ = [
    "BUILTIN_WORKLOAD_NAMES",
    "JoinWorkload",
    "PAPER_CONFIGS",
    "SyntheticConfig",
    "TABLE_NAMES",
    "TpchTables",
    "WORKLOAD_NAMES",
    "builtin_instance",
    "generate_synthetic",
    "generate_tpch",
    "tpch_workloads",
]
