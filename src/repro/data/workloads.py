"""The paper's five TPC-H goal joins (§5.1).

Each workload pairs two tables with the key/foreign-key predicate the
experiments try to rediscover.  The strategies never see the constraint —
they only see user labels — which is the whole point of §5.1: "evict the
goal join predicates that rely on integrity constraints" from raw data.

Column pruning: the full Orders × Lineitem schema has |Ω| = 144; to keep
lookahead benchmarks snappy a workload can be built with
``trimmed=True``, which keeps (per table) the key columns plus the
ambiguous small-integer/status columns that generate the interesting
signatures.  The goal predicates and the key/FK structure are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..relational.algebra import project
from ..relational.predicate import JoinPredicate
from ..relational.relation import Instance, Relation
from ..relational.schema import Attribute
from .synthetic import PAPER_CONFIGS, generate_synthetic
from .tpch import TpchTables, generate_tpch

__all__ = [
    "JoinWorkload",
    "tpch_workloads",
    "WORKLOAD_NAMES",
    "BUILTIN_WORKLOAD_NAMES",
    "builtin_instance",
]

WORKLOAD_NAMES = ("join1", "join2", "join3", "join4", "join5")

_TRIMMED_COLUMNS = {
    "part": ["partkey", "size", "retailprice", "mfgr", "brand"],
    "partsupp": ["partkey", "suppkey", "availqty", "supplycost"],
    "supplier": ["suppkey", "nationkey", "acctbal", "name"],
    "customer": ["custkey", "nationkey", "acctbal", "mktsegment"],
    "orders": ["orderkey", "custkey", "orderstatus", "totalprice"],
    "lineitem": [
        "orderkey", "partkey", "suppkey", "linenumber", "quantity",
        "discount", "linestatus",
    ],
}


@dataclass(frozen=True, slots=True)
class JoinWorkload:
    """One goal join over a two-table instance."""

    name: str
    description: str
    instance: Instance
    goal: JoinPredicate

    @property
    def goal_size(self) -> int:
        """Number of equality conjuncts in the goal."""
        return len(self.goal)


def _prepare(relation: Relation, trimmed: bool) -> Relation:
    if not trimmed:
        return relation
    return project(relation, _TRIMMED_COLUMNS[relation.name])


def _goal(left: str, right: str, *columns: tuple[str, str]) -> JoinPredicate:
    return JoinPredicate(
        (Attribute(left, a), Attribute(right, b)) for a, b in columns
    )


def tpch_workloads(
    tables: TpchTables, trimmed: bool = True
) -> list[JoinWorkload]:
    """The five goal joins of §5.1 over the given generated tables."""
    part = _prepare(tables.part, trimmed)
    partsupp = _prepare(tables.partsupp, trimmed)
    supplier = _prepare(tables.supplier, trimmed)
    customer = _prepare(tables.customer, trimmed)
    orders = _prepare(tables.orders, trimmed)
    lineitem = _prepare(tables.lineitem, trimmed)
    return [
        JoinWorkload(
            name="join1",
            description="Part[partkey] = Partsupp[partkey]",
            instance=Instance(part, partsupp),
            goal=_goal("part", "partsupp", ("partkey", "partkey")),
        ),
        JoinWorkload(
            name="join2",
            description="Supplier[suppkey] = Partsupp[suppkey]",
            instance=Instance(supplier, partsupp),
            goal=_goal("supplier", "partsupp", ("suppkey", "suppkey")),
        ),
        JoinWorkload(
            name="join3",
            description="Customer[custkey] = Orders[custkey]",
            instance=Instance(customer, orders),
            goal=_goal("customer", "orders", ("custkey", "custkey")),
        ),
        JoinWorkload(
            name="join4",
            description="Orders[orderkey] = Lineitem[orderkey]",
            instance=Instance(orders, lineitem),
            goal=_goal("orders", "lineitem", ("orderkey", "orderkey")),
        ),
        JoinWorkload(
            name="join5",
            description=(
                "Partsupp[partkey] = Lineitem[partkey] AND "
                "Partsupp[suppkey] = Lineitem[suppkey]"
            ),
            instance=Instance(partsupp, lineitem),
            goal=_goal(
                "partsupp",
                "lineitem",
                ("partkey", "partkey"),
                ("suppkey", "suppkey"),
            ),
        ),
    ]


# --- builtin workload registry (service layer) -------------------------------

#: Instance names a client may pass instead of uploading CSV data:
#: ``tpch/joinK`` is the instance of the K-th §5.1 goal join, ``synthetic/i``
#: the i-th Figure 7 generator configuration.
BUILTIN_WORKLOAD_NAMES: tuple[str, ...] = tuple(
    f"tpch/{name}" for name in WORKLOAD_NAMES
) + tuple(f"synthetic/{i}" for i in range(len(PAPER_CONFIGS)))


def builtin_instance(
    name: str, seed: int = 0, scale: float = 1.0
) -> Instance:
    """The named builtin instance, generated deterministically.

    Both generators are pure functions of ``(seed, scale)``, so every
    caller naming the same builtin gets a *value-identical* instance —
    which is what lets the service's index cache share one
    ``SignatureIndex`` across all sessions on the same builtin data.
    ``scale`` multiplies the TPC-H table sizes, and for the synthetic
    configurations it multiplies the per-relation row count (the same
    row scaling the benchmarks apply to reach the paper's largest
    products — e.g. ``synthetic/0`` at ``scale=24`` is the row-scaled
    largest Figure 7 configuration ``(3,3,2400,100)``).
    """
    family, _, rest = name.partition("/")
    if family == "tpch" and rest in WORKLOAD_NAMES:
        tables = generate_tpch(scale=scale, seed=seed)
        workload = {
            w.name: w for w in tpch_workloads(tables)
        }[rest]
        return workload.instance
    if family == "synthetic":
        try:
            config = PAPER_CONFIGS[int(rest)]
        except (ValueError, IndexError):
            raise ValueError(
                f"unknown synthetic workload {name!r}; expected "
                f"synthetic/0..synthetic/{len(PAPER_CONFIGS) - 1}"
            ) from None
        if scale != 1.0:
            config = config.scaled(max(1, round(config.rows * scale)))
        return generate_synthetic(config, seed=seed)
    raise ValueError(
        f"unknown builtin workload {name!r}; "
        f"choose one of {', '.join(BUILTIN_WORKLOAD_NAMES)}"
    )
