"""Semijoin samples (§6).

For semijoins the projection hides the P-side, so an example is a pair
``(t, α)`` with ``t ∈ R``: the user labels *R-rows* as kept or filtered
out, not Cartesian tuples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..core.sample import ConflictingLabelError, Label
from ..relational.relation import Row

__all__ = ["SemijoinExample", "SemijoinSample"]


@dataclass(frozen=True, slots=True)
class SemijoinExample:
    """One labeled R-row."""

    row: Row
    label: Label

    @property
    def is_positive(self) -> bool:
        """True for ``(t, +)``."""
        return self.label is Label.POSITIVE


class SemijoinSample:
    """A set of labeled R-rows with ``S+`` / ``S−`` accessors."""

    __slots__ = ("_labels",)

    def __init__(self, examples: Iterable[SemijoinExample] = ()):
        self._labels: dict[Row, Label] = {}
        for example in examples:
            self.add(example)

    @classmethod
    def of(
        cls, positives: Iterable[Row] = (), negatives: Iterable[Row] = ()
    ) -> "SemijoinSample":
        """Build from explicit positive / negative row collections."""
        sample = cls()
        for row in positives:
            sample.label_row(row, Label.POSITIVE)
        for row in negatives:
            sample.label_row(row, Label.NEGATIVE)
        return sample

    def add(self, example: SemijoinExample) -> None:
        """Insert one example, rejecting conflicting relabeling."""
        existing = self._labels.get(example.row)
        if existing is not None and existing is not example.label:
            raise ConflictingLabelError(
                f"row {example.row!r} already labeled {existing}"
            )
        self._labels[example.row] = example.label

    def label_row(self, row: Row, label: Label) -> None:
        """Shorthand for ``add(SemijoinExample(row, label))``."""
        self.add(SemijoinExample(row, label))

    @property
    def positives(self) -> list[Row]:
        """``S+`` in insertion order."""
        return [
            row
            for row, label in self._labels.items()
            if label is Label.POSITIVE
        ]

    @property
    def negatives(self) -> list[Row]:
        """``S−`` in insertion order."""
        return [
            row
            for row, label in self._labels.items()
            if label is Label.NEGATIVE
        ]

    def label_of(self, row: Row) -> Label | None:
        """The label of ``row``, if any."""
        return self._labels.get(row)

    def is_labeled(self, row: Row) -> bool:
        """True iff ``row`` carries a label."""
        return row in self._labels

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self) -> Iterator[SemijoinExample]:
        return iter(
            SemijoinExample(row, label)
            for row, label in self._labels.items()
        )

    def __repr__(self) -> str:
        return (
            f"SemijoinSample(|S+|={len(self.positives)}, "
            f"|S-|={len(self.negatives)})"
        )
