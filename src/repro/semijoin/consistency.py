"""Semijoin consistency checking — ``CONS⋉`` (§6).

Theorem 6.1 proves the problem NP-complete, so unlike the equijoin case
there is no PTIME characterisation to implement.  We provide three exact
deciders, cross-validated against each other in the tests:

* :func:`consistent_semijoin_brute` — enumerate ``P(Ω)`` (tiny Ω only);
* :func:`consistent_semijoin_backtracking` — branch over one witness
  signature per positive row (the structure the NP-hardness proof
  exploits), with memoisation on the partial intersections;
* :func:`consistent_semijoin_sat` — encode into CNF and run our DPLL
  solver; the encoding mirrors the guess-and-check NP membership argument.

All three return a concrete consistent semijoin predicate or ``None``.

Key observation used throughout: for a fixed choice of one witness
signature ``W(t)`` per positive row ``t``, the best candidate is
``θ = ∩_t W(t)`` — the ⊆-maximal predicate compatible with the choice.
By anti-monotonicity it selects the *fewest* R-rows among compatible
predicates, so if it still selects a negative row, every compatible
predicate does.
"""

from __future__ import annotations

from itertools import combinations

from ..core.specialize import pairs_from_bits, signature_bits
from ..relational.algebra import semijoin_selects
from ..relational.predicate import JoinPredicate
from ..relational.relation import Instance, Row
from ..sat.cnf import Clause, CnfFormula
from ..sat.dpll import solve as dpll_solve
from .sample import SemijoinSample

__all__ = [
    "witness_signatures",
    "is_semijoin_consistent_with",
    "consistent_semijoin_brute",
    "consistent_semijoin_backtracking",
    "consistent_semijoin_sat",
    "semijoin_consistency_cnf",
]


def is_semijoin_consistent_with(
    instance: Instance, predicate: JoinPredicate, sample: SemijoinSample
) -> bool:
    """Does θ keep all of ``S+`` and none of ``S−``?  (The polynomial
    verification step of the NP membership argument.)"""
    return all(
        semijoin_selects(instance, predicate, row)
        for row in sample.positives
    ) and not any(
        semijoin_selects(instance, predicate, row)
        for row in sample.negatives
    )


def witness_signatures(instance: Instance, row: Row) -> list[int]:
    """Distinct ⊆-maximal signature masks ``T((row, w))`` over ``w ∈ P``.

    θ keeps ``row`` iff θ is contained in one of these masks, so
    non-maximal and duplicate masks are redundant.
    """
    masks = {
        signature_bits(instance, (row, p_row)) for p_row in instance.right
    }
    return [
        mask
        for mask in masks
        if not any(other != mask and mask & ~other == 0 for other in masks)
    ]


def consistent_semijoin_brute(
    instance: Instance, sample: SemijoinSample
) -> JoinPredicate | None:
    """Enumerate every θ ⊆ Ω (2^|Ω|) — definition-level reference."""
    omega = instance.omega
    for size in range(len(omega) + 1):
        for pairs in combinations(omega, size):
            theta = JoinPredicate(pairs)
            if is_semijoin_consistent_with(instance, theta, sample):
                return theta
    return None


def consistent_semijoin_backtracking(
    instance: Instance, sample: SemijoinSample
) -> JoinPredicate | None:
    """Branch over witness choices for the positive rows.

    Negative rows cannot be checked before all positives commit (shrinking
    θ only *loses* R-rows), so pruning comes from memoising the partial
    intersection masks.
    """
    positives = sample.positives
    negatives = sample.negatives
    options = [witness_signatures(instance, row) for row in positives]
    if any(not opts for opts in options):
        return None  # a positive row with an empty P side is hopeless
    # Branch on the rows with the fewest options first.
    options.sort(key=len)
    omega_mask = (1 << len(instance.omega)) - 1
    negative_options = [
        witness_signatures(instance, row) for row in negatives
    ]

    def selects_negative(theta_mask: int) -> bool:
        return any(
            any(theta_mask & ~witness == 0 for witness in witnesses)
            for witnesses in negative_options
        )

    seen: set[tuple[int, int]] = set()

    def search(depth: int, theta_mask: int) -> int | None:
        if (depth, theta_mask) in seen:
            return None
        seen.add((depth, theta_mask))
        if depth == len(options):
            return None if selects_negative(theta_mask) else theta_mask
        for witness in options[depth]:
            found = search(depth + 1, theta_mask & witness)
            if found is not None:
                return found
        return None

    result = search(0, omega_mask)
    if result is None:
        return None
    return pairs_from_bits(instance, result)


def semijoin_consistency_cnf(
    instance: Instance, sample: SemijoinSample
) -> tuple[CnfFormula, dict[int, int]]:
    """Encode ``CONS⋉`` as CNF.

    Variables ``1..|Ω|``: pair ``p`` (0-based position in Ω) is variable
    ``p + 1`` and means ``(A_i, B_j) ∈ θ``.  Selector variables (one per
    positive row and maximal witness) encode the existential witness
    choice.  Returns the formula and the map ``variable → Ω position``
    for decoding pair variables.
    """
    n_pairs = len(instance.omega)
    pair_variable = {position: position + 1 for position in range(n_pairs)}
    clauses: list[Clause] = []
    next_variable = n_pairs + 1

    # Negative rows: for EVERY witness signature W, θ ⊄ W — some chosen
    # pair must fall outside W.
    for row in sample.negatives:
        for witness in witness_signatures(instance, row):
            outside = [
                pair_variable[position]
                for position in range(n_pairs)
                if not witness >> position & 1
            ]
            clauses.append(Clause(frozenset(outside)))

    # Positive rows: SOME witness signature contains θ.
    for row in sample.positives:
        witnesses = witness_signatures(instance, row)
        if not witnesses:
            clauses.append(Clause())  # unsatisfiable: no witness at all
            continue
        selectors = []
        for witness in witnesses:
            selector = next_variable
            next_variable += 1
            selectors.append(selector)
            for position in range(n_pairs):
                if not witness >> position & 1:
                    clauses.append(
                        Clause.of(-selector, -pair_variable[position])
                    )
        clauses.append(Clause(frozenset(selectors)))

    decode = {variable: position for position, variable in pair_variable.items()}
    return CnfFormula(clauses), decode


def consistent_semijoin_sat(
    instance: Instance, sample: SemijoinSample
) -> JoinPredicate | None:
    """Decide ``CONS⋉`` through the CNF encoding and DPLL."""
    formula, decode = semijoin_consistency_cnf(instance, sample)
    model = dpll_solve(formula)
    if model is None:
        return None
    mask = 0
    for variable, position in decode.items():
        if model.get(variable, False):
            mask |= 1 << position
    theta = pairs_from_bits(instance, mask)
    assert is_semijoin_consistent_with(instance, theta, sample), (
        "SAT encoding produced an inconsistent predicate"
    )
    return theta
