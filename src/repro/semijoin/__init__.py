"""Semijoin queries: intractability (§6) and heuristic inference (§7).

Consistency checking for semijoin predicates is NP-complete
(Theorem 6.1); this package contains the three exact deciders, the
3SAT reduction from the paper's appendix, positive-only minimality
analysis, and a SAT-oracle-backed interactive inference heuristic.
"""

from .consistency import (
    consistent_semijoin_backtracking,
    consistent_semijoin_brute,
    consistent_semijoin_sat,
    is_semijoin_consistent_with,
    semijoin_consistency_cnf,
    witness_signatures,
)
from .heuristics import (
    SemijoinInferenceResult,
    SemijoinInferenceSession,
    is_semijoin_informative,
    semijoin_certain_label,
)
from .minimality import (
    covering_predicates,
    is_selection_minimal,
    minimal_selection_predicates,
    minimal_selection_unique,
)
from .oracle import PerfectSemijoinOracle
from .reduction import (
    ReductionInstance,
    extract_valuation,
    reduce_3sat,
    valuation_predicate,
)
from .sample import SemijoinExample, SemijoinSample

__all__ = [
    "PerfectSemijoinOracle",
    "ReductionInstance",
    "SemijoinExample",
    "SemijoinInferenceResult",
    "SemijoinInferenceSession",
    "SemijoinSample",
    "consistent_semijoin_backtracking",
    "consistent_semijoin_brute",
    "consistent_semijoin_sat",
    "covering_predicates",
    "extract_valuation",
    "is_selection_minimal",
    "is_semijoin_consistent_with",
    "is_semijoin_informative",
    "minimal_selection_predicates",
    "minimal_selection_unique",
    "reduce_3sat",
    "semijoin_certain_label",
    "semijoin_consistency_cnf",
    "valuation_predicate",
    "witness_signatures",
]
