"""The 3SAT → CONS⋉ reduction of Theorem 6.1 (appendix A.1).

Given a 3-CNF formula ``φ = c1 ∧ … ∧ ck`` over variables ``x1 … xn`` the
construction builds:

* ``Rφ`` with attributes ``{idR, A1 … An}``: one row per clause (positive
  examples), one ``X`` row and one row per variable (negative examples);
  all share the values ``Aj = j`` and differ only in ``idR``;
* ``Pφ`` with attributes ``{idP, B1t, B1f, …, Bnt, Bnf}``: three rows per
  clause (one per literal), the ``Y`` row, and one row per variable.  The
  ``⊥`` filler guarantees a mismatch.

``φ`` is satisfiable iff some semijoin predicate keeps all clause rows and
none of the negative rows.  A consistent predicate must contain
``(idR, idP)`` and, per variable, at least one of ``(Ai, Bit)`` /
``(Ai, Bif)`` — the ``t``/``f`` choice encodes the satisfying valuation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..relational.predicate import JoinPredicate
from ..relational.relation import Instance, Relation
from ..relational.schema import Attribute
from ..sat.cnf import Assignment, CnfFormula
from .sample import SemijoinSample

__all__ = ["ReductionInstance", "reduce_3sat", "extract_valuation"]

#: The non-matching filler value (the paper's ⊥).
BOTTOM = "_bot"


@dataclass(frozen=True, slots=True)
class ReductionInstance:
    """The output of the Theorem 6.1 construction."""

    formula: CnfFormula
    instance: Instance
    sample: SemijoinSample

    @property
    def relation_r(self) -> Relation:
        """``Rφ``."""
        return self.instance.left

    @property
    def relation_p(self) -> Relation:
        """``Pφ``."""
        return self.instance.right

    @property
    def n_variables(self) -> int:
        """The construction covers variables ``x1 … xn`` with
        ``n = max(vars(φ))`` — including any index gaps, each of which
        still gets its ``A``/``B`` columns and its negative row."""
        return self.relation_r.arity - 1


def _clause_literals(formula: CnfFormula) -> list[list[int]]:
    """Clauses as sorted literal lists (the reduction needs ≤ 3 each)."""
    out = []
    for clause in formula.clauses:
        literals = sorted(clause.literals, key=abs)
        if len(literals) > 3:
            raise ValueError(
                f"Theorem 6.1 reduces from 3SAT; clause {clause} has "
                f"{len(literals)} literals"
            )
        if not literals:
            raise ValueError("empty clauses are trivially unsatisfiable")
        out.append(literals)
    return out


def reduce_3sat(formula: CnfFormula) -> ReductionInstance:
    """Build ``(Rφ, Pφ, Sφ)`` from a 3-CNF formula."""
    clauses = _clause_literals(formula)
    variables = sorted(formula.variables())
    if not variables:
        raise ValueError("the reduction needs at least one variable")
    n = max(variables)

    r_attributes = ["idR"] + [f"A{j}" for j in range(1, n + 1)]
    base_values = tuple(range(1, n + 1))

    r_rows = []
    positives = []
    negatives = []
    for i, _ in enumerate(clauses, start=1):
        row = (f"c{i}+",) + base_values
        r_rows.append(row)
        positives.append(row)
    x_row = ("X",) + base_values
    r_rows.append(x_row)
    negatives.append(x_row)
    for i in range(1, n + 1):
        row = (f"x{i}*",) + base_values
        r_rows.append(row)
        negatives.append(row)

    p_attributes = ["idP"]
    for j in range(1, n + 1):
        p_attributes.extend([f"B{j}t", f"B{j}f"])

    p_rows = []
    for i, literals in enumerate(clauses, start=1):
        for literal in literals:
            variable = abs(literal)
            values: list[object] = [f"c{i}+"]
            for j in range(1, n + 1):
                if j != variable:
                    values.extend([j, j])
                elif literal > 0:
                    values.extend([j, BOTTOM])
                else:
                    values.extend([BOTTOM, j])
            p_rows.append(tuple(values))
    y_values: list[object] = ["Y"]
    for j in range(1, n + 1):
        y_values.extend([j, j])
    p_rows.append(tuple(y_values))
    for i in range(1, n + 1):
        values = [f"x{i}*"]
        for j in range(1, n + 1):
            if i == j:
                values.extend([BOTTOM, BOTTOM])
            else:
                values.extend([j, j])
        p_rows.append(tuple(values))

    r_phi = Relation.build("Rphi", r_attributes, r_rows)
    p_phi = Relation.build("Pphi", p_attributes, p_rows)
    instance = Instance(r_phi, p_phi)
    sample = SemijoinSample.of(positives=positives, negatives=negatives)
    return ReductionInstance(
        formula=formula, instance=instance, sample=sample
    )


def valuation_predicate(
    reduction: ReductionInstance, assignment: Assignment
) -> JoinPredicate:
    """The consistent predicate a satisfying valuation induces (the "only
    if" direction of the proof): ``(idR,idP)`` plus ``(Ai, Bi^{V(xi)})``."""
    pairs = [(Attribute("Rphi", "idR"), Attribute("Pphi", "idP"))]
    for variable in range(1, reduction.n_variables + 1):
        suffix = "t" if assignment.get(variable, False) else "f"
        pairs.append(
            (
                Attribute("Rphi", f"A{variable}"),
                Attribute("Pphi", f"B{variable}{suffix}"),
            )
        )
    return JoinPredicate(pairs)


def extract_valuation(
    reduction: ReductionInstance, predicate: JoinPredicate
) -> Assignment:
    """Recover a satisfying valuation from a consistent predicate (the
    "if" direction): per variable, a consistent θ contains exactly the
    polarity pairs whose valuation satisfies φ; when both polarities of a
    variable appear the variable is unconstrained by the witnesses and we
    default it to True."""
    true_vars = set()
    false_vars = set()
    for a, b in predicate.pairs:
        if not a.name.startswith("A"):
            continue
        variable = int(a.name[1:])
        if b.name.endswith("t"):
            true_vars.add(variable)
        elif b.name.endswith("f"):
            false_vars.add(variable)
    assignment: Assignment = {}
    for variable in range(1, reduction.n_variables + 1):
        if variable in true_vars and variable not in false_vars:
            assignment[variable] = True
        elif variable in false_vars and variable not in true_vars:
            assignment[variable] = False
        else:
            assignment[variable] = True
    return assignment
