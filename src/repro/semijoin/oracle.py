"""Semijoin user oracles — label R-rows instead of Cartesian tuples."""

from __future__ import annotations

from ..core.sample import Label
from ..relational.algebra import semijoin_selects
from ..relational.predicate import JoinPredicate
from ..relational.relation import Instance, Row

__all__ = ["PerfectSemijoinOracle"]


class PerfectSemijoinOracle:
    """Labels R-rows exactly as the goal semijoin predicate dictates."""

    def __init__(self, instance: Instance, goal: JoinPredicate):
        goal.validate_for(instance)
        self._instance = instance
        self._goal = goal

    @property
    def goal(self) -> JoinPredicate:
        """The goal semijoin predicate."""
        return self._goal

    def label(self, row: Row) -> Label:
        if semijoin_selects(self._instance, self._goal, row):
            return Label.POSITIVE
        return Label.NEGATIVE
