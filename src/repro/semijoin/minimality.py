"""Minimality of semijoin predicates under positive-only samples.

§7 reports (as future work) that deciding minimality of a semijoin
predicate given only positive examples is coNP-complete and that
uniqueness of the minimal predicate was open.  We implement the
brute-force decision procedures so the question can be explored
experimentally:

* *minimal* is read as **selection-minimal**: θ is minimal iff no
  consistent θ′ selects a strictly smaller superset of ``S+`` —
  equivalently, the semijoin result ``R ⋉_θ P`` cannot shrink while
  still covering the positives.  (With positive-only samples every
  predicate is "consistent" in the §6 sense as long as it keeps ``S+``,
  so cardinality-minimality would trivially pick ``∅``.)
"""

from __future__ import annotations

from itertools import combinations

from ..relational.algebra import semijoin
from ..relational.predicate import JoinPredicate
from ..relational.relation import Instance, Row
from .sample import SemijoinSample

__all__ = [
    "covering_predicates",
    "minimal_selection_predicates",
    "is_selection_minimal",
    "minimal_selection_unique",
]


def _selects_all_positives(
    instance: Instance, theta: JoinPredicate, positives: list[Row]
) -> bool:
    kept = set(semijoin(instance, theta))
    return all(row in kept for row in positives)


def covering_predicates(
    instance: Instance, sample: SemijoinSample
) -> list[JoinPredicate]:
    """All θ ⊆ Ω keeping every positive row (exponential; small Ω only)."""
    positives = sample.positives
    omega = instance.omega
    out = []
    for size in range(len(omega) + 1):
        for pairs in combinations(omega, size):
            theta = JoinPredicate(pairs)
            if _selects_all_positives(instance, theta, positives):
                out.append(theta)
    return out


def minimal_selection_predicates(
    instance: Instance, sample: SemijoinSample
) -> list[JoinPredicate]:
    """The covering predicates whose semijoin result is ⊆-minimal."""
    candidates = covering_predicates(instance, sample)
    results = {
        theta: frozenset(semijoin(instance, theta)) for theta in candidates
    }
    minimal = []
    for theta, selected in results.items():
        if not any(
            other_selected < selected
            for other_selected in results.values()
        ):
            minimal.append(theta)
    return minimal


def is_selection_minimal(
    instance: Instance, sample: SemijoinSample, theta: JoinPredicate
) -> bool:
    """coNP question: is θ's selection minimal among covering predicates?"""
    if not _selects_all_positives(instance, theta, sample.positives):
        return False
    target = frozenset(semijoin(instance, theta))
    for other in covering_predicates(instance, sample):
        if frozenset(semijoin(instance, other)) < target:
            return False
    return True


def minimal_selection_unique(
    instance: Instance, sample: SemijoinSample
) -> bool:
    """Is the minimal semijoin *result* unique?  (The open uniqueness
    question of §7, decided by enumeration on small instances.)"""
    minimal = minimal_selection_predicates(instance, sample)
    results = {frozenset(semijoin(instance, theta)) for theta in minimal}
    return len(results) <= 1
