"""Heuristic interactive inference of semijoins (future work of §7).

Theorem 6.1 rules out a PTIME analogue of the equijoin machinery: even
deciding whether a row's label is already implied requires answering
consistency questions, which are NP-complete.  This module implements the
natural NP-oracle-based lifting, with our DPLL solver standing in for the
oracle (the instances are small enough in practice):

* :func:`semijoin_certain_label` — a row is certainly-positive iff no
  consistent predicate excludes it, i.e. iff ``S ∪ {(row, −)}`` is
  inconsistent (one SAT call); symmetrically for certainly-negative.
* :class:`SemijoinInferenceSession` — the Algorithm 1 loop with the
  SAT-backed informativeness test.  The strategy asks rows with the most
  distinct maximal witness signatures first ("most ambiguous first"), a
  greedy proxy for entropy; ties and the ``random`` mode use the seeded
  RNG.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Literal

from ..core.sample import Label
from ..relational.algebra import semijoin_selects
from ..relational.predicate import JoinPredicate
from ..relational.relation import Instance, Row
from .consistency import consistent_semijoin_sat, witness_signatures
from .sample import SemijoinExample, SemijoinSample

__all__ = [
    "semijoin_certain_label",
    "is_semijoin_informative",
    "SemijoinInferenceResult",
    "SemijoinInferenceSession",
]


def semijoin_certain_label(
    instance: Instance, sample: SemijoinSample, row: Row
) -> Label | None:
    """The label every consistent semijoin predicate forces on ``row``,
    or ``None`` when both labels remain possible.

    Each direction is one NP (SAT) call: ``row`` is certainly-positive
    iff adding ``(row, −)`` makes the sample inconsistent.
    """
    hypothetical_negative = SemijoinSample.of(
        positives=sample.positives, negatives=sample.negatives + [row]
    )
    if consistent_semijoin_sat(instance, hypothetical_negative) is None:
        return Label.POSITIVE
    hypothetical_positive = SemijoinSample.of(
        positives=sample.positives + [row], negatives=sample.negatives
    )
    if consistent_semijoin_sat(instance, hypothetical_positive) is None:
        return Label.NEGATIVE
    return None


def is_semijoin_informative(
    instance: Instance, sample: SemijoinSample, row: Row
) -> bool:
    """Unlabeled and not forced either way (two SAT calls)."""
    if sample.is_labeled(row):
        return False
    return semijoin_certain_label(instance, sample, row) is None


@dataclass(frozen=True, slots=True)
class SemijoinInferenceResult:
    """Outcome of a heuristic semijoin inference run."""

    predicate: JoinPredicate
    interactions: int
    history: tuple[SemijoinExample, ...]

    def matches_goal(
        self, instance: Instance, goal: JoinPredicate
    ) -> bool:
        """Same kept-row set as the goal on this instance."""
        mine = {
            row
            for row in instance.left
            if semijoin_selects(instance, self.predicate, row)
        }
        theirs = {
            row
            for row in instance.left
            if semijoin_selects(instance, goal, row)
        }
        return mine == theirs


class SemijoinInferenceSession:
    """Interactive semijoin inference with a SAT-backed halt test."""

    def __init__(
        self,
        instance: Instance,
        oracle,
        strategy: Literal["ambiguity", "random"] = "ambiguity",
        seed: int | None = None,
    ):
        self.instance = instance
        self.oracle = oracle
        self.strategy = strategy
        self.rng = random.Random(seed)
        self.sample = SemijoinSample()
        self._history: list[SemijoinExample] = []

    def _informative_rows(self) -> list[Row]:
        return [
            row
            for row in self.instance.left
            if is_semijoin_informative(self.instance, self.sample, row)
        ]

    def _pick(self, candidates: list[Row]) -> Row:
        if self.strategy == "random":
            return self.rng.choice(candidates)
        # "ambiguity": most distinct maximal witness signatures first.
        scored = [
            (len(witness_signatures(self.instance, row)), index, row)
            for index, row in enumerate(candidates)
        ]
        best_score = max(score for score, _, _ in scored)
        top = [row for score, _, row in scored if score == best_score]
        return top[0]

    def run(self) -> SemijoinInferenceResult:
        """Ask about informative rows until every row is decided."""
        while True:
            candidates = self._informative_rows()
            if not candidates:
                break
            row = self._pick(candidates)
            label = self.oracle.label(row)
            example = SemijoinExample(row, label)
            self.sample.add(example)
            self._history.append(example)
        predicate = consistent_semijoin_sat(self.instance, self.sample)
        if predicate is None:
            raise ValueError("oracle produced an inconsistent sample")
        return SemijoinInferenceResult(
            predicate=predicate,
            interactions=len(self._history),
            history=tuple(self._history),
        )
