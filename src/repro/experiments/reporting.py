"""Rendering experiment results as aligned text / markdown tables."""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from .figures import Figure6Row, Figure7Cell, Table1Row

__all__ = [
    "render_table",
    "render_figure6",
    "render_figure7",
    "render_table1",
]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """A GitHub-markdown table (monospace-friendly)."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells), 1)
        if cells
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(f"**{title}**")
        lines.append("")
    lines.append(
        "| "
        + " | ".join(h.ljust(w) for h, w in zip(headers, widths))
        + " |"
    )
    lines.append(
        "|" + "|".join("-" * (w + 2) for w in widths) + "|"
    )
    for row in cells:
        lines.append(
            "| "
            + " | ".join(c.ljust(w) for c, w in zip(row, widths))
            + " |"
        )
    return "\n".join(lines)


def _strategy_order(names: set[str]) -> list[str]:
    preferred = ["RND", "BU", "TD", "L1S", "L2S", "L3S", "OPT"]
    ordered = [name for name in preferred if name in names]
    ordered.extend(sorted(names - set(ordered)))
    return ordered


def render_figure6(rows: list[Figure6Row]) -> str:
    """Figures 6a–6d: one interactions table and one time table per
    scale."""
    by_scale: dict[str, list[Figure6Row]] = defaultdict(list)
    for row in rows:
        by_scale[row.scale_label].append(row)
    sections = []
    for scale_label, scale_rows in by_scale.items():
        strategies = _strategy_order(
            {r.measurement.strategy_name for r in scale_rows}
        )
        joins = sorted({r.join_name for r in scale_rows})
        cell = {
            (r.join_name, r.measurement.strategy_name): r.measurement
            for r in scale_rows
        }
        interactions_rows = [
            [join]
            + [cell[(join, s)].interactions for s in strategies]
            for join in joins
        ]
        time_rows = [
            [join]
            + [f"{cell[(join, s)].seconds:.3f}" for s in strategies]
            for join in joins
        ]
        sections.append(
            render_table(
                ["join"] + strategies,
                interactions_rows,
                title=f"Number of interactions, {scale_label} "
                "(cf. Figure 6a/6b)",
            )
        )
        sections.append(
            render_table(
                ["join"] + strategies,
                time_rows,
                title=f"Inference time in seconds, {scale_label} "
                "(cf. Figure 6c/6d)",
            )
        )
    return "\n\n".join(sections)


def render_figure7(cells: list[Figure7Cell]) -> str:
    """Figures 7a–7l: per configuration, interactions and time tables by
    goal size."""
    by_config: dict[str, list[Figure7Cell]] = defaultdict(list)
    for cell in cells:
        by_config[cell.config.label].append(cell)
    sections = []
    for label, config_cells in by_config.items():
        strategies = _strategy_order(
            {c.aggregated.strategy_name for c in config_cells}
        )
        sizes = sorted({c.goal_size for c in config_cells})
        lookup = {
            (c.goal_size, c.aggregated.strategy_name): c.aggregated
            for c in config_cells
        }
        interactions_rows = []
        time_rows = []
        for size in sizes:
            interactions_rows.append(
                [size]
                + [
                    f"{lookup[(size, s)].mean_interactions:.1f}"
                    if (size, s) in lookup
                    else "-"
                    for s in strategies
                ]
            )
            time_rows.append(
                [size]
                + [
                    f"{lookup[(size, s)].mean_seconds:.3f}"
                    if (size, s) in lookup
                    else "-"
                    for s in strategies
                ]
            )
        sections.append(
            render_table(
                ["|goal|"] + strategies,
                interactions_rows,
                title=f"Number of interactions, {label} (cf. Figure 7)",
            )
        )
        sections.append(
            render_table(
                ["|goal|"] + strategies,
                time_rows,
                title=f"Inference time in seconds, {label} (cf. Figure 7)",
            )
        )
    return "\n\n".join(sections)


def render_table1(rows: list[Table1Row]) -> str:
    """The paper's Table 1 layout."""
    table_rows = []
    for row in rows:
        table_rows.append(
            [
                row.group,
                row.experiment,
                f"{row.cartesian_size:.1e}",
                f"{row.join_ratio:.3f}",
                "/".join(row.best_strategies),
                f"{row.best_interactions:.1f}",
                f"{row.best_seconds:.3f}",
            ]
        )
    return render_table(
        [
            "group",
            "experiment",
            "|D|",
            "join ratio",
            "best strategy",
            "interactions",
            "time (s)",
        ],
        table_rows,
        title="Summary of all experiments (cf. Table 1)",
    )
