"""Instance complexity metrics (§5.3).

The *join ratio* — the mean size of the distinct most-specific predicates
— is the paper's predictor of inference difficulty; Table 1 reports it
next to the Cartesian-product size for every experimental instance.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.signatures import SignatureIndex
from ..relational.relation import Instance

__all__ = ["InstanceMetrics", "compute_metrics"]


@dataclass(frozen=True, slots=True)
class InstanceMetrics:
    """The Table 1 descriptors of one instance."""

    cartesian_size: int
    distinct_signatures: int
    join_ratio: float
    max_signature_size: int
    maximal_classes: int

    @property
    def compression(self) -> float:
        """|D| / #signatures — how much the quotient shrinks the work."""
        if self.distinct_signatures == 0:
            return 0.0
        return self.cartesian_size / self.distinct_signatures


def compute_metrics(
    instance: Instance, index: SignatureIndex | None = None
) -> InstanceMetrics:
    """All Table 1 descriptors in one pass."""
    if index is None:
        index = SignatureIndex(instance)
    sizes = [cls.size for cls in index]
    return InstanceMetrics(
        cartesian_size=instance.cartesian_size,
        distinct_signatures=len(index),
        join_ratio=index.join_ratio(),
        max_signature_size=max(sizes) if sizes else 0,
        maximal_classes=len(index.maximal_class_ids),
    )
