"""Experiment harness: the measured runs, metrics, and figure/table
regeneration for the paper's §5 (plus reporting helpers)."""

from .charts import bar_chart, chart_figure6, chart_figure7
from .figures import (
    TPCH_SCALES,
    Figure6Row,
    Figure7Cell,
    Table1Row,
    figure6,
    figure7,
    table1,
)
from .metrics import InstanceMetrics, compute_metrics
from .reporting import (
    render_figure6,
    render_figure7,
    render_table,
    render_table1,
)
from .runner import (
    AggregatedMeasurement,
    Measurement,
    average_measurements,
    measure_inference,
)

__all__ = [
    "AggregatedMeasurement",
    "Figure6Row",
    "Figure7Cell",
    "InstanceMetrics",
    "Measurement",
    "TPCH_SCALES",
    "Table1Row",
    "average_measurements",
    "bar_chart",
    "chart_figure6",
    "chart_figure7",
    "compute_metrics",
    "figure6",
    "figure7",
    "measure_inference",
    "render_figure6",
    "render_figure7",
    "render_table",
    "render_table1",
    "table1",
]
