"""Measured inference runs (the experimental protocol of §5).

For each database instance and goal join predicate the paper measures two
quantities per strategy: the number of user interactions until the halt
condition Γ (no informative tuple left), and the total inference time.
:func:`measure_inference` produces one such measurement;
:func:`average_measurements` aggregates repetitions the way §5.2 does
("averaging over 100 runs").
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass

from ..core.oracle import PerfectOracle
from ..core.session import run_inference
from ..core.signatures import SignatureIndex
from ..core.strategies.base import Strategy
from ..relational.predicate import JoinPredicate
from ..relational.relation import Instance

__all__ = ["Measurement", "AggregatedMeasurement", "measure_inference",
           "average_measurements"]


@dataclass(frozen=True, slots=True)
class Measurement:
    """One (instance, goal, strategy) inference run."""

    strategy_name: str
    goal_size: int
    interactions: int
    seconds: float
    equivalent: bool


@dataclass(frozen=True, slots=True)
class AggregatedMeasurement:
    """Mean interactions/time over repeated runs of one cell."""

    strategy_name: str
    goal_size: int
    runs: int
    mean_interactions: float
    mean_seconds: float
    max_interactions: int
    all_equivalent: bool


def measure_inference(
    instance: Instance,
    strategy: Strategy,
    goal: JoinPredicate,
    index: SignatureIndex | None = None,
    seed: int | None = None,
) -> Measurement:
    """Run one inference to completion and record the §5 metrics.

    The measured time covers the strategy's work only (the signature
    index is built once per instance and can be shared across
    strategies, mirroring how the paper charges time per strategy).
    """
    if index is None:
        index = SignatureIndex(instance)
    oracle = PerfectOracle(instance, goal)
    started = time.perf_counter()
    result = run_inference(
        instance, strategy, oracle, index=index, seed=seed
    )
    seconds = time.perf_counter() - started
    return Measurement(
        strategy_name=strategy.name,
        goal_size=len(goal),
        interactions=result.interactions,
        seconds=seconds,
        equivalent=result.matches_goal(instance, goal),
    )


def average_measurements(
    measurements: list[Measurement],
) -> AggregatedMeasurement:
    """Aggregate repeated measurements of the same experimental cell."""
    if not measurements:
        raise ValueError("nothing to aggregate")
    names = {m.strategy_name for m in measurements}
    if len(names) != 1:
        raise ValueError(f"mixed strategies in one cell: {names}")
    sizes = {m.goal_size for m in measurements}
    return AggregatedMeasurement(
        strategy_name=measurements[0].strategy_name,
        goal_size=min(sizes),
        runs=len(measurements),
        mean_interactions=statistics.fmean(
            m.interactions for m in measurements
        ),
        mean_seconds=statistics.fmean(m.seconds for m in measurements),
        max_interactions=max(m.interactions for m in measurements),
        all_equivalent=all(m.equivalent for m in measurements),
    )
