"""Regeneration of every table and figure of the paper's §5.

* :func:`figure6` — the TPC-H experiments: interactions and inference
  time for Joins 1–5 at two scales (Figures 6a–6d).
* :func:`figure7` — the synthetic experiments: interactions and time per
  goal-predicate size for the six generator configurations
  (Figures 7a–7l).
* :func:`table1` — the summary table: Cartesian-product size, join
  ratio, best strategy and its time, for every experimental instance.

Scale mapping: the paper sweeps TPC-H scale factors 1…100000; absolute
cardinalities are irrelevant to the strategies (they see the signature
quotient), so we map "SF=1" → ``scale=1`` and "SF=100000" → ``scale=4``
of our generator and keep the join-ratio structure (see DESIGN.md §3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..core.lattice import sample_goal_of_size
from ..core.signatures import SignatureIndex
from ..core.strategies import Strategy, default_strategies
from ..data.synthetic import PAPER_CONFIGS, SyntheticConfig, generate_synthetic
from ..data.tpch import generate_tpch
from ..data.workloads import tpch_workloads
from .metrics import InstanceMetrics, compute_metrics
from .runner import (
    AggregatedMeasurement,
    Measurement,
    average_measurements,
    measure_inference,
)

__all__ = [
    "Figure6Row",
    "Figure7Cell",
    "Table1Row",
    "TPCH_SCALES",
    "figure6",
    "figure7",
    "table1",
]

#: Paper scale label → our generator scale (see module docstring).
TPCH_SCALES: dict[str, float] = {"SF-small": 1.0, "SF-large": 4.0}


@dataclass(frozen=True, slots=True)
class Figure6Row:
    """One (scale, join, strategy) cell of Figures 6a–6d."""

    scale_label: str
    join_name: str
    goal_size: int
    measurement: Measurement
    metrics: InstanceMetrics


@dataclass(frozen=True, slots=True)
class Figure7Cell:
    """One (configuration, goal size, strategy) cell of Figures 7a–7l."""

    config: SyntheticConfig
    goal_size: int
    aggregated: AggregatedMeasurement


@dataclass(frozen=True, slots=True)
class Table1Row:
    """One row of the paper's Table 1."""

    group: str
    experiment: str
    cartesian_size: int
    join_ratio: float
    best_strategies: tuple[str, ...]
    best_interactions: float
    best_seconds: float
    cells: dict[str, AggregatedMeasurement] = field(repr=False)


def _strategies(strategies: list[Strategy] | None) -> list[Strategy]:
    return default_strategies() if strategies is None else strategies


def figure6(
    scales: dict[str, float] | None = None,
    strategies: list[Strategy] | None = None,
    seed: int = 0,
    trimmed: bool = True,
) -> list[Figure6Row]:
    """Interactions and time for the five TPC-H joins at each scale."""
    scales = TPCH_SCALES if scales is None else scales
    rows: list[Figure6Row] = []
    for scale_label, scale in scales.items():
        tables = generate_tpch(scale=scale, seed=seed)
        for workload in tpch_workloads(tables, trimmed=trimmed):
            index = SignatureIndex(workload.instance)
            metrics = compute_metrics(workload.instance, index)
            for strategy in _strategies(strategies):
                measurement = measure_inference(
                    workload.instance,
                    strategy,
                    workload.goal,
                    index=index,
                    seed=seed,
                )
                rows.append(
                    Figure6Row(
                        scale_label=scale_label,
                        join_name=workload.name,
                        goal_size=workload.goal_size,
                        measurement=measurement,
                        metrics=metrics,
                    )
                )
    return rows


def _instance_with_goal(
    config: SyntheticConfig,
    goal_size: int,
    rng: random.Random,
    max_attempts: int = 50,
):
    """A synthetic instance admitting a non-nullable goal of the size."""
    for _ in range(max_attempts):
        instance = generate_synthetic(config, seed=rng.randrange(2**31))
        index = SignatureIndex(instance)
        goal = sample_goal_of_size(index, goal_size, rng)
        if goal is not None:
            return instance, index, goal
    return None


def figure7(
    configs: tuple[SyntheticConfig, ...] = PAPER_CONFIGS,
    goal_sizes: tuple[int, ...] = (0, 1, 2, 3, 4),
    runs: int = 3,
    strategies: list[Strategy] | None = None,
    seed: int = 0,
) -> list[Figure7Cell]:
    """Mean interactions/time per goal size for each configuration.

    The paper averages 100 runs; ``runs`` trades precision for time (the
    shapes stabilise quickly).  Each run draws a fresh instance and a
    fresh non-nullable goal of the requested size, shared across all
    strategies for fairness.
    """
    cells: list[Figure7Cell] = []
    for config in configs:
        rng = random.Random((seed, config.label).__hash__() & 0x7FFFFFFF)
        for goal_size in goal_sizes:
            trials = []
            for _ in range(runs):
                drawn = _instance_with_goal(config, goal_size, rng)
                if drawn is not None:
                    trials.append(drawn)
            if not trials:
                continue  # the instance never admits goals of this size
            for strategy in _strategies(strategies):
                measurements = [
                    measure_inference(
                        instance, strategy, goal, index=index, seed=seed
                    )
                    for instance, index, goal in trials
                ]
                cells.append(
                    Figure7Cell(
                        config=config,
                        goal_size=goal_size,
                        aggregated=average_measurements(measurements),
                    )
                )
    return cells


def _best(
    cells: dict[str, AggregatedMeasurement]
) -> tuple[tuple[str, ...], float, float]:
    """Strategies minimising mean interactions, with the fastest time
    among them (Table 1's 'best strategy' columns)."""
    best_interactions = min(
        cell.mean_interactions for cell in cells.values()
    )
    winners = tuple(
        name
        for name, cell in cells.items()
        if cell.mean_interactions == best_interactions
    )
    best_seconds = min(cells[name].mean_seconds for name in winners)
    return winners, best_interactions, best_seconds


def table1(
    figure6_rows: list[Figure6Row] | None = None,
    figure7_cells: list[Figure7Cell] | None = None,
    seed: int = 0,
    runs: int = 3,
) -> list[Table1Row]:
    """The summary table, built from (or computing) the two figure runs."""
    if figure6_rows is None:
        figure6_rows = figure6(seed=seed)
    if figure7_cells is None:
        figure7_cells = figure7(seed=seed, runs=runs)

    rows: list[Table1Row] = []

    tpch_groups: dict[tuple[str, str], dict[str, AggregatedMeasurement]] = {}
    tpch_metrics: dict[tuple[str, str], tuple[InstanceMetrics, int]] = {}
    for row in figure6_rows:
        key = (row.scale_label, row.join_name)
        tpch_groups.setdefault(key, {})[
            row.measurement.strategy_name
        ] = average_measurements([row.measurement])
        tpch_metrics[key] = (row.metrics, row.goal_size)
    for (scale_label, join_name), cells in tpch_groups.items():
        metrics, goal_size = tpch_metrics[(scale_label, join_name)]
        winners, interactions, seconds = _best(cells)
        rows.append(
            Table1Row(
                group=f"TPC-H {scale_label}",
                experiment=f"{join_name} (size {goal_size})",
                cartesian_size=metrics.cartesian_size,
                join_ratio=metrics.join_ratio,
                best_strategies=winners,
                best_interactions=interactions,
                best_seconds=seconds,
                cells=cells,
            )
        )

    synthetic_groups: dict[
        tuple[SyntheticConfig, int], dict[str, AggregatedMeasurement]
    ] = {}
    for cell in figure7_cells:
        key = (cell.config, cell.goal_size)
        synthetic_groups.setdefault(key, {})[
            cell.aggregated.strategy_name
        ] = cell.aggregated
    ratio_cache: dict[SyntheticConfig, tuple[int, float]] = {}
    for (config, goal_size), cells in synthetic_groups.items():
        if config not in ratio_cache:
            instance = generate_synthetic(config, seed=seed)
            metrics = compute_metrics(instance)
            ratio_cache[config] = (
                metrics.cartesian_size,
                metrics.join_ratio,
            )
        cartesian_size, join_ratio = ratio_cache[config]
        label = config.label
        winners, interactions, seconds = _best(cells)
        rows.append(
            Table1Row(
                group=f"Synthetic {label}",
                experiment=f"goals of size {goal_size}",
                cartesian_size=cartesian_size,
                join_ratio=join_ratio,
                best_strategies=winners,
                best_interactions=interactions,
                best_seconds=seconds,
                cells=cells,
            )
        )
    return rows
