"""Regenerate the measured experiment tables.

Usage::

    python -m repro.experiments [--runs N] [--seed S] [--output PATH]

Prints the Figure 6, Figure 7 and Table 1 reproductions; with
``--output`` also writes them to a markdown file (the payload embedded in
EXPERIMENTS.md).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .charts import chart_figure6, chart_figure7
from .figures import figure6, figure7, table1
from .reporting import render_figure6, render_figure7, render_table1


def build_report(runs: int, seed: int, charts: bool = False) -> str:
    """Run all experiments and render the markdown payload."""
    fig6_rows = figure6(seed=seed)
    fig7_cells = figure7(seed=seed, runs=runs)
    table1_rows = table1(
        figure6_rows=fig6_rows, figure7_cells=fig7_cells, seed=seed
    )
    parts = [
        "## TPC-H experiments (Figure 6)",
        render_figure6(fig6_rows),
        "## Synthetic experiments (Figure 7)",
        render_figure7(fig7_cells),
        "## Summary (Table 1)",
        render_table1(table1_rows),
    ]
    if charts:
        parts.extend(
            [
                "## Figure 6 as bar charts",
                "```",
                chart_figure6(fig6_rows),
                "```",
                "## Figure 7 as bar charts",
                "```",
                chart_figure7(fig7_cells),
                "```",
            ]
        )
    return "\n\n".join(parts) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's experiment tables.",
    )
    parser.add_argument(
        "--runs",
        type=int,
        default=3,
        help="repetitions per synthetic cell (paper: 100; default: 3)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--charts",
        action="store_true",
        help="append ASCII bar-chart renderings of the figures",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="also write the report to this markdown file",
    )
    args = parser.parse_args(argv)
    report = build_report(runs=args.runs, seed=args.seed, charts=args.charts)
    print(report)
    if args.output is not None:
        args.output.write_text(report)
        print(f"(written to {args.output})", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
