"""ASCII bar charts — the figure-shaped view of the experiment results.

Figures 6 and 7 in the paper are grouped bar charts; the tables carry the
numbers, and this module renders the same data as horizontal bars so the
*shape* (who wins, by how much) is visible directly in a terminal or a
markdown code block.
"""

from __future__ import annotations

from collections import defaultdict

from .figures import Figure6Row, Figure7Cell

__all__ = ["bar_chart", "chart_figure6", "chart_figure7"]


def bar_chart(
    series: dict[str, float],
    title: str | None = None,
    width: int = 40,
    unit: str = "",
) -> str:
    """One horizontal bar per entry, scaled to the maximum value.

    >>> print(bar_chart({"BU": 2, "TD": 4}, width=4))
    BU │██    2
    TD │████  4
    """
    if not series:
        return "(no data)"
    label_width = max(len(label) for label in series)
    peak = max(series.values())
    lines = []
    if title:
        lines.append(title)
    for label, value in series.items():
        filled = 0 if peak == 0 else round(width * value / peak)
        number = (
            f"{value:g}{unit}"
            if value == int(value)
            else f"{value:.2f}{unit}"
        )
        lines.append(
            f"{label.ljust(label_width)} │{'█' * filled}"
            f"{' ' * (width - filled)}  {number}"
        )
    return "\n".join(lines)


def chart_figure6(
    rows: list[Figure6Row], metric: str = "interactions"
) -> str:
    """Figure 6 as bar charts: one chart per (scale, join)."""
    if metric not in ("interactions", "seconds"):
        raise ValueError("metric must be 'interactions' or 'seconds'")
    grouped: dict[tuple[str, str], dict[str, float]] = defaultdict(dict)
    for row in rows:
        value = getattr(row.measurement, metric)
        grouped[(row.scale_label, row.join_name)][
            row.measurement.strategy_name
        ] = float(value)
    charts = []
    for (scale_label, join_name), series in grouped.items():
        charts.append(
            bar_chart(
                series,
                title=f"{join_name} @ {scale_label} ({metric})",
            )
        )
    return "\n\n".join(charts)


def chart_figure7(
    cells: list[Figure7Cell], metric: str = "interactions"
) -> str:
    """Figure 7 as bar charts: one chart per (configuration, goal size)."""
    if metric not in ("interactions", "seconds"):
        raise ValueError("metric must be 'interactions' or 'seconds'")
    attribute = (
        "mean_interactions" if metric == "interactions" else "mean_seconds"
    )
    grouped: dict[tuple[str, int], dict[str, float]] = defaultdict(dict)
    for cell in cells:
        grouped[(cell.config.label, cell.goal_size)][
            cell.aggregated.strategy_name
        ] = float(getattr(cell.aggregated, attribute))
    charts = []
    for (label, goal_size), series in grouped.items():
        charts.append(
            bar_chart(
                series,
                title=f"{label}, |goal| = {goal_size} ({metric})",
            )
        )
    return "\n\n".join(charts)
