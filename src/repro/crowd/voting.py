"""Majority voting over unreliable crowd workers.

§7 motivates the interactive scenario for crowdsourcing, where each
"user" answer costs money and may be wrong.  The classic mitigation is to
ask ``k`` independent workers per tuple and take the majority.  This
module quantifies the trade-off: an odd panel of ``k`` workers with
per-answer error rate ``p`` errs with probability
``P[Binomial(k, p) > k/2]``, at ``k`` times the cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.oracle import Oracle
from ..core.sample import Label
from ..relational.relation import Row

__all__ = ["MajorityOracle", "majority_error_rate", "panel_size_for_target"]

TuplePair = tuple[Row, Row]


@dataclass(frozen=True, slots=True)
class _Tally:
    positive: int
    negative: int


class MajorityOracle(Oracle):
    """Ask ``panel_size`` workers per tuple; answer with the majority.

    ``workers`` may be any oracles (typically independently seeded
    :class:`~repro.core.oracle.NoisyOracle` wrappers of the same ground
    truth).  The number of underlying answers is tracked in
    :attr:`total_queries` — the crowdsourcing *cost* of the inference.
    """

    def __init__(self, workers: list[Oracle]):
        if not workers:
            raise ValueError("a panel needs at least one worker")
        if len(workers) % 2 == 0:
            raise ValueError("use an odd panel to avoid ties")
        self._workers = list(workers)
        self.total_queries = 0

    @property
    def panel_size(self) -> int:
        """Number of workers consulted per tuple."""
        return len(self._workers)

    def _tally(self, tuple_pair: TuplePair) -> _Tally:
        positive = 0
        negative = 0
        for worker in self._workers:
            if worker.label(tuple_pair) is Label.POSITIVE:
                positive += 1
            else:
                negative += 1
        self.total_queries += len(self._workers)
        return _Tally(positive, negative)

    def label(self, tuple_pair: TuplePair) -> Label:
        tally = self._tally(tuple_pair)
        if tally.positive > tally.negative:
            return Label.POSITIVE
        return Label.NEGATIVE

    def reset(self) -> None:
        self.total_queries = 0
        for worker in self._workers:
            worker.reset()


def majority_error_rate(panel_size: int, worker_error: float) -> float:
    """Probability that an odd panel's majority verdict is wrong."""
    if panel_size < 1 or panel_size % 2 == 0:
        raise ValueError("panel size must be odd and positive")
    if not 0.0 <= worker_error <= 1.0:
        raise ValueError("worker error must be within [0, 1]")
    needed = panel_size // 2 + 1
    return sum(
        math.comb(panel_size, wrong)
        * worker_error**wrong
        * (1.0 - worker_error) ** (panel_size - wrong)
        for wrong in range(needed, panel_size + 1)
    )


def panel_size_for_target(
    worker_error: float, target_error: float, max_panel: int = 99
) -> int | None:
    """The smallest odd panel achieving the target majority error, or
    ``None`` when no panel up to ``max_panel`` suffices (e.g. when the
    workers are no better than coin flips)."""
    if not 0.0 < target_error < 1.0:
        raise ValueError("target error must be in (0, 1)")
    for panel_size in range(1, max_panel + 1, 2):
        if majority_error_rate(panel_size, worker_error) <= target_error:
            return panel_size
    return None
