"""Crowdsourced inference runs: cost and accuracy under noisy labels.

Combines the equijoin inference loop with a worker panel: each strategy
question is answered by majority vote, the inference proceeds as usual
(the sample stays consistent — §4.1 — even when answers are wrong), and
the run reports both the interaction count (tuples asked) and the crowd
cost (total worker answers), plus whether the inferred predicate is still
instance-equivalent to the goal.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.oracle import NoisyOracle, PerfectOracle
from ..core.session import run_inference
from ..core.signatures import SignatureIndex
from ..core.strategies.base import Strategy
from ..relational.predicate import JoinPredicate
from ..relational.relation import Instance
from .voting import MajorityOracle

__all__ = ["CrowdRunReport", "run_crowd_inference"]


@dataclass(frozen=True, slots=True)
class CrowdRunReport:
    """Outcome of one crowdsourced inference."""

    predicate: JoinPredicate
    interactions: int
    worker_answers: int
    panel_size: int
    worker_error: float
    correct: bool


def run_crowd_inference(
    instance: Instance,
    strategy: Strategy,
    goal: JoinPredicate,
    worker_error: float,
    panel_size: int = 1,
    seed: int = 0,
    index: SignatureIndex | None = None,
) -> CrowdRunReport:
    """Infer the goal with a panel of noisy workers.

    Workers share the ground truth (the goal) but err independently with
    probability ``worker_error``; ``panel_size`` answers are collected
    per tuple and majority-voted.
    """
    truth = PerfectOracle(instance, goal)
    workers = [
        NoisyOracle(truth, error_rate=worker_error, seed=seed * 1000 + i)
        for i in range(panel_size)
    ]
    panel = MajorityOracle(workers)
    result = run_inference(
        instance, strategy, panel, index=index, seed=seed
    )
    return CrowdRunReport(
        predicate=result.predicate,
        interactions=result.interactions,
        worker_answers=panel.total_queries,
        panel_size=panel_size,
        worker_error=worker_error,
        correct=result.matches_goal(instance, goal),
    )
