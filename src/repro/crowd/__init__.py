"""Crowdsourcing extension (§7's future-work scenario): noisy workers,
majority voting, and cost/accuracy reports."""

from .session import CrowdRunReport, run_crowd_inference
from .voting import (
    MajorityOracle,
    majority_error_rate,
    panel_size_for_target,
)

__all__ = [
    "CrowdRunReport",
    "MajorityOracle",
    "majority_error_rate",
    "panel_size_for_target",
    "run_crowd_inference",
]
