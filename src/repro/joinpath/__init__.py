"""Join-path inference (§7 future work): chains of two-relation hops."""

from .inference import (
    JoinPathHop,
    JoinPathResult,
    evaluate_join_path,
    infer_join_path,
)

__all__ = [
    "JoinPathHop",
    "JoinPathResult",
    "evaluate_join_path",
    "infer_join_path",
]
