"""Interactive inference of join *paths* (§7 future work).

The paper restricts itself to joins of two relations and names join paths
— chains ``R1 ⋈θ1 R2 ⋈θ2 R3 ⋈ …`` — as future work.  The natural lifting
reuses the two-relation machinery hop by hop: for each consecutive pair
the user labels tuple pairs, the hop's predicate is inferred, and the
chain is assembled.  This is sound because the equijoin of a chain is
determined by its pairwise predicates, and each hop's inference is
independent of the others (the user's mental goal for hop ``i`` concerns
only ``Ri × Ri+1``).

The total number of questions is the sum over hops — reported per hop in
the result so a user interface can show progress.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from ..core.oracle import Oracle, PerfectOracle
from ..core.session import run_inference
from ..core.signatures import SignatureIndex
from ..core.strategies.base import Strategy
from ..core.strategies.top_down import TopDownStrategy
from ..relational.predicate import JoinPredicate
from ..relational.relation import Instance, Relation, Row

__all__ = ["JoinPathResult", "JoinPathHop", "infer_join_path", "evaluate_join_path"]


@dataclass(frozen=True, slots=True)
class JoinPathHop:
    """One inferred hop of the chain."""

    left_name: str
    right_name: str
    predicate: JoinPredicate
    interactions: int


@dataclass(frozen=True, slots=True)
class JoinPathResult:
    """The inferred chain of predicates."""

    hops: tuple[JoinPathHop, ...]

    @property
    def total_interactions(self) -> int:
        """Questions asked over the whole chain."""
        return sum(hop.interactions for hop in self.hops)

    @property
    def predicates(self) -> list[JoinPredicate]:
        """The hop predicates, in chain order."""
        return [hop.predicate for hop in self.hops]


def infer_join_path(
    relations: Sequence[Relation],
    oracles: Sequence[Oracle] | None = None,
    goals: Sequence[JoinPredicate] | None = None,
    strategy: Strategy | None = None,
    seed: int | None = None,
) -> JoinPathResult:
    """Infer the predicate of every hop ``Ri ⋈ Ri+1``.

    Provide either one oracle per hop, or one goal per hop (simulated
    user).  A fresh strategy state is used per hop; the default strategy
    is TD.
    """
    if len(relations) < 2:
        raise ValueError("a join path needs at least two relations")
    n_hops = len(relations) - 1
    if (oracles is None) == (goals is None):
        raise ValueError("provide exactly one of oracles/goals")
    strategy = strategy or TopDownStrategy()
    hops = []
    for hop_index in range(n_hops):
        instance = Instance(relations[hop_index], relations[hop_index + 1])
        if goals is not None:
            if len(goals) != n_hops:
                raise ValueError(f"expected {n_hops} goals")
            oracle: Oracle = PerfectOracle(instance, goals[hop_index])
        else:
            assert oracles is not None
            if len(oracles) != n_hops:
                raise ValueError(f"expected {n_hops} oracles")
            oracle = oracles[hop_index]
        result = run_inference(
            instance,
            strategy,
            oracle,
            index=SignatureIndex(instance),
            seed=seed,
        )
        hops.append(
            JoinPathHop(
                left_name=relations[hop_index].name,
                right_name=relations[hop_index + 1].name,
                predicate=result.predicate,
                interactions=result.interactions,
            )
        )
    return JoinPathResult(hops=tuple(hops))


def evaluate_join_path(
    relations: Sequence[Relation],
    predicates: Sequence[JoinPredicate],
) -> list[tuple[Row, ...]]:
    """Evaluate the chain ``R1 ⋈θ1 R2 ⋈θ2 …`` (left-deep, hash joins).

    Returns tuples of one row per relation, in canonical order — the
    ground truth the inferred chain is checked against.
    """
    if len(predicates) != len(relations) - 1:
        raise ValueError("need exactly one predicate per hop")
    results: list[tuple[Row, ...]] = [(row,) for row in relations[0]]
    for hop_index, predicate in enumerate(predicates):
        left_relation = relations[hop_index]
        right_relation = relations[hop_index + 1]
        instance = Instance(left_relation, right_relation)
        predicate.validate_for(instance)
        left_pos = [
            left_relation.schema.position(a)
            for a, _ in predicate.sorted_pairs()
        ]
        right_pos = [
            right_relation.schema.position(b)
            for _, b in predicate.sorted_pairs()
        ]
        buckets: dict[tuple[Hashable, ...], list[Row]] = {}
        for p_row in right_relation:
            key = tuple(p_row[j] for j in right_pos)
            buckets.setdefault(key, []).append(p_row)
        extended = []
        for chain in results:
            anchor = chain[-1]
            key = tuple(anchor[i] for i in left_pos)
            for p_row in buckets.get(key, []):
                extended.append(chain + (p_row,))
        results = extended
    return results
